"""Ablations of the adaptive prototype (paper Sec 6 future work).

Two ablations of decisions DESIGN.md calls out:

1. **Rank tuning** (Sec 4.1): probe each MPI configuration once, let
   the :class:`RankTuningPolicy` pick one, run the remaining instances
   there — vs. statically cycling the original mixed configurations.
2. **Utilization-aware placement** (Sec 4.2): schedule onto the node
   with the lowest memory-bandwidth pressure — vs. default rotating
   first-fit — for a contention-heavy bag of tasks.
"""

from conftest import cached

from repro.adaptive import AdaptiveController, RankTuningPolicy
from repro.analysis import render_table
from repro.platform import summit_like
from repro.rp import Client, ComputeModel, PilotDescription, Session, TaskDescription
from repro.soma import SomaConfig, WORKFLOW, HARDWARE, deploy_soma
from repro.workloads import OpenFOAMParams, openfoam_task_description

PARAMS = OpenFOAMParams()
RANKS = (20, 41, 82, 164)
INSTANCES = 8


def _run_rank_tuning(adaptive: bool, seed: int = 11) -> tuple[float, int]:
    session = Session(cluster_spec=summit_like(6), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=5, agent_nodes=1)
        )
        deployment = yield from deploy_soma(
            client,
            pilot,
            SomaConfig(namespaces=(WORKFLOW, HARDWARE), monitors=("proc",)),
        )
        controller = AdaptiveController(
            client, deployment, rank_policy=RankTuningPolicy(0.35)
        )
        start = env.now
        probes = client.submit_tasks(
            [
                openfoam_task_description(r, params=PARAMS, name=f"probe-{r}")
                for r in RANKS
            ]
        )
        yield from client.wait_tasks(probes)
        controller.observe_tasks(probes)
        choice = controller.recommended_ranks() if adaptive else 0
        rest = []
        for i in range(INSTANCES):
            ranks = choice if adaptive else RANKS[i % len(RANKS)]
            rest.append(
                openfoam_task_description(ranks, params=PARAMS, name=f"r{i}")
            )
        tasks = client.submit_tasks(rest)
        yield from client.wait_tasks(tasks)
        return env.now - start, choice

    makespan, choice = env.run(env.process(main(env)))
    client.close()
    return makespan, choice


def test_ablation_rank_tuning(benchmark, report):
    def regenerate():
        adaptive, choice = cached(
            "ablate-rank-adaptive", lambda: _run_rank_tuning(True)
        )
        static, _ = cached(
            "ablate-rank-static", lambda: _run_rank_tuning(False)
        )
        return adaptive, static, choice

    adaptive, static, choice = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    gain = (static - adaptive) / static * 100.0
    report(
        "ablation_rank_tuning",
        render_table(
            ["strategy", "makespan (s)"],
            [
                [f"adaptive ({choice} ranks)", f"{adaptive:.1f}"],
                ["static (mixed)", f"{static:.1f}"],
                ["improvement", f"{gain:.1f}%"],
            ],
            title="Ablation: SOMA-informed rank tuning (Sec 4.1 loop)",
        ),
    )
    # The tuned configuration never loses to the uninformed mix.
    assert adaptive <= static * 1.02
    benchmark.extra_info["improvement_percent"] = round(gain, 2)


def _run_placement(adaptive: bool, seed: int) -> float:
    session = Session(cluster_spec=summit_like(5), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=4, agent_nodes=1)
        )
        if adaptive:
            from repro.adaptive import UtilizationAwarePlacement

            client.agent.scheduler.set_node_ranker(
                UtilizationAwarePlacement()
            )
        start = env.now
        # Contention-heavy bag: memory-bound 10-rank jobs in waves.
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"job{i}",
                    model=ComputeModel(
                        200.0, mem_intensity=0.7, demand_per_core=1.3
                    ),
                    ranks=10,
                    multi_node=False,
                )
                for i in range(24)
            ]
        )
        yield from client.wait_tasks(tasks)
        return env.now - start

    makespan = env.run(env.process(main(env)))
    client.close()
    return makespan


def test_ablation_utilization_aware_placement(benchmark, report):
    """A *negative-capable* ablation: greedy pressure-aware placement
    is high-variance — it helps some schedules and hurts others, which
    is exactly why the paper proposes feeding richer SOMA data into
    the decision rather than a greedy local rule."""
    seeds = (9, 17, 23)

    def regenerate():
        rows = []
        for seed in seeds:
            on = cached(
                f"ablate-place-on-{seed}", lambda s=seed: _run_placement(True, s)
            )
            off = cached(
                f"ablate-place-off-{seed}",
                lambda s=seed: _run_placement(False, s),
            )
            rows.append((seed, on, off))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    gains = [(off - on) / off * 100.0 for _, on, off in rows]
    report(
        "ablation_placement",
        render_table(
            ["seed", "utilization-aware (s)", "rotating first-fit (s)",
             "gain"],
            [
                [seed, f"{on:.1f}", f"{off:.1f}", f"{g:+.1f}%"]
                for (seed, on, off), g in zip(rows, gains)
            ],
            title="Ablation: utilization-aware placement (Sec 4.2 "
            "suggestion) — high variance, not a uniform win",
        ),
    )
    # Every run completes; the effect is schedule-dependent (that IS
    # the finding), so assert only a sane band.
    assert all(abs(g) < 30.0 for g in gains)
    benchmark.extra_info["gains_percent"] = [round(g, 1) for g in gains]
