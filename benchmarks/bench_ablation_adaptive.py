"""Ablations of the adaptive prototype (paper Sec 6 future work).

Two ablations of decisions DESIGN.md calls out (the run logic lives in
:mod:`repro.experiments.ablations`, shared with the sweep engine):

1. **Rank tuning** (Sec 4.1): probe each MPI configuration once, let
   the :class:`RankTuningPolicy` pick one, run the remaining instances
   there — vs. statically cycling the original mixed configurations.
2. **Utilization-aware placement** (Sec 4.2): schedule onto the node
   with the lowest memory-bandwidth pressure — vs. default rotating
   first-fit — for a contention-heavy bag of tasks.
"""

from conftest import cell_payload

from repro.sweep.artifacts import (
    PLACEMENT_SEEDS,
    render_ablation_placement,
    render_ablation_rank_tuning,
)


def test_ablation_rank_tuning(benchmark, report):
    payloads = benchmark.pedantic(
        lambda: {
            key: cell_payload(key)
            for key in ("ablation-rank-adaptive", "ablation-rank-static")
        },
        rounds=1,
        iterations=1,
    )
    report("ablation_rank_tuning", render_ablation_rank_tuning(payloads))

    adaptive = payloads["ablation-rank-adaptive"]["makespan"]
    static = payloads["ablation-rank-static"]["makespan"]
    # The tuned configuration never loses to the uninformed mix.
    assert adaptive <= static * 1.02
    gain = (static - adaptive) / static * 100.0
    benchmark.extra_info["improvement_percent"] = round(gain, 2)


def test_ablation_utilization_aware_placement(benchmark, report):
    """A *negative-capable* ablation: greedy pressure-aware placement
    is high-variance — it helps some schedules and hurts others, which
    is exactly why the paper proposes feeding richer SOMA data into
    the decision rather than a greedy local rule."""
    payloads = benchmark.pedantic(
        lambda: {
            f"ablation-place-{label}-s{seed}": cell_payload(
                f"ablation-place-{label}-s{seed}"
            )
            for seed in PLACEMENT_SEEDS
            for label in ("on", "off")
        },
        rounds=1,
        iterations=1,
    )
    report("ablation_placement", render_ablation_placement(payloads))

    gains = []
    for seed in PLACEMENT_SEEDS:
        on = payloads[f"ablation-place-on-s{seed}"]["makespan"]
        off = payloads[f"ablation-place-off-s{seed}"]["makespan"]
        gains.append((off - on) / off * 100.0)
    # Every run completes; the effect is schedule-dependent (that IS
    # the finding), so assert only a sane band.
    assert all(abs(g) < 30.0 for g in gains)
    benchmark.extra_info["gains_percent"] = [round(g, 1) for g in gains]
