"""Adaptive experiment (Sec 3.2) + ablations of the design choices.

1. The adaptive DDMD run: 4 phases with 1/2/4/6 training tasks and
   online SOMA analysis between phases — training-stage time drops as
   training parallelizes, while SOMA's between-phase headroom estimate
   stays available (the input a future adaptive RP would consume).
2. Ablation: monitoring frequency sweep — overhead is monotone-ish in
   frequency (the DESIGN.md cost-model claim behind Fig 11).
"""

import numpy as np
from conftest import cell_payload

from repro.sweep.artifacts import (
    FREQ_ABLATION_PERIODS,
    render_ablation_frequency,
    render_adaptive,
)


def test_adaptive_between_phase_analysis(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("ddmd-adaptive"), rounds=1, iterations=1
    )
    report("adaptive", render_adaptive(payload))

    # Parallel training shortens the training stage monotonically.
    train_times = payload["stage_durations"]["training"]
    assert train_times[0] > train_times[1] > train_times[3]
    # The analysis ran after every phase and saw the GPU-bound truth:
    # high CPU headroom throughout.
    analyses = payload["analyses"]
    assert len(analyses) == 4
    for analysis in analyses:
        values = [h["cpu"] for h in analysis["headroom"].values()]
        assert values and min(values) > 0.5


def test_ablation_monitoring_frequency(benchmark, report):
    """Ablation: overhead vs monitoring frequency (60 / 20 / 5 s)."""
    payloads = benchmark.pedantic(
        lambda: {
            f"freq-ablation-{freq:.0f}s": cell_payload(
                f"freq-ablation-{freq:.0f}s"
            )
            for freq in FREQ_ABLATION_PERIODS
        },
        rounds=1,
        iterations=1,
    )
    report("ablation_frequency", render_ablation_frequency(payloads))

    means = {
        freq: float(
            np.mean(
                payloads[f"freq-ablation-{freq:.0f}s"]["pipeline_durations"]
            )
        )
        for freq in FREQ_ABLATION_PERIODS
    }
    # More frequent monitoring never makes the workflow faster.
    assert means[5.0] >= means[60.0] - 1.0
