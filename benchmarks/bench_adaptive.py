"""Adaptive experiment (Sec 3.2) + ablations of the design choices.

1. The adaptive DDMD run: 4 phases with 1/2/4/6 training tasks and
   online SOMA analysis between phases — training-stage time drops as
   training parallelizes, while SOMA's between-phase headroom estimate
   stays available (the input a future adaptive RP would consume).
2. Ablation: monitoring frequency sweep — overhead is monotone-ish in
   frequency (the DESIGN.md cost-model claim behind Fig 11).
"""

import numpy as np
from conftest import cached

from repro.analysis import render_table
from repro.experiments import (
    DDMD_ADAPTIVE_TRAIN_COUNTS,
    adaptive_experiment,
    run_ddmd_experiment,
    stage_durations,
)


def test_adaptive_between_phase_analysis(benchmark, report):
    def regenerate():
        return cached(
            "ddmd-adaptive",
            lambda: run_ddmd_experiment(
                adaptive_experiment(), seed=13, adaptive_analysis=True
            ),
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    train_times = stage_durations(result, "training")
    analyses = result.payload["analyses"]
    rows = []
    for phase, count in enumerate(DDMD_ADAPTIVE_TRAIN_COUNTS):
        headroom = analyses[phase]["headroom"]
        rows.append(
            [
                phase,
                count,
                f"{train_times[phase]:.1f}",
                f"{np.mean(list(headroom.values())):.2f}" if headroom else "-",
            ]
        )
    report(
        "adaptive",
        render_table(
            ["phase", "train tasks", "train stage (s)", "CPU headroom"],
            rows,
            title="Adaptive DDMD: a-priori train counts + online SOMA "
            "analysis between phases",
        ),
    )

    # Parallel training shortens the training stage monotonically.
    assert train_times[0] > train_times[1] > train_times[3]
    # The analysis ran after every phase and saw the GPU-bound truth:
    # high CPU headroom throughout.
    assert len(analyses) == 4
    for analysis in analyses:
        values = list(analysis["headroom"].values())
        assert values and min(values) > 0.5


def test_ablation_monitoring_frequency(benchmark, report):
    """Ablation: overhead vs monitoring frequency (60 / 20 / 5 s)."""
    from repro.experiments import SCALING_B, pipeline_durations

    def regenerate():
        out = {}
        for freq in (60.0, 20.0, 5.0):
            exp = SCALING_B(16, "exclusive").with_updates(
                soma_nodes=1,
                soma_ranks_per_namespace=8,
                monitoring_frequency=freq,
                params=SCALING_B(16, "exclusive").params.with_updates(
                    noise_sigma=0.02
                ),
            )
            result = cached(
                f"freq-ablation-{freq}",
                lambda exp=exp: run_ddmd_experiment(exp, seed=3),
            )
            out[freq] = float(np.mean(pipeline_durations(result)))
        return out

    means = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [[f"{f:.0f}", f"{m:.1f}"] for f, m in means.items()]
    report(
        "ablation_frequency",
        render_table(
            ["monitoring period (s)", "mean pipeline runtime (s)"],
            rows,
            title="Ablation: cost of monitoring frequency "
            "(16 pipelines, exclusive)",
        ),
    )
    # More frequent monitoring never makes the workflow faster.
    assert means[5.0] >= means[60.0] - 1.0
