"""Fig 10: DDMD Scaling A — SOMA rank:pipeline ratio barely matters.

64 pipelines on 64 app nodes; SOMA ranks 16/32/64 on 1/2/4 SOMA nodes
(pipeline:rank ratios 4:1 to 1:1), in shared and exclusive
configurations.  Checks the paper's two findings: (1) the ratio of
SOMA ranks to pipelines has little effect, (2) shared placement
reduces many pipelines' runtimes but increases variance.
"""

import numpy as np
from conftest import cell_payload

from repro.sweep.artifacts import fig10_durations, render_fig10

CELLS = tuple(
    f"scaling-a-{mode}-{n}n"
    for n in (1, 2, 4)
    for mode in ("shared", "exclusive")
)


def test_fig10_scaling_a(benchmark, report):
    payloads = benchmark.pedantic(
        lambda: {key: cell_payload(key) for key in CELLS},
        rounds=1,
        iterations=1,
    )
    report("fig10", render_fig10(payloads))

    durations = fig10_durations(payloads)
    # (1) Ratio has little effect: within each placement mode, means
    # across rank counts stay within a few percent of each other.
    for mode in ("shared", "exclusive"):
        means = [
            float(np.mean(durations[f"{mode}-{ranks}ranks"]))
            for ranks in (16, 32, 64)
        ]
        assert max(means) / min(means) < 1.06, means

    # (2) Shared placement helps on average (extra GPUs/cores on the
    # SOMA nodes) at equal rank counts.
    shared_mean = float(np.mean(durations["shared-64ranks"]))
    exclusive_mean = float(np.mean(durations["exclusive-64ranks"]))
    assert shared_mean <= exclusive_mean * 1.01
    benchmark.extra_info["means"] = {
        k: round(float(np.mean(v)), 1) for k, v in durations.items()
    }
