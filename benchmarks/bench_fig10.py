"""Fig 10: DDMD Scaling A — SOMA rank:pipeline ratio barely matters.

64 pipelines on 64 app nodes; SOMA ranks 16/32/64 on 1/2/4 SOMA nodes
(pipeline:rank ratios 4:1 to 1:1), in shared and exclusive
configurations.  Checks the paper's two findings: (1) the ratio of
SOMA ranks to pipelines has little effect, (2) shared placement
reduces many pipelines' runtimes but increases variance.
"""

import numpy as np
from conftest import scaling_a_run

from repro.analysis import render_boxes
from repro.experiments import pipeline_durations


def test_fig10_scaling_a(benchmark, report):
    def regenerate():
        out = {}
        for soma_nodes in (1, 2, 4):
            for mode in ("shared", "exclusive"):
                result = scaling_a_run(soma_nodes, mode)
                label = f"{mode}-{16 * soma_nodes}ranks"
                out[label] = pipeline_durations(result)
        return out

    durations = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    report(
        "fig10",
        render_boxes(
            durations,
            title="Fig 10: Scaling A pipeline runtimes (64 pipelines)",
        ),
    )

    # (1) Ratio has little effect: within each placement mode, means
    # across rank counts stay within a few percent of each other.
    for mode in ("shared", "exclusive"):
        means = [
            float(np.mean(durations[f"{mode}-{ranks}ranks"]))
            for ranks in (16, 32, 64)
        ]
        assert max(means) / min(means) < 1.06, means

    # (2) Shared placement helps on average (extra GPUs/cores on the
    # SOMA nodes) at equal rank counts.
    shared_mean = float(np.mean(durations["shared-64ranks"]))
    exclusive_mean = float(np.mean(durations["exclusive-64ranks"]))
    assert shared_mean <= exclusive_mean * 1.01
    benchmark.extra_info["means"] = {
        k: round(float(np.mean(v)), 1) for k, v in durations.items()
    }
