"""Fig 11: DDMD Scaling B — monitoring cost/benefit at scale.

For each scale (m pipelines on m app nodes; SOMA ranks : pipelines
fixed at 1:1 on 4/7/13/25 SOMA nodes), compares pipeline-runtime
distributions across the five configurations of the paper:

* none (baseline, no SOMA nodes, no monitoring),
* shared / exclusive at the 60 s monitoring frequency,
* frequent-shared / frequent-exclusive at 10 s.

Checks the paper's shape: frequent-exclusive pays a few percent that
grows with scale; shared placement recovers resources at small scale
and loses its edge by 512 nodes.

By default this bench runs m = 64 and 128; set REPRO_FULL_SCALE=1 to
add 256 and 512 (several minutes of simulation).
"""

from conftest import FULL_SCALE, cell_payload

from repro.sweep.artifacts import (
    SCALING_B_CONFIGS,
    fig11_data,
    fig11_overhead_rows,
    render_fig11,
    scaling_b_key,
)

SCALES = (64, 128, 256, 512) if FULL_SCALE else (64, 128)


def test_fig11_scaling_b(benchmark, report):
    payloads = benchmark.pedantic(
        lambda: {
            scaling_b_key(pipelines, mode, frequent): cell_payload(
                scaling_b_key(pipelines, mode, frequent)
            )
            for pipelines in SCALES
            for mode, frequent in SCALING_B_CONFIGS
        },
        rounds=1,
        iterations=1,
    )
    report("fig11", render_fig11(payloads, SCALES))

    # Shape checks (robust to run-to-run noise):
    overhead = {
        (row[0], row[1]): float(row[2].rstrip("%"))
        for row in fig11_overhead_rows(fig11_data(payloads, SCALES))
    }
    largest = max(SCALES)
    # Frequent-exclusive is the worst monitored configuration at the
    # largest scale, with positive overhead.
    assert overhead[(largest, "frequent-exclusive")] > 0
    # Frequent monitoring overhead grows with scale.
    assert (
        overhead[(largest, "frequent-exclusive")]
        > overhead[(SCALES[0], "frequent-exclusive")] - 0.5
    )
    # Shared is cheaper than exclusive under frequent monitoring at the
    # smallest scale (the free-resource recovery effect).
    assert (
        overhead[(SCALES[0], "shared")]
        <= overhead[(SCALES[0], "exclusive")] + 1.0
    )
    benchmark.extra_info["overheads_percent"] = {
        f"{scale}-{config}": value
        for (scale, config), value in overhead.items()
    }
