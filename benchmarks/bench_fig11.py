"""Fig 11: DDMD Scaling B — monitoring cost/benefit at scale.

For each scale (m pipelines on m app nodes; SOMA ranks : pipelines
fixed at 1:1 on 4/7/13/25 SOMA nodes), compares pipeline-runtime
distributions across the five configurations of the paper:

* none (baseline, no SOMA nodes, no monitoring),
* shared / exclusive at the 60 s monitoring frequency,
* frequent-shared / frequent-exclusive at 10 s.

Checks the paper's shape: frequent-exclusive pays a few percent that
grows with scale; shared placement recovers resources at small scale
and loses its edge by 512 nodes.

By default this bench runs m = 64 and 128; set REPRO_FULL_SCALE=1 to
add 256 and 512 (several minutes of simulation).
"""

from conftest import FULL_SCALE, scaling_b_run

from repro.analysis import compare_runtimes, fmt, fmt_percent, render_boxes, render_table
from repro.experiments import pipeline_durations

SCALES = (64, 128, 256, 512) if FULL_SCALE else (64, 128)
CONFIGS = (
    ("none", False),
    ("shared", False),
    ("exclusive", False),
    ("shared", True),
    ("exclusive", True),
)


def test_fig11_scaling_b(benchmark, report):
    def regenerate():
        data: dict[int, dict[str, list[float]]] = {}
        for pipelines in SCALES:
            per_config = {}
            for mode, frequent in CONFIGS:
                label = ("frequent-" if frequent else "") + mode
                result = scaling_b_run(pipelines, mode, frequent=frequent)
                per_config[label] = pipeline_durations(result)
            data[pipelines] = per_config
        return data

    data = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = []
    overhead_rows = []
    for pipelines, per_config in data.items():
        sections.append(
            render_boxes(
                per_config,
                title=f"Fig 11: Scaling B, {pipelines} application nodes",
            )
        )
        baseline = per_config["none"]
        monitored = {k: v for k, v in per_config.items() if k != "none"}
        for result in compare_runtimes(baseline, monitored):
            overhead_rows.append(
                [
                    pipelines,
                    result.config,
                    fmt_percent(result.overhead_percent),
                    fmt(result.config_mean, ".1f"),
                    fmt(result.baseline_mean, ".1f"),
                ]
            )
    sections.append(
        render_table(
            ["app nodes", "config", "overhead", "mean (s)", "baseline (s)"],
            overhead_rows,
            title="overhead vs baseline (paper: frequent-exclusive "
            "+1.4/+3.4/+3.2/+4.6% at 64/128/256/512; shared "
            "-6.5/-3.8/-1.1/+1.8%)",
        )
    )
    report("fig11", "\n\n".join(sections))

    # Shape checks (robust to run-to-run noise):
    overhead = {
        (rows[0], rows[1]): float(rows[2].rstrip("%"))
        for rows in overhead_rows
    }
    largest = max(SCALES)
    # Frequent-exclusive is the worst monitored configuration at the
    # largest scale, with positive overhead.
    assert overhead[(largest, "frequent-exclusive")] > 0
    # Frequent monitoring overhead grows with scale.
    assert (
        overhead[(largest, "frequent-exclusive")]
        > overhead[(SCALES[0], "frequent-exclusive")] - 0.5
    )
    # Shared is cheaper than exclusive under frequent monitoring at the
    # smallest scale (the free-resource recovery effect).
    assert (
        overhead[(SCALES[0], "shared")]
        <= overhead[(SCALES[0], "exclusive")] + 1.0
    )
    benchmark.extra_info["overheads_percent"] = {
        f"{scale}-{config}": value
        for (scale, config), value in overhead.items()
    }
