"""Fig 4: OpenFOAM strong scaling — 20 instances per configuration.

Regenerates the box-plot data: execution-time distribution per MPI-rank
configuration (20/41/82/164) from the overloaded run, and checks the
paper's headline shape: scaling helps up to ~2 nodes (82 ranks) and
little beyond.
"""

import numpy as np
from conftest import cell_payload

from repro.sweep.artifacts import render_fig4


def test_fig4_strong_scaling(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("openfoam-overload"), rounds=1, iterations=1
    )
    report("fig4", render_fig4(payload))

    means = {
        int(ranks): float(np.mean(values))
        for ranks, values in payload["exec_times_by_ranks"].items()
    }
    # Shape: monotone decreasing over the paper's configurations...
    assert means[20] > means[41] > means[82] > means[164]
    # ...with diminishing returns past two nodes (82 ranks).
    gain_41_82 = (means[41] - means[82]) / means[41]
    gain_82_164 = (means[82] - means[164]) / means[82]
    assert gain_82_164 < gain_41_82
    benchmark.extra_info["mean_exec_times"] = {
        str(k): round(v, 1) for k, v in means.items()
    }
