"""Fig 4: OpenFOAM strong scaling — 20 instances per configuration.

Regenerates the box-plot data: execution-time distribution per MPI-rank
configuration (20/41/82/164) from the overloaded run, and checks the
paper's headline shape: scaling helps up to ~2 nodes (82 ranks) and
little beyond.
"""

import numpy as np
from conftest import openfoam_overload_run

from repro.analysis import render_boxes
from repro.experiments import execution_times_by_ranks


def test_fig4_strong_scaling(benchmark, report):
    def regenerate():
        result = openfoam_overload_run()
        return execution_times_by_ranks(result)

    times = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    table = render_boxes(
        {f"{ranks} ranks": values for ranks, values in sorted(times.items())},
        title="Fig 4: OpenFOAM task execution time vs MPI ranks "
        "(20 instances each, overloaded run)",
    )
    report("fig4", table)

    means = {ranks: float(np.mean(v)) for ranks, v in times.items()}
    # Shape: monotone decreasing over the paper's configurations...
    assert means[20] > means[41] > means[82] > means[164]
    # ...with diminishing returns past two nodes (82 ranks).
    gain_41_82 = (means[41] - means[82]) / means[41]
    gain_82_164 = (means[82] - means[164]) / means[82]
    assert gain_82_164 < gain_41_82
    benchmark.extra_info["mean_exec_times"] = {
        str(k): round(v, 1) for k, v in means.items()
    }
