"""Fig 5: per-rank TAU profile of one OpenFOAM task.

Regenerates the stacked-bar data — seconds per MPI region per rank for
one 20-rank instance — and checks the paper's observation that "a
large portion of time for each rank is spent in MPI_Recv() and
MPI_Waitall()".
"""

from conftest import openfoam_tuning_run

from repro.analysis import render_table
from repro.soma import PERFORMANCE, load_imbalance, rank_region_breakdown


def test_fig5_tau_mpi_breakdown(benchmark, report):
    def regenerate():
        result = openfoam_tuning_run()
        task = result.payload["by_ranks"][20][0]
        store = result.deployment.store(PERFORMANCE)
        return (
            rank_region_breakdown(store, task.uid),
            load_imbalance(store, task.uid),
            task.uid,
        )

    breakdown, imbalance, uid = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    rows = []
    for rank in sorted(breakdown):
        regions = breakdown[rank]
        compute = sum(
            v for k, v in regions.items() if not k.startswith("MPI_")
        )
        rows.append(
            [
                rank,
                f"{compute:.1f}",
                f"{regions['MPI_Recv']:.1f}",
                f"{regions['MPI_Waitall']:.1f}",
                f"{regions['MPI_Allreduce']:.1f}",
                f"{regions['MPI_Isend']:.1f}",
            ]
        )
    table = render_table(
        ["rank", "compute", "MPI_Recv", "MPI_Waitall", "MPI_Allreduce",
         "MPI_Isend"],
        rows,
        title=f"Fig 5: TAU profile of {uid} (seconds per region per rank)",
    )
    report("fig5", table)

    assert len(breakdown) == 20
    # Recv + Waitall dominate the MPI time on (almost) every rank.
    dominated = 0
    for regions in breakdown.values():
        wait = regions["MPI_Recv"] + regions["MPI_Waitall"]
        other = regions["MPI_Allreduce"] + regions["MPI_Isend"]
        if wait > other:
            dominated += 1
    assert dominated >= 18
    assert imbalance >= 1.0
    benchmark.extra_info["load_imbalance"] = round(imbalance, 3)
