"""Fig 5: per-rank TAU profile of one OpenFOAM task.

Regenerates the stacked-bar data — seconds per MPI region per rank for
one 20-rank instance — and checks the paper's observation that "a
large portion of time for each rank is spent in MPI_Recv() and
MPI_Waitall()".
"""

from conftest import cell_payload

from repro.sweep.artifacts import render_fig5


def test_fig5_tau_mpi_breakdown(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("openfoam-tuning"), rounds=1, iterations=1
    )
    report("fig5", render_fig5(payload))

    breakdown = payload["tau"]["breakdown"]
    assert len(breakdown) == 20
    # Recv + Waitall dominate the MPI time on (almost) every rank.
    dominated = 0
    for regions in breakdown.values():
        wait = regions["MPI_Recv"] + regions["MPI_Waitall"]
        other = regions["MPI_Allreduce"] + regions["MPI_Isend"]
        if wait > other:
            dominated += 1
    assert dominated >= 18
    assert payload["tau"]["imbalance"] >= 1.0
    benchmark.extra_info["load_imbalance"] = round(
        payload["tau"]["imbalance"], 3
    )
