"""Fig 6: execution time vs number of nodes the ranks landed on.

Regenerates the grouped distributions for the 20- and 41-rank
configurations from the overloaded run.  The paper observes an
execution-time improvement as ranks spread over more nodes — clearly
for 20 ranks, less remarkably for 41 — driven by reduced per-node
memory-bandwidth self-contention; the same mechanism produces the
trend here.
"""

from conftest import cell_payload

from repro.sweep.artifacts import fig6_spreads, fig6_trend, render_fig6


def test_fig6_spread_vs_packed(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("openfoam-overload"), rounds=1, iterations=1
    )
    report("fig6", render_fig6(payload))

    spreads = fig6_spreads(payload)
    # Both configurations produced placements with >1 spread value.
    for ranks, groups in spreads.items():
        assert len(groups) >= 2, f"{ranks}-rank tasks all placed identically"
    # Spreading helps the 20-rank tasks (the paper's main observation)
    # and does not hurt the 41-rank tasks.
    assert fig6_trend(spreads[20]) < 0.0
    assert fig6_trend(spreads[41]) < 0.25
    benchmark.extra_info["trend_20"] = round(fig6_trend(spreads[20]), 2)
    benchmark.extra_info["trend_41"] = round(fig6_trend(spreads[41]), 2)
