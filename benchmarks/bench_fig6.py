"""Fig 6: execution time vs number of nodes the ranks landed on.

Regenerates the grouped distributions for the 20- and 41-rank
configurations from the overloaded run.  The paper observes an
execution-time improvement as ranks spread over more nodes — clearly
for 20 ranks, less remarkably for 41 — driven by reduced per-node
memory-bandwidth self-contention; the same mechanism produces the
trend here.
"""

import numpy as np
from conftest import openfoam_overload_run

from repro.analysis import render_boxes
from repro.experiments import execution_times_by_spread


def _trend(groups: dict[int, list[float]]) -> float:
    """Correlation between node count and execution time."""
    xs, ys = [], []
    for nodes, values in groups.items():
        xs.extend([nodes] * len(values))
        ys.extend(values)
    if len(set(xs)) < 2:
        return 0.0
    return float(np.corrcoef(xs, ys)[0, 1])


def test_fig6_spread_vs_packed(benchmark, report):
    def regenerate():
        result = openfoam_overload_run()
        return {
            ranks: execution_times_by_spread(result, ranks)
            for ranks in (20, 41)
        }

    spreads = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    sections = []
    for ranks, groups in spreads.items():
        sections.append(
            render_boxes(
                {f"{n} node(s)": v for n, v in groups.items()},
                title=f"Fig 6: {ranks}-rank tasks by node spread",
            )
        )
        sections.append(f"trend (corr nodes vs time): {_trend(groups):+.2f}")
    report("fig6", "\n\n".join(sections))

    # Both configurations produced placements with >1 spread value.
    for ranks, groups in spreads.items():
        assert len(groups) >= 2, f"{ranks}-rank tasks all placed identically"
    # Spreading helps the 20-rank tasks (the paper's main observation)
    # and does not hurt the 41-rank tasks.
    assert _trend(spreads[20]) < 0.0
    assert _trend(spreads[41]) < 0.25
    benchmark.extra_info["trend_20"] = round(_trend(spreads[20]), 2)
    benchmark.extra_info["trend_41"] = round(_trend(spreads[41]), 2)
