"""Fig 7: per-node CPU utilization traces with task-start markers.

Regenerates the tuning run's hardware-namespace series (30 s samples)
and the orange task-start dots the SOMA RP monitor observed, and
checks the correlation the paper points at: utilization rises when a
task's ranks start on a node.
"""

from conftest import openfoam_tuning_run

from repro.analysis import render_series
from repro.soma import (
    HARDWARE,
    WORKFLOW,
    cpu_utilization_series,
    task_state_observations,
)


def test_fig7_cpu_utilization_with_markers(benchmark, report):
    def regenerate():
        result = openfoam_tuning_run()
        series = cpu_utilization_series(result.deployment.store(HARDWARE))
        markers = task_state_observations(
            result.deployment.store(WORKFLOW), event="AGENT_EXECUTING"
        )
        app_uids = {t.uid for t in result.application_tasks}
        starts = [(t, uid) for t, uid in markers if uid in app_uids]
        return result, series, starts

    result, series, starts = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    lines = ["Fig 7: CPU utilization per compute node (30 s samples)"]
    for host, points in sorted(series.items()):
        lines.append(
            render_series(
                f"  {host}",
                [p.time for p in points],
                [p.cpu_utilization for p in points],
            )
        )
    lines.append(
        "task starts observed by the RP monitor (orange dots): "
        + ", ".join(f"{uid}@{t:.0f}s" for t, uid in starts)
    )
    report("fig7", "\n".join(lines))

    # One line per compute node, all samples in [0, 1].
    pilot = result.client.pilot
    assert set(series) == {n.name for n in pilot.compute_nodes}
    for points in series.values():
        assert all(0.0 <= p.cpu_utilization <= 1.0 for p in points)
    # Every application task's start was observed.
    assert len(starts) >= len(result.application_tasks)
    # Utilization spikes after the first task start: the max sample on
    # some node after the first start exceeds the pre-start level.
    first_start = min(t for t, _ in starts)
    for host, points in series.items():
        after = [p.cpu_utilization for p in points if p.time > first_start]
        if after and max(after) > 0.5:
            break
    else:
        raise AssertionError("no node showed a utilization spike")
