"""Fig 7: per-node CPU utilization traces with task-start markers.

Regenerates the tuning run's hardware-namespace series (30 s samples)
and the orange task-start dots the SOMA RP monitor observed, and
checks the correlation the paper points at: utilization rises when a
task's ranks start on a node.
"""

from conftest import cell_payload

from repro.sweep.artifacts import render_fig7


def test_fig7_cpu_utilization_with_markers(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("openfoam-tuning"), rounds=1, iterations=1
    )
    report("fig7", render_fig7(payload))

    series = payload["utilization_series"]
    # One line per compute node, all samples in [0, 1].
    assert set(series) == set(payload["compute_hosts"])
    for points in series.values():
        assert all(0.0 <= cpu <= 1.0 for _, cpu, _ in points)
    # Every application task's start was observed.
    starts = payload["task_starts"]
    assert len(starts) >= payload["num_application_tasks"]
    # Utilization spikes after the first task start: the max sample on
    # some node after the first start exceeds the pre-start level.
    first_start = min(t for t, _ in starts)
    for host, points in series.items():
        after = [cpu for t, cpu, _ in points if t > first_start]
        if after and max(after) > 0.5:
            break
    else:
        raise AssertionError("no node showed a utilization spike")
