"""Fig 8: RP resource-utilization timelines (overload top, tuning bottom).

Regenerates the per-core interval view — bootstrap (light blue),
scheduling/launching (purple), running (green), idle (white) — for
both OpenFOAM runs, and reports the summary the paper reads off the
figure: how much of the allocation was actually used, and where the
white space (scheduling headroom) is.
"""

from conftest import cell_payload

from repro.analysis import BOOTSTRAP, RUNNING, SCHEDULING
from repro.sweep.artifacts import fig8_row, render_fig8


def test_fig8_resource_timelines(benchmark, report):
    overload, tuning = benchmark.pedantic(
        lambda: (
            cell_payload("openfoam-overload"),
            cell_payload("openfoam-tuning"),
        ),
        rounds=1,
        iterations=1,
    )
    report("fig8", render_fig8(overload, tuning))

    # All three interval kinds exist in both runs.
    assert set(overload["timeline"]["kinds"]) == {
        BOOTSTRAP, SCHEDULING, RUNNING,
    }
    assert set(tuning["timeline"]["kinds"]) == {
        BOOTSTRAP, SCHEDULING, RUNNING,
    }
    # The overloaded run keeps the machine busier than the tuning run
    # ("the resources are well used").
    used_over = float(fig8_row(overload, "overload")[2].rstrip("%"))
    used_tune = float(fig8_row(tuning, "tuning")[2].rstrip("%"))
    assert used_over > used_tune
    assert used_over > 50.0
