"""Fig 8: RP resource-utilization timelines (overload top, tuning bottom).

Regenerates the per-core interval view — bootstrap (light blue),
scheduling/launching (purple), running (green), idle (white) — for
both OpenFOAM runs, and reports the summary the paper reads off the
figure: how much of the allocation was actually used, and where the
white space (scheduling headroom) is.
"""

from conftest import openfoam_overload_run, openfoam_tuning_run

from repro.analysis import (
    BOOTSTRAP,
    RUNNING,
    SCHEDULING,
    build_timeline,
    render_table,
)


def _summarize(result, label):
    timeline = build_timeline(result.session, result.tasks)
    pilot = result.client.pilot
    compute_nodes = [n.name for n in pilot.compute_nodes]
    compute_timeline = build_timeline(
        result.session, result.tasks, nodes=compute_nodes
    )
    span = result.finished_at
    total_core_seconds = span * 42 * len(compute_nodes)
    running = compute_timeline.busy_core_seconds(RUNNING)
    scheduling = compute_timeline.busy_core_seconds(SCHEDULING)
    boot = compute_timeline.busy_core_seconds(BOOTSTRAP)
    idle = total_core_seconds - running - scheduling - boot
    return timeline, [
        label,
        f"{span:.0f}",
        f"{100 * running / total_core_seconds:.1f}%",
        f"{100 * scheduling / total_core_seconds:.2f}%",
        f"{100 * boot / total_core_seconds:.1f}%",
        f"{100 * idle / total_core_seconds:.1f}%",
    ]


def test_fig8_resource_timelines(benchmark, report):
    def regenerate():
        overload = openfoam_overload_run()
        tuning = openfoam_tuning_run()
        return (
            _summarize(overload, "overload (top)"),
            _summarize(tuning, "tuning (bottom)"),
        )

    (tl_over, row_over), (tl_tune, row_tune) = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    table = render_table(
        ["run", "makespan (s)", "running (green)", "scheduling (purple)",
         "bootstrap (blue)", "idle (white)"],
        [row_over, row_tune],
        title="Fig 8: RP resource utilization of the compute nodes",
    )
    report("fig8", table)

    # All three interval kinds exist in both runs.
    assert tl_over.kinds() == {BOOTSTRAP, SCHEDULING, RUNNING}
    assert tl_tune.kinds() == {BOOTSTRAP, SCHEDULING, RUNNING}
    # The overloaded run keeps the machine busier than the tuning run
    # ("the resources are well used").
    used_over = float(row_over[2].rstrip("%"))
    used_tune = float(row_tune[2].rstrip("%"))
    assert used_over > used_tune
    assert used_over > 50.0
