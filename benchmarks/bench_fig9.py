"""Fig 9: DDMD tuning — CPU utilization stays low across core configs.

Regenerates the per-node CPU-utilization trace over the six tuning
phases (train cores 7/7/7/3/3/3 x sim cores 1/3/7) and checks the
paper's finding: "even when changing the number of cores that can be
used per task, CPU utilization remains low" because the work is on
the GPUs.
"""

import numpy as np
from conftest import cell_payload

from repro.sweep.artifacts import fig9_phase_rows, render_fig9


def test_fig9_low_cpu_utilization(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("ddmd-tuning"), rounds=1, iterations=1
    )
    report("fig9", render_fig9(payload))

    # The headline claim: CPU utilization low in every phase, for
    # every core configuration.
    for row in fig9_phase_rows(payload):
        if row[3] != "-":
            assert float(row[3]) < 0.30
    # And the GPUs are where the work happens.
    series = payload["utilization_series"]
    all_cpu = [cpu for pts in series.values() for _, cpu, _ in pts]
    all_gpu = [gpu for pts in series.values() for _, _, gpu in pts]
    assert np.mean(all_gpu) > np.mean(all_cpu)
    benchmark.extra_info["mean_cpu_util"] = round(float(np.mean(all_cpu)), 3)
    benchmark.extra_info["mean_gpu_util"] = round(float(np.mean(all_gpu)), 3)
