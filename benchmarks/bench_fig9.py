"""Fig 9: DDMD tuning — CPU utilization stays low across core configs.

Regenerates the per-node CPU-utilization trace over the six tuning
phases (train cores 7/7/7/3/3/3 x sim cores 1/3/7) and checks the
paper's finding: "even when changing the number of cores that can be
used per task, CPU utilization remains low" because the work is on
the GPUs.
"""

import numpy as np
from conftest import ddmd_tuning_run

from repro.analysis import render_series, render_table
from repro.experiments import DDMD_TUNING_PHASES
from repro.soma import HARDWARE, cpu_utilization_series


def test_fig9_low_cpu_utilization(benchmark, report):
    def regenerate():
        result = ddmd_tuning_run()
        series = cpu_utilization_series(result.deployment.store(HARDWARE))
        # Phase boundaries from the EnTK stage trace.
        stages = result.session.tracer.select(category="entk.stage")
        phase_ends = [
            rec.time for i, rec in enumerate(stages) if (i + 1) % 4 == 0
        ]
        return result, series, phase_ends

    result, series, phase_ends = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )

    lines = ["Fig 9: DDMD tuning, CPU utilization per app node"]
    for host, points in sorted(series.items()):
        lines.append(
            render_series(
                f"  {host}",
                [p.time for p in points],
                [p.cpu_utilization for p in points],
            )
        )
    # Per-phase mean utilization across nodes.
    rows = []
    boundaries = [0.0] + phase_ends
    for phase, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        samples = [
            p.cpu_utilization
            for points in series.values()
            for p in points
            if lo < p.time <= hi
        ]
        gpu_samples = [
            p.gpu_utilization
            for points in series.values()
            for p in points
            if lo < p.time <= hi
        ]
        cfg = DDMD_TUNING_PHASES[phase]
        rows.append(
            [
                phase,
                cfg["cores_per_sim_task"],
                cfg["cores_per_train_task"],
                f"{np.mean(samples):.3f}" if samples else "-",
                f"{np.mean(gpu_samples):.3f}" if gpu_samples else "-",
            ]
        )
    lines.append(
        render_table(
            ["phase", "cores/sim", "cores/train", "mean CPU util",
             "mean GPU util"],
            rows,
        )
    )
    report("fig9", "\n".join(lines))

    # The headline claim: CPU utilization low in every phase, for
    # every core configuration.
    for row in rows:
        if row[3] != "-":
            assert float(row[3]) < 0.30
    # And the GPUs are where the work happens.
    all_cpu = [p.cpu_utilization for pts in series.values() for p in pts]
    all_gpu = [p.gpu_utilization for pts in series.values() for p in pts]
    assert np.mean(all_gpu) > np.mean(all_cpu)
    benchmark.extra_info["mean_cpu_util"] = round(float(np.mean(all_cpu)), 3)
    benchmark.extra_info["mean_gpu_util"] = round(float(np.mean(all_gpu)), 3)
