"""Table 1: OpenFOAM experiment summary — configuration and run check.

Regenerates the experiment summary table and executes the tuning run
(the overload run is exercised — and timed — by the Fig 4 bench).
"""

from conftest import openfoam_tuning_run

from repro.analysis import render_table
from repro.experiments import OVERLOAD, TUNING


def test_table1_openfoam_summary(benchmark, report):
    def regenerate():
        result = openfoam_tuning_run()
        rows = []
        for exp in (TUNING, OVERLOAD):
            rows.append(
                [
                    exp.name,
                    exp.num_tasks,
                    f"{exp.compute_nodes} (+{exp.agent_nodes})",
                    ",".join(str(r) for r in exp.rank_configs),
                    "proc, rp, tau" if exp.use_tau else ",".join(exp.monitors),
                    exp.soma_ranks_per_namespace,
                ]
            )
        table = render_table(
            [
                "Experiment",
                "Number of Tasks",
                "Number of Nodes",
                "MPI Ranks",
                "Monitors",
                "SOMA Ranks/Namespace",
            ],
            rows,
            title="Table 1: OpenFOAM Experiment Summary",
        )
        return table, result

    table, result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    report("table1", table)
    # The tuning run really produced 4 monitored tasks.
    assert len(result.application_tasks) == TUNING.num_tasks
    benchmark.extra_info["tuning_makespan_s"] = round(result.makespan, 1)
