"""Table 1: OpenFOAM experiment summary — configuration and run check.

Regenerates the experiment summary table and executes the tuning run
(the overload run is exercised — and timed — by the Fig 4 bench).
"""

from conftest import cell_payload

from repro.experiments import TUNING
from repro.sweep.artifacts import render_table1


def test_table1_openfoam_summary(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("openfoam-tuning"), rounds=1, iterations=1
    )
    report("table1", render_table1())
    # The tuning run really produced 4 monitored tasks.
    assert payload["num_application_tasks"] == TUNING.num_tasks
    benchmark.extra_info["tuning_makespan_s"] = round(payload["makespan"], 1)
