"""Table 2: DeepDriveMD mini-app experiment summary.

Regenerates the configuration table and sanity-runs the tuning
experiment (the scaling rows are exercised by the Fig 10/11 benches).
"""

from conftest import cell_payload

from repro.sweep.artifacts import render_table2


def test_table2_ddmd_summary(benchmark, report):
    payload = benchmark.pedantic(
        lambda: cell_payload("ddmd-tuning"), rounds=1, iterations=1
    )
    report("table2", render_table2())
    assert payload["pipeline0_stages"] == 6 * 4
    assert payload["pipeline0_succeeded"]
    benchmark.extra_info["tuning_makespan_s"] = round(payload["makespan"], 1)
