"""Table 2: DeepDriveMD mini-app experiment summary.

Regenerates the configuration table and sanity-runs the tuning
experiment (the scaling rows are exercised by the Fig 10/11 benches).
"""

from conftest import ddmd_tuning_run

from repro.analysis import render_table
from repro.experiments import (
    SCALING_A,
    SCALING_B,
    adaptive_experiment,
    tuning_experiment,
)


def test_table2_ddmd_summary(benchmark, report):
    def regenerate():
        result = ddmd_tuning_run()
        tuning = tuning_experiment()
        adaptive = adaptive_experiment()
        rows = [
            [
                "Tuning",
                tuning.phases,
                tuning.pipelines,
                tuning.app_nodes,
                tuning.soma_nodes,
                "1,3,7",
                "1",
                "1,3,7",
                tuning.soma_config().total_ranks,
                f"{tuning.monitoring_frequency:.0f}",
            ],
            [
                "Adaptive",
                adaptive.phases,
                adaptive.pipelines,
                adaptive.app_nodes,
                adaptive.soma_nodes,
                adaptive.params.cores_per_sim_task,
                "1,2,4,6",
                adaptive.params.cores_per_train_task,
                adaptive.soma_config().total_ranks,
                f"{adaptive.monitoring_frequency:.0f}",
            ],
        ]
        for soma_nodes in (1, 2, 4):
            exp = SCALING_A(soma_nodes, "exclusive")
            rows.append(
                [
                    "Scaling A",
                    exp.phases,
                    exp.pipelines,
                    exp.app_nodes,
                    exp.soma_nodes,
                    exp.params.cores_per_sim_task,
                    exp.params.num_train_tasks,
                    exp.params.cores_per_train_task,
                    exp.soma_config().total_ranks,
                    f"{exp.monitoring_frequency:.0f}",
                ]
            )
        for pipelines in (64, 128, 256, 512):
            exp = SCALING_B(pipelines, "exclusive")
            rows.append(
                [
                    "Scaling B",
                    exp.phases,
                    exp.pipelines,
                    exp.app_nodes,
                    exp.soma_nodes,
                    exp.params.cores_per_sim_task,
                    exp.params.num_train_tasks,
                    exp.params.cores_per_train_task,
                    exp.soma_config().total_ranks,
                    "60,10",
                ]
            )
        table = render_table(
            [
                "Experiment",
                "Phases",
                "Pipelines",
                "App Nodes",
                "SOMA Nodes",
                "Cores/Sim",
                "Train Tasks",
                "Cores/Train",
                "SOMA Ranks",
                "Freq (s)",
            ],
            rows,
            title="Table 2: DeepDriveMD Mini-app Experiment Summary",
        )
        return table, result

    table, result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    report("table2", table)
    pipeline = result.payload["pipelines"][0]
    assert len(pipeline.stages) == 6 * 4
    assert pipeline.succeeded
    benchmark.extra_info["tuning_makespan_s"] = round(result.makespan, 1)
