"""Shared infrastructure for the per-table / per-figure benchmarks.

Each bench consumes one or more **sweep cells** from the default
matrix (:func:`repro.sweep.default_matrix`) — the same declarative
(experiment × seed × config) grid ``python -m repro sweep``
parallelizes — and renders its table/series through the shared
renderers in :mod:`repro.sweep.artifacts`.  That single source of
truth is what makes a sweep regeneration byte-identical to a bench
run.

Cell payloads are cached per pytest session, so figure benches that
share a run (e.g. Figs 4/6/8 all read the overloaded OpenFOAM cell)
do not re-simulate it.  Results are written to ``benchmarks/results/``
through the sweep journal's atomic temp-file + rename helper, so an
interrupted bench never leaves a truncated artifact behind.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Set REPRO_FULL_SCALE=1 to run Scaling B up to 512 nodes (minutes);
#: the default covers 64 and 128 nodes.
FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "0") == "1"

_cache: dict[str, object] = {}


def cached(key: str, factory):
    """Compute-once cache shared by all benches in one pytest run."""
    if key not in _cache:
        _cache[key] = factory()
    return _cache[key]


def cell_payload(key: str) -> dict:
    """Run (once per session) one cell of the default sweep matrix."""

    def factory():
        from repro.experiments.harness import run_cell
        from repro.sweep import default_matrix

        matrix, _ = default_matrix()
        cell = matrix[key]
        return run_cell(cell.family, cell.params, cell.seed)

    return cached(f"cell:{key}", factory)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write (atomically) and echo a rendered report for one artifact."""
    from repro.sweep import atomic_write_text

    def _write(name: str, text: str) -> str:
        path = atomic_write_text(results_dir / f"{name}.txt", text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return text

    return _write
