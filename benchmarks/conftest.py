"""Shared infrastructure for the per-table / per-figure benchmarks.

Heavy experiment runs are cached per session so the figure benches
that consume the same run (e.g. Figs 4/5/6/8 all come from the
OpenFOAM runs of Table 1) do not re-simulate it.  Every bench renders
its table/series through :mod:`repro.analysis.report` and writes the
text into ``benchmarks/results/`` so the regenerated "paper output"
survives pytest's stdout capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Set REPRO_FULL_SCALE=1 to run Scaling B up to 512 nodes (minutes);
#: the default covers 64 and 128 nodes.
FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "0") == "1"

_cache: dict[str, object] = {}


def cached(key: str, factory):
    """Compute-once cache shared by all benches in one pytest run."""
    if key not in _cache:
        _cache[key] = factory()
    return _cache[key]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write (and echo) a rendered report for one table/figure."""

    def _write(name: str, text: str) -> str:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return text

    return _write


# -- canonical experiment runs (shared across benches) -----------------


def openfoam_tuning_run():
    from repro.experiments import TUNING, run_openfoam_experiment

    return cached(
        "openfoam-tuning", lambda: run_openfoam_experiment(TUNING, seed=11)
    )


def openfoam_overload_run():
    from repro.experiments import OVERLOAD, run_openfoam_experiment

    return cached(
        "openfoam-overload", lambda: run_openfoam_experiment(OVERLOAD, seed=21)
    )


def ddmd_tuning_run():
    from repro.experiments import run_ddmd_experiment, tuning_experiment

    return cached(
        "ddmd-tuning",
        lambda: run_ddmd_experiment(tuning_experiment(), seed=7),
    )


def scaling_b_run(pipelines: int, mode: str, frequent: bool = False):
    from repro.experiments import SCALING_B, run_ddmd_experiment

    key = f"scaling-b-{pipelines}-{mode}-{frequent}"
    return cached(
        key,
        lambda: run_ddmd_experiment(
            SCALING_B(pipelines, mode, frequent=frequent), seed=5
        ),
    )


def scaling_a_run(soma_nodes: int, mode: str):
    from repro.experiments import SCALING_A, run_ddmd_experiment

    key = f"scaling-a-{soma_nodes}-{mode}"
    return cached(
        key,
        lambda: run_ddmd_experiment(SCALING_A(soma_nodes, mode), seed=5),
    )
