"""Event-queue backend microbenchmarks -> BENCH_perf.json.

Three benches, heap vs calendar on identical operation streams:

* ``queue_churn`` — raw queue-op cost (schedule bursts, zero-delay
  push/pop churn) against a pending population swept from 10^3 to
  10^6 entries.  This isolates the O(log n)-vs-O(log b) claim: the
  heap's per-op cost grows with the *whole* pending set, the
  calendar's only with the current bucket.
* ``cancel_churn`` — kernel-level schedule/cancel/reschedule traffic
  (the retry/timeout tombstone pattern) through a real
  :class:`Environment` per backend, asserting the kernel counters —
  including tombstone skips — stay byte-identical.
* ``fig11_scale_kernel`` — event-kernel cost at the paper's fig. 11
  scale (1024 nodes, 100k tasks): a full machine's pending population
  (per-slot completion deadlines, per-node monitor timers, walltime
  clock) under (a) the steady-state zero-delay cascade mix that
  dominates real runs — the headline >= 3x ``speedup`` — and (b) a
  full completion-wave replay (``replay_speedup``), where far pops
  come from populated buckets and the advantage is smaller.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_event_queue.py
    PYTHONPATH=src python benchmarks/perf/bench_event_queue.py --quick --out BENCH_perf.json

When ``--out`` already holds a perf-suite JSON (e.g. written by
``bench_kernel.py``), the event-queue benches are merged into its
``benches`` map instead of clobbering it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from perf_common import best_of, write_results

from repro.sim import Environment, make_event_queue

BACKENDS = ("heap", "calendar")

#: Far-future population shape: staggered offsets over a day, the
#: monitor-timer / walltime-deadline band of a long-running workflow.
_SPREAD = 86_400.0


def _populate(queue, pending: int) -> int:
    for eid in range(pending):
        queue.push(((eid * 863.0) % _SPREAD, 1, eid, None))
    return pending


def _schedule_burst(backend: str, pending: int, ops: int) -> float:
    """Push ``ops`` entries at mixed delays into an n-deep queue.

    Delays sweep 0..1h from the current instant — the shape of retry
    clocks, monitor ticks, and walltime slices a live run schedules —
    so most land in future buckets (O(1) append for the calendar,
    O(log n) sift for the heap).
    """
    queue = make_event_queue(backend)
    eid = _populate(queue, pending)
    start = time.perf_counter()
    for i in range(ops):
        queue.push((float((i * 97) % 3600), i % 2, eid, None))
        eid += 1
    return time.perf_counter() - start


def _pop_churn(backend: str, pending: int, ops: int) -> float:
    """Zero/short-delay push/pop churn riding an n-deep population."""
    queue = make_event_queue(backend)
    eid = _populate(queue, pending)
    now = 0.0
    start = time.perf_counter()
    for _ in range(ops):
        queue.push((now, 0, eid, None))
        eid += 1
        queue.push((now + 0.001, 1, eid, None))
        eid += 1
        queue.pop()
        now = queue.pop()[0]
    return time.perf_counter() - start


def queue_churn(pending_levels: tuple[int, ...], ops: int) -> dict:
    levels = {}
    for pending in pending_levels:
        per_backend = {}
        for backend in BACKENDS:
            # The bench functions time only the op loop, not the
            # _populate setup, so min the *returned* elapsed values.
            schedule = min(
                _schedule_burst(backend, pending, ops) for _ in range(3)
            )
            pop = min(_pop_churn(backend, pending, ops) for _ in range(3))
            per_backend[backend] = {
                "schedule_seconds": schedule,
                "pop_churn_seconds": pop,
                "seconds": schedule + pop,
            }
        heap_s = per_backend["heap"]["seconds"]
        cal_s = per_backend["calendar"]["seconds"]
        levels[str(pending)] = {
            **per_backend,
            "speedup": heap_s / cal_s if cal_s > 0 else None,
        }
    return {"ops": ops, "levels": levels}


def cancel_churn(n: int) -> dict:
    """Schedule/cancel/reschedule traffic through a real kernel.

    Every third timeout is tombstoned (the losing-clock pattern of the
    retry layer) and half of those immediately rescheduled; the drain
    then reaps the tombstones lazily.  Counters must not depend on the
    backend.
    """

    def run(backend):
        env = Environment(sanitize=False, event_queue=backend)
        live = []
        for i in range(n):
            timeout = env.timeout(1.0 + (i % 60))
            if i % 3 == 0:
                timeout.cancel_scheduled()
                if i % 6 == 0:
                    live.append(env.timeout(0.5 + (i % 7)))
            else:
                live.append(timeout)
        env.run()
        return env

    out = {}
    counters = {}
    for backend in BACKENDS:
        seconds, env = best_of(lambda b=backend: run(b))
        out[backend] = {"seconds": seconds}
        counters[backend] = env.kernel_counters()
    assert counters["heap"] == counters["calendar"], (
        "kernel counters diverged between backends",
        counters,
    )
    heap_s = out["heap"]["seconds"]
    cal_s = out["calendar"]["seconds"]
    return {
        "timeouts": n,
        **out,
        "speedup": heap_s / cal_s if cal_s > 0 else None,
        "counters": counters["calendar"],
    }


def fig11_scale_kernel(
    nodes: int, tasks: int, slots_per_node: int = 42
) -> dict:
    """Event-kernel cost at the paper's fig. 11 scale, two measures.

    Both drive a pending population shaped like a full monitored
    machine mid-run.  A measured run holds ~2.1 pending entries per
    occupied slot (peak_heap_size 11,139 against 5,376 slots at 128
    nodes / 10k tasks: the completion deadline plus an in-flight
    timeout/tombstone clock), so the population carries one deadline
    and one companion clock per slot (~86k at 1024 nodes), plus
    staggered per-node monitor timers and the pilot walltime clock.

    * ``speedup`` (headline) — steady-state cascade cost: the
      zero-delay URGENT traffic that dominates a real run
      (``events_executed`` is ~10x the task count, and nearly all of
      those — grants, store dispatch, RPC hops — fire at the *same
      instant* as the event that caused them), measured as same-time
      push/pop bursts against the parked population.  The heap pays
      O(log pending) per op for events that never interact with the
      far band; the calendar pays O(log current-bucket).
    * ``replay_speedup`` — a full wave replay: every completion pops
      its far deadline, fires cascade hops, and replenishes the band
      180 s out, through all ``tasks`` completions.  Far pops come
      from populated buckets, so the advantage is smaller; reported
      alongside the headline so the record stays honest about both
      regimes.
    """
    concurrent = min(tasks, nodes * slots_per_node)

    def build_pending(backend):
        queue = make_event_queue(backend)
        eid = 0
        for node in range(nodes):
            queue.push((60.0 * (1.0 + node / nodes), 1, eid, "monitor"))
            eid += 1
        for i in range(concurrent):
            queue.push(
                (180.0 + (i * 7) % 20 + (i % 997) * 1e-4, 1, eid, "task")
            )
            eid += 1
            # Companion clock per in-flight task: the timeout/retry
            # band that a measured run shows riding behind the
            # completion deadlines (mostly tombstoned, still pending).
            queue.push(
                (240.0 + (i * 13) % 60 + (i % 997) * 1e-4, 1, eid, "clock")
            )
            eid += 1
        queue.push((30 * 24 * 3600.0, 1, eid, "walltime"))
        eid += 1
        return queue, eid

    def cascade(backend):
        queue, eid = build_pending(backend)
        now = 0.0
        start = time.perf_counter()
        for _ in range(tasks):
            queue.push((now, 0, eid, None))
            eid += 1
            queue.push((now, 0, eid, None))
            eid += 1
            queue.pop()
            queue.pop()
        return time.perf_counter() - start

    def replay(backend):
        queue, eid = build_pending(backend)
        launched = concurrent
        done = 0
        now = 0.0
        start = time.perf_counter()
        while done < tasks:
            when, _prio, _eid, kind = queue.pop()
            now = when
            if kind == "task":
                done += 1
                for _ in range(8):
                    queue.push((now, 0, eid, "hop"))
                    eid += 1
                    queue.pop()
                if launched < tasks:
                    queue.push(
                        (now + 180.0 + (eid * 7) % 20, 1, eid, "task")
                    )
                    eid += 1
                    launched += 1
            elif kind == "monitor" and done < tasks:
                queue.push((now + 60.0, 1, eid, "monitor"))
                eid += 1
        return time.perf_counter() - start

    out = {}
    for backend in BACKENDS:
        out[backend] = {
            "cascade_seconds": min(cascade(backend) for _ in range(5)),
            "replay_seconds": min(replay(backend) for _ in range(3)),
        }
    heap = out["heap"]
    cal = out["calendar"]
    return {
        "nodes": nodes,
        "tasks": tasks,
        "concurrent": concurrent,
        **out,
        "speedup": heap["cascade_seconds"] / cal["cascade_seconds"]
        if cal["cascade_seconds"] > 0
        else None,
        "replay_speedup": heap["replay_seconds"] / cal["replay_seconds"]
        if cal["replay_seconds"] > 0
        else None,
    }


def run_all(quick: bool = False) -> dict:
    # Microbench hygiene: collector pauses otherwise land inside timed
    # regions (the replay legs allocate millions of entry tuples).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _run_all(quick)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()


def _run_all(quick: bool) -> dict:
    if quick:
        pending_levels = (1_000, 10_000, 100_000)
        ops = 20_000
        cancel_n = 30_000
        nodes, tasks = 512, 20_000
    else:
        pending_levels = (1_000, 10_000, 100_000, 1_000_000)
        ops = 50_000
        cancel_n = 100_000
        # Summit: 4608 nodes.  At 42 usable slots per node the machine
        # holds all 100k tasks in flight at once, so the pending set
        # peaks around 2 entries per task (~205k with monitors).
        nodes, tasks = 4_608, 100_000
    return {
        "schema": 1,
        "quick": quick,
        "python": sys.version.split()[0],
        "benches": {
            "event_queue_churn": queue_churn(pending_levels, ops),
            "event_queue_cancel": cancel_churn(cancel_n),
            "fig11_scale_kernel": fig11_scale_kernel(nodes, tasks),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_perf.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scale the benches down (CI smoke)",
    )
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    merged = results
    if os.path.exists(args.out):
        try:
            with open(args.out) as handle:
                merged = json.load(handle)
        except (OSError, ValueError):
            merged = results
        else:
            merged.setdefault("benches", {}).update(results["benches"])
    write_results(args.out, merged)

    churn = results["benches"]["event_queue_churn"]
    for pending, level in churn["levels"].items():
        print(
            f"queue_churn @{int(pending):>9,} pending   "
            f"heap {level['heap']['seconds'] * 1e3:7.1f} ms   "
            f"calendar {level['calendar']['seconds'] * 1e3:7.1f} ms   "
            f"speedup {level['speedup']:.2f}x"
        )
    cancel = results["benches"]["event_queue_cancel"]
    print(
        f"cancel_churn     {cancel['calendar']['seconds'] * 1e3:9.1f} ms   "
        f"(heap {cancel['heap']['seconds'] * 1e3:.1f} ms, "
        f"speedup {cancel['speedup']:.2f}x)"
    )
    fig11 = results["benches"]["fig11_scale_kernel"]
    print(
        f"fig11_scale_kernel {fig11['nodes']} nodes / {fig11['tasks']:,} tasks   "
        f"cascade {fig11['speedup']:.2f}x "
        f"(heap {fig11['heap']['cascade_seconds'] * 1e3:.1f} ms, "
        f"calendar {fig11['calendar']['cascade_seconds'] * 1e3:.1f} ms)   "
        f"replay {fig11['replay_speedup']:.2f}x"
    )
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
