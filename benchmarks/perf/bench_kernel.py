"""Kernel hot-path microbenchmarks -> BENCH_perf.json.

Five benches, smallest to largest:

* ``store_churn`` — 10k blocked getters drained by 10k puts, new
  deque-backed Store vs an in-tree replica of the legacy list-based
  dispatch (reports the speedup the O(1) rewrite buys);
* ``resource_contention`` — thousands of processes serialized through a
  small Resource;
* ``batch_grant`` — a long stream of batch jobs granted and released;
* ``rpc_fanout`` — concurrent clients fanning calls into one RPC server;
* ``fig4_e2e`` — the full OpenFOAM rank-tuning experiment behind the
  paper's Fig 4, end to end, with the kernel counters of a standalone
  probe environment alongside.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py
    PYTHONPATH=src python benchmarks/perf/bench_kernel.py --quick --out BENCH_perf.json
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import time

from perf_common import (
    LegacyFilterStore,
    LegacyStore,
    best_of,
    timed,
    write_results,
)

from repro.platform import Cluster, JobRequest, summit_like
from repro.platform.batch import BatchSystem
from repro.messaging import RPCClient, RPCServer
from repro.sim import Environment, FilterStore, Resource, Store


def store_churn(n: int) -> dict:
    """Churn through stores carrying an n-deep waiter backlog.

    Two phases, each measured against an in-tree replica of the legacy
    list-based dispatch:

    * ``fifo``   — n blocked getters drained by n puts (deque popleft
      vs ``list.pop(0)``);
    * ``filter`` — n blocked filter-waiters arrive over a buffer of
      tagged items, which are then drained by exact-match gets.  The
      legacy dispatch rescanned every waiter against every item on
      every operation (O(waiters x items) per op); the incremental
      dispatch vets each waiter and each item exactly once.

    The headline ``speedup`` is combined wall time, legacy over new.
    """

    def run_fifo(store_cls):
        env = Environment()
        store = store_cls(env)
        gets = [store.get() for _ in range(n)]
        for i in range(n):
            store.put(i)
        env.run()
        assert gets[-1].value == n - 1
        return env

    tags = max(8, n // 250)

    def never(item):
        return False

    def run_filter(store_cls):
        env = Environment()
        store = store_cls(env)
        # Timed region: the churn itself — n waiter arrivals, then
        # tagged put/get rounds threading items past the backlog.  The
        # event drain afterwards does identical work on both sides.
        start = time.perf_counter()
        blocked = [store.get(never) for _ in range(n)]
        for i in range(tags):
            store.put(i)
            got = store.get(lambda item, i=i: item == i)
            assert got.triggered and got.value == i
        elapsed = time.perf_counter() - start
        env.run()
        assert not any(b.triggered for b in blocked)
        return elapsed

    fifo_new, env = best_of(lambda: run_fifo(Store))
    fifo_legacy, _ = best_of(lambda: run_fifo(LegacyStore))
    repeats = 1 if n >= 10_000 else 3  # legacy filter churn is O(n^2)
    filter_new = min(run_filter(FilterStore) for _ in range(repeats))
    filter_legacy = min(run_filter(LegacyFilterStore) for _ in range(repeats))

    seconds = fifo_new + filter_new
    legacy_seconds = fifo_legacy + filter_legacy
    return {
        "waiters": n,
        "seconds": seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": legacy_seconds / seconds if seconds > 0 else None,
        "fifo": {
            "seconds": fifo_new,
            "legacy_seconds": fifo_legacy,
            "speedup": fifo_legacy / fifo_new if fifo_new > 0 else None,
        },
        "filter": {
            "tags": tags,
            "seconds": filter_new,
            "legacy_seconds": filter_legacy,
            "speedup": filter_legacy / filter_new if filter_new > 0 else None,
        },
        "counters": env.kernel_counters(),
    }


def resource_contention(n: int, capacity: int) -> dict:
    """n processes contending for a capacity-bounded resource."""

    def run():
        env = Environment()
        resource = Resource(env, capacity=capacity)

        def proc(env):
            with resource.request() as req:
                yield req
                yield env.timeout(1.0)

        for _ in range(n):
            env.process(proc(env))
        env.run()
        return env

    seconds, env = best_of(run)
    return {
        "processes": n,
        "capacity": capacity,
        "seconds": seconds,
        "counters": env.kernel_counters(),
    }


def batch_grant(jobs: int, nodes: int) -> dict:
    """A stream of batch jobs granted and released through the queue."""

    def run():
        env = Environment()
        cluster = Cluster(env, summit_like(nodes))
        batch = BatchSystem(env, cluster.nodes)

        def job(env, size, hold):
            alloc = yield from batch.submit(
                JobRequest(nodes=size, walltime=1e9)
            )
            yield env.timeout(hold)
            batch.release(alloc)

        for i in range(jobs):
            size = 1 + (i % (nodes // 2))
            env.process(job(env, size, 1.0 + (i % 7)))
        env.run()
        assert batch.completed == jobs
        return env

    seconds, env = best_of(run)
    return {
        "jobs": jobs,
        "nodes": nodes,
        "seconds": seconds,
        "counters": env.kernel_counters(),
    }


def rpc_fanout(calls: int, ranks: int) -> dict:
    """Concurrent clients fanning requests into one RPC server."""

    def run():
        env = Environment()
        cluster = Cluster(env, summit_like(2))
        server = RPCServer(
            env, cluster.network, None, name="svc", ranks=ranks
        )
        server.register("echo", lambda req: req.body)
        client = RPCClient(env, cluster.network, "bench-client")

        def caller(env, i):
            yield from client.call(
                server, "echo", body=i, payload_bytes=128.0
            )

        for i in range(calls):
            env.process(caller(env, i))
        env.run()
        assert client.calls == calls
        return env

    seconds, env = best_of(run)
    return {
        "calls": calls,
        "ranks": ranks,
        "seconds": seconds,
        "counters": env.kernel_counters(),
    }


def fig4_e2e() -> dict:
    """The paper's Fig 4 workload (OpenFOAM rank tuning), end to end."""
    from repro.experiments import TUNING, run_openfoam_experiment

    seconds, result = timed(lambda: run_openfoam_experiment(TUNING, seed=33))
    return {
        "seconds": seconds,
        "makespan": result.makespan,
        "tasks": len(result.tasks),
    }


def run_all(quick: bool = False) -> dict:
    benches = {
        "store_churn": store_churn(1_000 if quick else 10_000),
        "resource_contention": resource_contention(500 if quick else 5_000, 8),
        "batch_grant": batch_grant(100 if quick else 1_000, 32),
        "rpc_fanout": rpc_fanout(100 if quick else 1_000, 8),
        "fig4_e2e": fig4_e2e(),
    }
    return {
        "schema": 1,
        "quick": quick,
        "python": sys.version.split()[0],
        "benches": benches,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_perf.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scale the microbenches down 10x (CI smoke)",
    )
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    write_results(args.out, results)

    churn = results["benches"]["store_churn"]
    print(f"store_churn      {churn['seconds'] * 1e3:9.1f} ms   "
          f"(legacy {churn['legacy_seconds'] * 1e3:.1f} ms, "
          f"speedup {churn['speedup']:.1f}x)")
    for name in ("resource_contention", "batch_grant", "rpc_fanout",
                 "fig4_e2e"):
        bench = results["benches"][name]
        print(f"{name:16s} {bench['seconds'] * 1e3:9.1f} ms")
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
