"""NamespaceStore per-source query microbenchmark -> BENCH_perf.json.

The bottleneck detectors (and the between-phase adaptive analyses)
query the SOMA stores *per monitor source*: utilization series for one
node's ``hwmon@…``, TAU breakdowns for one ``tau@…`` task, workflow
summaries for one ``rpmon``.  The store keeps a per-source index
maintained on append, so those queries bisect a source-local list
instead of filtering the whole namespace.

This bench measures that claim against a faithful in-tree replica of
the legacy algorithm (global time bisect + linear ``record.source``
filter) on identical stores, and asserts the two return identical
records — the speedup is only meaningful if the answers agree.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_store_query.py
    PYTHONPATH=src python benchmarks/perf/bench_store_query.py --quick --out BENCH_perf.json

When ``--out`` already holds a perf-suite JSON (e.g. written by
``bench_kernel.py``), this bench merges into its ``benches`` map
instead of clobbering it.
"""

from __future__ import annotations

import argparse
import bisect
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from perf_common import best_of, write_results

from repro.conduit import Node
from repro.soma.storage import NamespaceStore


class LegacyNamespaceStore(NamespaceStore):
    """Replica of the pre-index store: time bisect, linear source scan.

    Kept only as the baseline side of this microbenchmark, so the
    measured speedup is against the real legacy algorithm rather than
    a guess.
    """

    def records(self, source=None, since=None, until=None):
        times = self._times
        lo = 0 if since is None else bisect.bisect_left(times, since)
        hi = len(times) if until is None else bisect.bisect_right(times, until)
        window = self._records[lo:hi]
        if source is None:
            return window
        return [record for record in window if record.source == source]

    def latest(self, source=None):
        if source is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.source == source:
                return record
        return None


def _payload() -> Node:
    node = Node()
    node["cpu/utilization"] = 0.41
    node["memory/bandwidth_utilization"] = 0.17
    return node


def _source(index: int) -> str:
    return f"hwmon@cn{index:04d}"


def _populate(store: NamespaceStore, sources: int, per_source: int) -> None:
    """Round-robin publishes: ``sources`` monitors on a shared period."""
    payload = _payload()
    period = 30.0
    for tick in range(per_source):
        for index in range(sources):
            # Monitors fire staggered within the period, as deployed.
            at = tick * period + index * (period / sources)
            store.append(at, _source(index), payload)


def _window_queries(store: NamespaceStore, sources: int, queries: int) -> int:
    """The detector access pattern: one source, a trailing window."""
    horizon = store.records()[-1].time
    matched = 0
    for q in range(queries):
        source = _source(q % sources)
        since = (q * 379.0) % (horizon / 2)
        rows = store.records(source=source, since=since, until=since + horizon / 2)
        last = store.latest(source)
        matched += len(rows) + (last is not None)
    return matched


def _equivalent(indexed: NamespaceStore, legacy: NamespaceStore, sources: int) -> bool:
    horizon = indexed.records()[-1].time
    probes = [
        (None, None, None),
        (_source(0), None, None),
        (_source(sources - 1), horizon / 3, 2 * horizon / 3),
        (_source(sources // 2), horizon / 2, None),
        ("absent@nowhere", None, None),
    ]
    for source, since, until in probes:
        if indexed.records(source=source, since=since, until=until) != legacy.records(
            source=source, since=since, until=until
        ):
            return False
    return all(
        indexed.latest(_source(i)) == legacy.latest(_source(i))
        for i in range(sources)
    )


def store_query(sources: int, per_source: int, queries: int) -> dict:
    indexed = NamespaceStore("perf")
    legacy = LegacyNamespaceStore("perf")
    _populate(indexed, sources, per_source)
    _populate(legacy, sources, per_source)

    legacy_seconds, legacy_matched = best_of(
        lambda: _window_queries(legacy, sources, queries)
    )
    indexed_seconds, indexed_matched = best_of(
        lambda: _window_queries(indexed, sources, queries)
    )
    return {
        "sources": sources,
        "records": sources * per_source,
        "queries": queries,
        "legacy": {"seconds": legacy_seconds, "matched": legacy_matched},
        "indexed": {"seconds": indexed_seconds, "matched": indexed_matched},
        "speedup": legacy_seconds / indexed_seconds,
        "equivalent": (
            legacy_matched == indexed_matched
            and _equivalent(indexed, legacy, sources)
        ),
    }


def run_all(quick: bool = False) -> dict:
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if quick:
            bench = store_query(sources=16, per_source=400, queries=400)
        else:
            # A Scaling-A-sized deployment: 64 hardware monitors
            # publishing for a long run.
            bench = store_query(sources=64, per_source=4_000, queries=2_000)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    return {
        "schema": 1,
        "quick": quick,
        "python": sys.version.split()[0],
        "benches": {"store_source_query": bench},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_perf.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scale the bench down (CI smoke)",
    )
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    merged = results
    if os.path.exists(args.out):
        try:
            with open(args.out) as handle:
                merged = json.load(handle)
        except (OSError, ValueError):
            merged = results
        else:
            merged.setdefault("benches", {}).update(results["benches"])
    write_results(args.out, merged)

    bench = results["benches"]["store_source_query"]
    print(
        f"store_source_query {bench['sources']} sources / "
        f"{bench['records']:,} records / {bench['queries']:,} queries   "
        f"legacy {bench['legacy']['seconds'] * 1e3:7.1f} ms   "
        f"indexed {bench['indexed']['seconds'] * 1e3:7.1f} ms   "
        f"speedup {bench['speedup']:.2f}x   "
        f"equivalent={bench['equivalent']}"
    )
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
