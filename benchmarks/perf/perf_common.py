"""Shared infrastructure for the kernel microbenchmarks.

The perf suite answers two questions the figure benches cannot:

* did the O(1) queue work actually pay off (measured against a
  faithful in-tree replica of the legacy list-based dispatch), and
* are the kernel counters (events scheduled, peak heap, waiter-queue
  high-water mark) drifting between commits.

Results are written to ``BENCH_perf.json`` so CI can archive one file
per commit and regressions show up as a diff.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from repro.sim.core import NORMAL, Environment
from repro.sim.stores import FilterStoreGet, Store


def timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` once, returning (wall seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def best_of(fn: Callable[[], Any], repeats: int = 3) -> tuple[float, Any]:
    """Best wall time over ``repeats`` runs (noise floor for CI boxes)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        seconds, result = timed(fn)
        best = min(best, seconds)
    return best, result


class LegacyStore(Store):
    """Replica of the pre-deque Store: list items, ``pop(0)`` dispatch.

    Kept only as the baseline side of the store-churn microbenchmark,
    so the measured speedup is against the real legacy algorithm rather
    than a guess.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._put_waiters = []  # type: ignore[assignment]
        self._get_waiters = []  # type: ignore[assignment]

    def _new_items(self) -> Any:
        return []

    def _extract(self) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters:
                put = self._put_waiters[0]
                if put.triggered or put._cancelled:
                    self._put_waiters.pop(0)
                    continue
                if len(self.items) < self._capacity:
                    self.items.append(put.item)
                    put.succeed(priority=NORMAL)
                    self._put_waiters.pop(0)
                    progress = True
                else:
                    break
            while self._get_waiters:
                get = self._get_waiters[0]
                if get.triggered or get._cancelled:
                    self._get_waiters.pop(0)
                    continue
                if self.items:
                    get.succeed(self.items.pop(0), priority=NORMAL)
                    self._get_waiters.pop(0)
                    progress = True
                else:
                    break


class LegacyFilterStore(LegacyStore):
    """Replica of the pre-rewrite FilterStore dispatch.

    Every store operation rescanned *every* blocked get-waiter against
    *every* buffered item and rebuilt the waiter list, so a deep waiter
    backlog made each operation O(waiters x items).  The store-churn
    microbenchmark measures the current incremental dispatch against
    this.
    """

    def get(self, predicate: Callable[[Any], bool] = lambda item: True):  # type: ignore[override]
        return FilterStoreGet(self, predicate)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters:
                put = self._put_waiters[0]
                if put.triggered or put._cancelled:
                    self._put_waiters.pop(0)
                    continue
                if len(self.items) < self._capacity:
                    self.items.append(put.item)
                    put.succeed(priority=NORMAL)
                    self._put_waiters.pop(0)
                    progress = True
                else:
                    break
            still_waiting = []
            for get in self._get_waiters:
                if get.triggered or get._cancelled:
                    continue
                matched = False
                for idx, item in enumerate(self.items):
                    if get.predicate(item):
                        del self.items[idx]
                        get.succeed(item, priority=NORMAL)
                        matched = True
                        progress = True
                        break
                if not matched:
                    still_waiting.append(get)
            self._get_waiters = still_waiting


def write_results(path: str, results: dict) -> None:
    from repro.sweep.journal import atomic_write_text

    atomic_write_text(path, json.dumps(results, indent=2, sort_keys=True) + "\n")
