#!/usr/bin/env python3
"""Chaos engineering demo: fault injection with graceful degradation.

Runs a monitored workflow while a scripted :class:`~repro.faults.FaultPlan`
batters the observability stack:

1. a **message storm** (dropped / delayed / duplicated RPCs);
2. a **rack partition** between a compute node and the SOMA service node;
3. a **collector outage** (the SOMA service ranks go down and restart).

The SOMA clients retry with exponential backoff, then *drop* samples and
record coverage gaps — application tasks are never stalled or failed by
an unhealthy monitoring plane.  Finally the run is repeated with the
same seed to show the whole chaos scenario is deterministic.

Run:  python examples/chaos_demo.py
"""

from repro import Client, PilotDescription, Session, SomaConfig, TaskDescription
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.platform import summit_like
from repro.rp import FixedDurationModel
from repro.soma import HARDWARE, WORKFLOW, deploy_soma


def run(seed):
    session = Session(cluster_spec=summit_like(4), seed=seed)
    # One node per rack so a partition isolates a single node.
    session.cluster.network.rack_size = 1
    client = Client(session)
    env = session.env
    out = {}

    def workflow(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=3, agent_nodes=1)
        )
        deployment = yield from deploy_soma(
            client,
            pilot,
            SomaConfig(
                namespaces=(WORKFLOW, HARDWARE),
                monitors=("proc", "rp"),
                monitoring_frequency=5.0,
                retry=RetryPolicy(
                    max_attempts=3,
                    base_delay=0.25,
                    multiplier=2.0,
                    jitter=0.1,
                    deadline=6.0,
                    timeout=2.0,
                ),
            ),
        )
        out["deployment"] = deployment

        # Script the chaos: storm, partition, collector outage.
        network = session.cluster.network
        victim = pilot.compute_nodes[0]
        service_node = deployment.service_model.servers[HARDWARE].node
        t0 = env.now
        plan = (
            FaultPlan()
            .rpc_drop(at=t0 + 5.0, probability=0.2, duration=12.0, stall=1.0)
            .rpc_delay(at=t0 + 5.0, probability=0.3, delay=0.4, duration=12.0)
            .rpc_duplicate(at=t0 + 5.0, probability=0.1, duration=12.0)
            .partition(
                at=t0 + 20.0,
                racks=(network.rack_of(victim), network.rack_of(service_node)),
                duration=10.0,
            )
            .service_outage(at=t0 + 35.0, duration=10.0)
        )
        injector = FaultInjector(session, plan)
        injector.start()
        out["injector"] = injector

        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"solver-{i}",
                    model=FixedDurationModel(50.0),
                    ranks=40,
                )
                for i in range(2)
            ]
        )
        yield from client.wait_tasks(tasks)
        out["tasks"] = tasks
        # One more monitoring cycle after the last fault heals.
        yield env.timeout(10.0)

    env.run(env.process(workflow(env)))
    client.close()
    env.run()  # drain shutdown
    return session, out


def trace_signature(session):
    return "\n".join(
        f"{rec.time!r}|{rec.category}|{rec.name}|{sorted(rec.data.items())!r}"
        for rec in session.tracer.records
    )


def main() -> None:
    session, out = run(seed=7)
    deployment, injector = out["deployment"], out["injector"]

    print("--- injected faults ---")
    for when, event in injector.applied:
        print(f"  [{when:7.1f}s] {event.kind}")

    print("\n--- tasks (never harmed by observability faults) ---")
    for task in out["tasks"]:
        print(f"  {task.uid}: {task.state} in {task.execution_time:.1f}s")

    print("\n--- monitoring degradation, per SOMA client ---")
    models = list(deployment.hw_monitor_models())
    if deployment.rp_monitor_model is not None:
        models.append(deployment.rp_monitor_model)
    for model in models:
        soma = model.client
        if soma is None:
            continue
        print(
            f"  {soma.name}: published={soma.published} "
            f"retries={soma.retries} dropped={soma.dropped} "
            f"gaps={soma.gaps} gap_seconds={soma.gap_seconds:.1f}"
        )

    gate = injector.message_faults
    print(
        f"\n--- message-storm gate: {gate.decided} draws, "
        f"{gate.dropped_requests + gate.dropped_responses} dropped, "
        f"{gate.delayed} delayed, {gate.duplicated} duplicated ---"
    )

    print("\n--- determinism: same seed, same chaos, same run ---")
    session2, _ = run(seed=7)
    same = trace_signature(session) == trace_signature(session2)
    print(f"  trace signatures identical: {same}")
    assert same


if __name__ == "__main__":
    main()
