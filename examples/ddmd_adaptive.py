#!/usr/bin/env python3
"""Adaptive DDMD workflow: online SOMA analysis between phases.

Reproduces the paper's second DDMD experiment (Sec 3.2): four phases
with 1/2/4/6 training tasks set a priori, while SOMA computes
free-resource estimates *online* between phases — the information a
future adaptive RP would use to resize the next phase.

The example prints, after each phase, the CPU headroom SOMA observed
and the training-task count a simple policy would have chosen,
illustrating the paper's conclusion that "the effect of using fewer
CPU cores per task was minimal" and that parallelizing training is
the productive direction.

Run:  python examples/ddmd_adaptive.py
"""

from repro.analysis import render_table
from repro.experiments import (
    DDMD_ADAPTIVE_TRAIN_COUNTS,
    adaptive_experiment,
    run_ddmd_experiment,
    stage_durations,
)


def recommend_train_tasks(headroom: dict, gpus_per_node: int = 6) -> int:
    """A toy adaptive policy: with ample CPU headroom, parallelize
    training up to the free-GPU budget (scaled by GPU headroom)."""
    if not headroom:
        return 1
    mean_cpu = sum(h["cpu"] for h in headroom.values()) / len(headroom)
    mean_gpu = sum(h["gpu"] for h in headroom.values()) / len(headroom)
    budget = max(1, int(gpus_per_node * mean_gpu))
    if mean_cpu > 0.75:
        return budget
    if mean_cpu > 0.5:
        return max(1, budget // 2)
    return 1


def main() -> None:
    experiment = adaptive_experiment()
    print(
        "running the adaptive DDMD workflow: 4 phases, training tasks "
        f"{list(DDMD_ADAPTIVE_TRAIN_COUNTS)} (a priori, as in Table 2)"
    )
    result = run_ddmd_experiment(experiment, seed=13, adaptive_analysis=True)
    print(f"makespan: {result.makespan:.0f} simulated seconds\n")

    analyses = result.payload["analyses"]
    train_times = stage_durations(result, "training")
    sim_times = stage_durations(result, "simulation")

    rows = []
    for phase, analysis in enumerate(analyses):
        headroom = analysis["headroom"]
        mean_headroom = (
            sum(h["cpu"] for h in headroom.values()) / len(headroom)
            if headroom
            else 0.0
        )
        rows.append(
            [
                phase,
                DDMD_ADAPTIVE_TRAIN_COUNTS[phase],
                f"{sim_times[phase]:.0f}",
                f"{train_times[phase]:.0f}",
                f"{mean_headroom:.2f}",
                recommend_train_tasks(headroom),
            ]
        )
    print(
        render_table(
            [
                "phase",
                "train tasks",
                "sim stage (s)",
                "train stage (s)",
                "CPU headroom",
                "policy suggests",
            ],
            rows,
            title="online SOMA analysis between phases",
        )
    )
    print(
        "\nObservation (paper Sec 4.3): CPU headroom stays high in every "
        "phase because the work is GPU-bound — so the adaptive lever is "
        "parallelizing training across free GPUs, not adding CPU cores."
    )


if __name__ == "__main__":
    main()
