#!/usr/bin/env python3
"""DeepDriveMD mini-app scaling under SOMA (paper Sec 3.2, Figs 10/11).

Runs a reduced Scaling-B comparison — m concurrent pipelines on m app
nodes in the baseline ("none"), "shared" and "exclusive" SOMA
configurations plus the "frequent" (10 s) variants — and prints the
per-pipeline runtime distributions and monitoring overheads the paper
reports.

Default is a laptop-friendly 16 pipelines; pass a pipeline count to go
bigger (the paper uses 64..512):

    python examples/ddmd_scaling.py 64
"""

import sys


from repro.analysis import compare_runtimes, fmt, fmt_percent, render_boxes
from repro.experiments import SCALING_B, pipeline_durations, run_ddmd_experiment
from repro.soma import HARDWARE


def main(pipelines: int = 16) -> None:
    configs = [
        ("none", False),
        ("shared", False),
        ("exclusive", False),
        ("shared", True),
        ("exclusive", True),
    ]
    durations: dict[str, list[float]] = {}
    for mode, frequent in configs:
        label = mode + ("-frequent" if frequent else "")
        exp = SCALING_B(pipelines, mode, frequent=frequent)
        if pipelines < 64:
            # Reduced geometry: keep the SOMA:app node ratio of the
            # 64-pipeline row, and damp the run-to-run noise so the
            # config differences are not buried at this small scale.
            exp = exp.with_updates(
                soma_nodes=0 if mode == "none" else max(1, pipelines // 16),
                params=exp.params.with_updates(noise_sigma=0.05),
            )
        print(f"running {label} with {pipelines} pipelines ...")
        result = run_ddmd_experiment(exp, seed=5)
        durations[label] = pipeline_durations(result)
        if result.deployment.enabled:
            hw = result.deployment.store(HARDWARE)
            print(
                f"  collected {len(hw)} hardware publishes from "
                f"{len(hw.sources())} nodes"
            )

    print()
    print(render_boxes(durations, title=f"pipeline runtimes, m={pipelines}"))

    print("\noverhead vs baseline (paper: frequent-exclusive ~1.4-4.6%):")
    baseline = durations.pop("none")
    for result in compare_runtimes(baseline, durations):
        direction = "speedup" if result.is_speedup else "overhead"
        print(
            f"  {result.config:20s} {fmt_percent(result.overhead_percent, '+6.2f'):>7s} "
            f"({direction}; mean {fmt(result.config_mean, '.1f')}s vs "
            f"{fmt(result.baseline_mean, '.1f')}s)"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
