#!/usr/bin/env python3
"""Closing the loop: SOMA observations tune OpenFOAM task descriptions.

Section 4.1 of the paper: "RP could collect information about MPI task
performance, and utilize that information to change the task
description, adjusting the number of ranks of each type of task in the
workflow.  As shown by our experiments, that would allow to utilize
the available resources better, thus reducing the total time to
completion of the entire workflow."

This example runs that loop with the :mod:`repro.adaptive` prototype:

1. a *probe* wave runs one instance of each rank configuration;
2. the :class:`RankTuningPolicy` scores the observed times and picks a
   configuration;
3. the remaining instances run at the chosen configuration —
   vs. a static baseline that keeps the original mixed configurations.

Run:  python examples/openfoam_rank_tuning.py
"""

from repro import Client, PilotDescription, Session
from repro.adaptive import AdaptiveController, RankTuningPolicy
from repro.platform import summit_like
from repro.soma import SomaConfig, WORKFLOW, HARDWARE, deploy_soma
from repro.workloads import OpenFOAMParams, openfoam_task_description

RANK_CONFIGS = (20, 41, 82, 164)
REMAINING_INSTANCES = 12
PARAMS = OpenFOAMParams()


def run_adaptive(seed: int = 11) -> tuple[float, int]:
    session = Session(cluster_spec=summit_like(6), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=5, agent_nodes=1)
        )
        deployment = yield from deploy_soma(
            client,
            pilot,
            SomaConfig(
                namespaces=(WORKFLOW, HARDWARE),
                monitors=("proc", "rp"),
                monitoring_frequency=60.0,
            ),
        )
        controller = AdaptiveController(
            client, deployment, rank_policy=RankTuningPolicy(0.35)
        )
        start = env.now
        # Probe wave: one instance per configuration.
        probes = client.submit_tasks(
            [
                openfoam_task_description(r, params=PARAMS, name=f"probe-{r}")
                for r in RANK_CONFIGS
            ]
        )
        yield from client.wait_tasks(probes)
        controller.observe_tasks(probes)
        choice = controller.recommended_ranks()
        # Production wave: everything at the tuned configuration.
        production = client.submit_tasks(
            [
                openfoam_task_description(
                    choice, params=PARAMS, name=f"prod-{i}"
                )
                for i in range(REMAINING_INSTANCES)
            ]
        )
        yield from client.wait_tasks(production)
        return env.now - start, choice

    makespan, choice = env.run(env.process(main(env)))
    client.close()
    return makespan, choice


def run_static(seed: int = 11) -> float:
    session = Session(cluster_spec=summit_like(6), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        yield from client.submit_pilot(
            PilotDescription(nodes=5, agent_nodes=1)
        )
        start = env.now
        descriptions = [
            openfoam_task_description(r, params=PARAMS, name=f"probe-{r}")
            for r in RANK_CONFIGS
        ]
        # Static: the remaining instances keep cycling the original
        # mixed configurations (the user's a-priori choice).
        for i in range(REMAINING_INSTANCES):
            ranks = RANK_CONFIGS[i % len(RANK_CONFIGS)]
            descriptions.append(
                openfoam_task_description(
                    ranks, params=PARAMS, name=f"static-{i}"
                )
            )
        tasks = client.submit_tasks(descriptions)
        yield from client.wait_tasks(tasks)
        return env.now - start

    makespan = env.run(env.process(main(env)))
    client.close()
    return makespan


def main() -> None:
    adaptive_makespan, choice = run_adaptive()
    static_makespan = run_static()
    print("OpenFOAM rank tuning on 5 compute nodes "
          f"({len(RANK_CONFIGS)} probes + {REMAINING_INSTANCES} instances):")
    print(f"  tuned configuration chosen : {choice} ranks")
    print(f"  adaptive makespan          : {adaptive_makespan:8.1f}s")
    print(f"  static (mixed) makespan    : {static_makespan:8.1f}s")
    change = (static_makespan - adaptive_makespan) / static_makespan * 100
    print(f"  improvement                : {change:8.1f}%")


if __name__ == "__main__":
    main()
