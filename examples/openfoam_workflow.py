#!/usr/bin/env python3
"""The OpenFOAM (ExaAM / AdditiveFOAM) workflow under SOMA monitoring.

Reproduces the paper's Sec 3.1 tuning run: one instance each of the
20 / 41 / 82 / 164-rank task configurations on 4 compute nodes (+1
agent/SOMA node), monitored by the proc, rp and TAU clients — then
prints the observability the paper derives from it:

* the strong-scaling picture (Fig 4, tuning subset),
* a per-rank TAU/MPI breakdown for one task (Fig 5),
* per-node CPU-utilization traces with task-start markers (Fig 7),
* the RP resource-utilization timeline summary (Fig 8, bottom).

Run:  python examples/openfoam_workflow.py
"""

import numpy as np

from repro.analysis import RUNNING, SCHEDULING, build_timeline, render_table, sparkline
from repro.experiments import (
    TUNING,
    execution_times_by_ranks,
    run_openfoam_experiment,
)
from repro.soma import (
    HARDWARE,
    PERFORMANCE,
    WORKFLOW,
    cpu_utilization_series,
    load_imbalance,
    rank_region_breakdown,
    task_state_observations,
)


def main() -> None:
    print("running the OpenFOAM tuning workflow (Table 1, 'Tuning')...")
    result = run_openfoam_experiment(TUNING, seed=11)
    print(f"makespan: {result.makespan:.0f} simulated seconds\n")

    # -- Fig 4 (tuning subset): execution time per configuration -----
    rows = []
    for ranks, times in sorted(execution_times_by_ranks(result).items()):
        rows.append([ranks, f"{times[0]:.1f}"])
    print(render_table(["MPI ranks", "exec time (s)"], rows,
                       title="strong scaling (one instance each)"))

    # -- Fig 5: per-rank MPI breakdown of the 20-rank task -----------
    task20 = result.payload["by_ranks"][20][0]
    store = result.deployment.store(PERFORMANCE)
    breakdown = rank_region_breakdown(store, task20.uid)
    print(f"\nTAU profile of {task20.uid} (20 ranks), seconds per region:")
    rows = []
    for rank in sorted(breakdown)[:8]:
        regions = breakdown[rank]
        rows.append(
            [
                rank,
                f"{regions['solveMomentum'] + regions['solveEnergy']:.1f}",
                f"{regions['MPI_Recv']:.1f}",
                f"{regions['MPI_Waitall']:.1f}",
                f"{regions['MPI_Allreduce']:.1f}",
            ]
        )
    print(render_table(
        ["rank", "solve", "MPI_Recv", "MPI_Waitall", "MPI_Allreduce"], rows
    ))
    print(f"load imbalance (max/mean): {load_imbalance(store, task20.uid):.3f}")

    # -- Fig 7: CPU utilization per node + task-start markers --------
    print("\nper-node CPU utilization (30 s samples):")
    series = cpu_utilization_series(result.deployment.store(HARDWARE))
    for host, points in sorted(series.items()):
        values = [p.cpu_utilization for p in points]
        print(f"  {host}: {sparkline(values, lo=0.0, hi=1.0)}")
    markers = task_state_observations(
        result.deployment.store(WORKFLOW), event="AGENT_EXECUTING"
    )
    app_uids = {t.uid for t in result.application_tasks}
    starts = [(t, uid) for t, uid in markers if uid in app_uids]
    print("task starts observed by the RP monitor:",
          ", ".join(f"{uid}@{t:.0f}s" for t, uid in starts))

    # -- Fig 8 (bottom): resource utilization accounting -------------
    timeline = build_timeline(result.session, result.tasks)
    total = result.session.cluster.total_cores * result.finished_at
    running = timeline.busy_core_seconds(RUNNING)
    scheduling = timeline.busy_core_seconds(SCHEDULING)
    print(
        f"\nRP resource view: {running:.0f} core-s running (green), "
        f"{scheduling:.0f} core-s scheduling (purple), "
        f"{100 * running / total:.1f}% of the allocation used"
    )


if __name__ == "__main__":
    main()
