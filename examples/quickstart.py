#!/usr/bin/env python3
"""Quickstart: run a monitored workflow on the simulated platform.

Walks through the full stack in ~60 lines of user code:

1. create a Session on a Summit-like cluster;
2. submit a pilot (batch job -> agent bootstrap);
3. deploy SOMA (service task + RP monitor + per-node hardware monitors);
4. run a bag of application tasks;
5. query the collected observability data, online and offline.

Run:  python examples/quickstart.py
"""

from repro import Client, PilotDescription, Session, SomaConfig, TaskDescription
from repro.platform import summit_like
from repro.rp import ComputeModel
from repro.soma import (
    HARDWARE,
    WORKFLOW,
    cpu_utilization_series,
    deploy_soma,
    render_dashboard,
    workflow_summary_series,
)


def main() -> None:
    # A 6-node Summit-like machine (42 usable cores + 6 GPUs per node).
    session = Session(cluster_spec=summit_like(6), seed=42)
    client = Client(session)
    env = session.env

    def workflow(env):
        # 1. Acquire resources: 4 compute nodes + 1 agent/SOMA node.
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=4, agent_nodes=1)
        )
        print(f"[{env.now:8.1f}s] pilot active on "
              f"{[n.name for n in pilot.nodes]}")

        # 2. Deploy SOMA: workflow + hardware namespaces, sampled
        #    every 30 simulated seconds.
        deployment = yield from deploy_soma(
            client,
            pilot,
            SomaConfig(
                namespaces=(WORKFLOW, HARDWARE),
                monitors=("proc", "rp"),
                monitoring_frequency=30.0,
            ),
        )
        print(f"[{env.now:8.1f}s] SOMA service + "
              f"{len(deployment.hw_monitor_tasks)} hardware monitors up")

        # 3. Run application tasks: 8 memory-bound 20-rank jobs.
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"solver-{i}",
                    model=ComputeModel(120.0, mem_intensity=0.5),
                    ranks=20,
                )
                for i in range(8)
            ]
        )
        yield from client.wait_tasks(tasks)
        print(f"[{env.now:8.1f}s] all {len(tasks)} tasks DONE")
        for task in tasks[:3]:
            print(f"    {task.uid}: {task.execution_time:6.1f}s "
                  f"on {task.nodelist}")

        # 4. One more monitoring cycle, then shut down.
        yield env.timeout(35.0)
        return deployment

    proc = env.process(workflow(env))
    deployment = env.run(proc)
    client.close()

    # 5. Offline analysis of what SOMA collected.
    print("\n--- hardware namespace: per-node CPU utilization ---")
    for host, points in sorted(
        cpu_utilization_series(deployment.store(HARDWARE)).items()
    ):
        trace = " ".join(f"{p.cpu_utilization:4.2f}" for p in points[:10])
        print(f"  {host}: {trace}")

    print("\n--- workflow namespace: RP summary series ---")
    for entry in workflow_summary_series(deployment.store(WORKFLOW)):
        print(
            f"  t={entry['time']:7.1f}s done={entry.get('done', 0):3.0f} "
            f"running={entry.get('running', 0):3.0f} "
            f"pending={entry.get('pending', 0):3.0f}"
        )

    print("\n--- one raw Conduit publish (Listing 2 shape) ---")
    record = deployment.store(HARDWARE).latest()
    print(record.data.render())

    print("\n--- the SOMA dashboard view ---")
    print(render_dashboard(deployment))


if __name__ == "__main__":
    main()
