#!/usr/bin/env python3
"""RAPTOR: high-throughput Python function tasks (paper Sec 2.1).

RP "utilizes a dedicated subsystem called RAPTOR to execute Python
functions at a very large scale": a master dispatches function calls
to resident worker tasks, amortizing per-task launch overhead.  This
example contrasts 200 function calls through RAPTOR against the same
work as individual executable tasks.

Run:  python examples/raptor_functions.py
"""

from repro import Client, PilotDescription, Session, TaskDescription
from repro.platform import summit_like
from repro.rp import FixedDurationModel, FunctionCall, RaptorMaster

CALLS = 400
CALL_SECONDS = 0.5


def run_with_raptor() -> float:
    session = Session(cluster_spec=summit_like(3), seed=1)
    client = Client(session)
    env = session.env

    def main(env):
        yield from client.submit_pilot(PilotDescription(nodes=2))
        master = RaptorMaster(env)
        client.submit_tasks(
            [master.worker_description(cores=4) for _ in range(20)]
        )
        start = env.now
        calls = [
            FunctionCall(duration=CALL_SECONDS, cores=4) for _ in range(CALLS)
        ]
        yield from master.map(calls)
        return env.now - start

    elapsed = env.run(env.process(main(env)))
    client.close()
    return elapsed


def run_with_tasks() -> float:
    session = Session(cluster_spec=summit_like(3), seed=1)
    client = Client(session)
    env = session.env

    def main(env):
        yield from client.submit_pilot(PilotDescription(nodes=2))
        start = env.now
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"fn{i}",
                    model=FixedDurationModel(CALL_SECONDS),
                    ranks=1,
                    cores_per_rank=4,
                )
                for i in range(CALLS)
            ]
        )
        yield from client.wait_tasks(tasks)
        return env.now - start

    elapsed = env.run(env.process(main(env)))
    client.close()
    return elapsed


def main() -> None:
    raptor = run_with_raptor()
    tasks = run_with_tasks()
    print(f"{CALLS} x {CALL_SECONDS:.1f}s function calls on 2 nodes:")
    print(f"  via RAPTOR workers      : {raptor:8.1f}s")
    print(f"  via individual RP tasks : {tasks:8.1f}s")
    print(f"  speedup                 : {tasks / raptor:8.2f}x")
    print(
        "\nRAPTOR wins because resident workers skip the per-task "
        "scheduling and launch overheads of the executable path."
    )


if __name__ == "__main__":
    main()
