"""repro: a full-stack reproduction of "Enabling Performance
Observability for Heterogeneous HPC Workflows with SOMA" (ICPP 2024).

The package contains every system the paper builds on, implemented in
pure Python over a from-scratch discrete-event simulation:

* :mod:`repro.sim` — the simulation kernel (processes, events, stores);
* :mod:`repro.platform` — a Summit-like machine: nodes with core/GPU
  maps and memory-bandwidth contention, a shared fabric, /proc, batch;
* :mod:`repro.conduit` — the Conduit-style hierarchical data model;
* :mod:`repro.messaging` — ZeroMQ-style queues and Mochi-style RPC;
* :mod:`repro.rp` — the RADICAL-Pilot runtime (pilots, tasks, agent
  scheduler/executor, profiles, service tasks, RAPTOR);
* :mod:`repro.entk` — the EnTK ensemble layer (pipelines/stages);
* :mod:`repro.soma` — the paper's contribution: the SOMA service,
  client stub, namespaces, storage and online analysis;
* :mod:`repro.monitors` — the hardware, RP-workflow and TAU clients;
* :mod:`repro.faults` — deterministic fault injection (node crashes,
  partitions, message loss, service outages) and bounded retry;
* :mod:`repro.workloads` — OpenFOAM/AdditiveFOAM and DeepDriveMD
  mini-app models;
* :mod:`repro.experiments` — the harnesses that regenerate every table
  and figure of the paper's evaluation;
* :mod:`repro.analysis` — timelines, statistics, overhead accounting.

Quickstart::

    from repro import Session, Client, PilotDescription
    from repro.soma import SomaConfig, deploy_soma

See ``examples/quickstart.py`` for a complete runnable walkthrough.
"""

from ._version import __version__
from .faults import FaultInjector, FaultPlan, RetryPolicy
from .rp import (
    Client,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from .soma import SomaClient, SomaConfig, deploy_soma

__all__ = [
    "__version__",
    "Client",
    "FaultInjector",
    "FaultPlan",
    "PilotDescription",
    "RetryPolicy",
    "Session",
    "SomaClient",
    "SomaConfig",
    "TaskDescription",
    "TaskState",
    "deploy_soma",
]
