"""Adaptive workflows: the paper's future work, prototyped.

"In future work, we plan to extend SOMA's support to develop adaptive
workflows in RADICAL-Pilot ... to analyze performance metrics together
with scientific progress measures to make smart scheduling and
configuration decisions, including the altering of the workflow
configuration on-the-fly" (paper Sec 6).
"""

from .controller import AdaptiveController
from .policies import (
    DetectionDrivenPolicy,
    RankObservation,
    RankTuningPolicy,
    TrainingParallelismPolicy,
    UtilizationAwarePlacement,
)

__all__ = [
    "AdaptiveController",
    "DetectionDrivenPolicy",
    "RankObservation",
    "RankTuningPolicy",
    "TrainingParallelismPolicy",
    "UtilizationAwarePlacement",
]
