"""The adaptive controller: SOMA observations driving RP decisions.

Prototypes the closed loop the paper leaves as future work: a
controller that consumes the SOMA namespaces online and (a) tunes MPI
task descriptions from observed strong-scaling data, (b) resizes DDMD
training parallelism between phases, and (c) installs
utilization-aware placement into the agent scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..soma.analysis import free_resource_estimate
from ..soma.namespaces import HARDWARE
from .policies import (
    DetectionDrivenPolicy,
    RankTuningPolicy,
    TrainingParallelismPolicy,
    UtilizationAwarePlacement,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..rp.client import Client
    from ..rp.task import Task
    from ..soma.integration import SomaDeployment

__all__ = ["AdaptiveController"]


class AdaptiveController:
    """Online decision-making on top of a SOMA deployment."""

    def __init__(
        self,
        client: "Client",
        deployment: "SomaDeployment",
        rank_policy: RankTuningPolicy | None = None,
        training_policy: TrainingParallelismPolicy | None = None,
        detection_policy: DetectionDrivenPolicy | None = None,
    ) -> None:
        self.client = client
        self.session = client.session
        self.deployment = deployment
        self.rank_policy = rank_policy or RankTuningPolicy()
        self.training_policy = training_policy or TrainingParallelismPolicy()
        self.detection_policy = detection_policy or DetectionDrivenPolicy()
        #: Log of every decision taken, for post-run inspection.
        self.decisions: list[dict] = []
        self._last_rank_choice: int | None = None
        self._last_detection: tuple | None = None
        self._placement_installed = False

    # -- rank tuning (Fig 4 use case) -------------------------------------

    def observe_tasks(self, tasks: "list[Task]") -> None:
        """Feed completed MPI tasks into the rank-tuning policy."""
        for task in tasks:
            if task.is_final and task.execution_time is not None:
                self.rank_policy.observe_task(task)

    def recommended_ranks(self) -> int | None:
        """Current best rank count (None before any observation).

        Only *changed* recommendations are logged: polling callers
        would otherwise flood the decision log with identical entries
        and skew ablation decision counts.
        """
        choice = self.rank_policy.recommend()
        if choice is not None and choice != self._last_rank_choice:
            self._last_rank_choice = choice
            self.decisions.append(
                {
                    "time": self.session.env.now,
                    "kind": "rank_tuning",
                    "ranks": choice,
                    "observations": self.rank_policy.num_observations,
                }
            )
        return choice

    # -- training parallelism (adaptive DDMD) --------------------------------

    def recommend_training_workers(self, window: float = 180.0) -> int:
        """Training workers for the next phase, from live SOMA data."""
        headroom: dict[str, dict[str, float]] = {}
        if self.deployment.enabled:
            headroom = free_resource_estimate(
                self.deployment.store(HARDWARE),
                window=window,
                now=self.session.env.now,
            )
        free_gpus = sum(
            node.free_gpus for node in self.client.pilot.compute_nodes
        )
        workers = self.training_policy.recommend(headroom, free_gpus)
        self.decisions.append(
            {
                "time": self.session.env.now,
                "kind": "training_parallelism",
                "workers": workers,
                "free_gpus": free_gpus,
                "mean_headroom": (
                    sum(h["cpu"] for h in headroom.values()) / len(headroom)
                    if headroom
                    else None
                ),
                "mean_gpu_headroom": (
                    sum(h["gpu"] for h in headroom.values()) / len(headroom)
                    if headroom
                    else None
                ),
            }
        )
        return workers

    # -- detection-driven adaptation (bottleneck findings) ------------------

    def apply_findings(self, findings) -> dict:
        """Turn bottleneck findings into the next phase's knob settings.

        ``findings`` is a list of :class:`repro.analysis.bottleneck.Finding`
        records (or bare kind strings).  Returns the recommended
        settings; logs a ``detection`` decision only when the outcome
        differs from the previous one (same dedupe rationale as
        :meth:`recommended_ranks`).
        """
        free_gpus = sum(
            node.free_gpus for node in self.client.pilot.compute_nodes
        )
        policy = self.detection_policy
        workers = policy.recommend_training_workers(findings, free_gpus)
        current_period = (
            self.deployment.config.monitoring_frequency
            if self.deployment.enabled
            else policy.min_monitor_period
        )
        period = policy.recommend_monitor_period(findings, current_period)
        kinds = tuple(sorted({getattr(f, "kind", f) for f in findings}))
        outcome = (workers, period, kinds)
        if outcome != self._last_detection:
            self._last_detection = outcome
            self.decisions.append(
                {
                    "time": self.session.env.now,
                    "kind": "detection",
                    "workers": workers,
                    "monitor_period": period,
                    "findings": list(kinds),
                    "free_gpus": free_gpus,
                }
            )
        return {"training_workers": workers, "monitor_period": period}

    # -- placement (Sec 4.2 suggestion) ------------------------------------------

    def enable_utilization_aware_placement(self) -> None:
        """Make the agent scheduler prefer the least-loaded nodes."""
        scheduler = self.client.agent.scheduler
        if scheduler is None:
            raise RuntimeError("agent not bootstrapped")
        scheduler.set_node_ranker(UtilizationAwarePlacement())
        if not self._placement_installed:
            self._placement_installed = True
            self.decisions.append(
                {
                    "time": self.session.env.now,
                    "kind": "placement",
                    "policy": "utilization-aware",
                }
            )

    def disable_utilization_aware_placement(self) -> None:
        scheduler = self.client.agent.scheduler
        if scheduler is not None:
            scheduler.set_node_ranker(None)
        # Log the transition (once): a run that turned placement off
        # mid-flight should show that in its decision history.
        if self._placement_installed:
            self._placement_installed = False
            self.decisions.append(
                {
                    "time": self.session.env.now,
                    "kind": "placement",
                    "policy": "default",
                }
            )
