"""Adaptive policies: turning SOMA observations into decisions.

The paper's conclusion sketches the plan: "analyze performance metrics
together with scientific progress measures to make smart scheduling
and configuration decisions, including the altering of the workflow
configuration on-the-fly".  This module implements the three concrete
decisions the paper's results motivate:

* :class:`RankTuningPolicy` — Sec 4.1 / Fig 4: observe completed MPI
  tasks and choose the rank count to use for the remaining instances
  ("RP could collect information about MPI task performance, and
  utilize that information to change the task description").
* :class:`TrainingParallelismPolicy` — Sec 4.3 / Fig 9: with CPU
  headroom high and GPUs the bottleneck, parallelize training across
  free GPUs.
* :class:`UtilizationAwarePlacement` — Sec 4.2 / Fig 8: "prioritizing
  the use of the free CPUs on a node with comparably lower overall CPU
  utilization".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.node import Node
    from ..rp.task import Task

__all__ = [
    "RankObservation",
    "RankTuningPolicy",
    "TrainingParallelismPolicy",
    "UtilizationAwarePlacement",
]


@dataclass(frozen=True, slots=True)
class RankObservation:
    """One completed MPI task: its configuration and outcome."""

    ranks: int
    execution_time: float


class RankTuningPolicy:
    """Choose the MPI rank count from observed strong-scaling data.

    The decision metric is *cost* = execution time × ranks (core-
    seconds per instance), optionally trading cost for speed through
    ``speedup_weight``: 0 picks the most efficient configuration,
    1 picks the fastest.
    """

    def __init__(self, speedup_weight: float = 0.35) -> None:
        if not 0.0 <= speedup_weight <= 1.0:
            raise ValueError("speedup_weight must be in [0, 1]")
        self.speedup_weight = speedup_weight
        self._observations: list[RankObservation] = []

    def observe(self, ranks: int, execution_time: float) -> None:
        self._observations.append(RankObservation(ranks, execution_time))

    def observe_task(self, task: "Task") -> None:
        """Convenience: pull the configuration from an RP task."""
        if task.execution_time is not None:
            self.observe(task.description.ranks, task.execution_time)

    @property
    def num_observations(self) -> int:
        return len(self._observations)

    def mean_times(self) -> dict[int, float]:
        by_ranks: dict[int, list[float]] = {}
        for obs in self._observations:
            by_ranks.setdefault(obs.ranks, []).append(obs.execution_time)
        return {r: float(np.mean(v)) for r, v in by_ranks.items()}

    def recommend(self) -> int | None:
        """The rank count to use next, or None without data.

        Scores each observed configuration by a normalized blend of
        core-seconds (efficiency) and wall time (speed); lowest wins.
        """
        means = self.mean_times()
        if not means:
            return None
        times = np.array(list(means.values()))
        ranks = np.array(list(means.keys()), dtype=float)
        cost = times * ranks
        cost_n = cost / cost.min()
        time_n = times / times.min()
        score = (1.0 - self.speedup_weight) * cost_n + (
            self.speedup_weight * time_n
        )
        return int(ranks[int(np.argmin(score))])


class TrainingParallelismPolicy:
    """Pick the training-task count for the next DDMD phase."""

    def __init__(
        self,
        max_workers: int = 6,
        headroom_threshold: float = 0.5,
        reduce_seconds: float = 7.0,
        train_gpu_seconds: float = 260.0,
    ) -> None:
        self.max_workers = max_workers
        self.headroom_threshold = headroom_threshold
        self.reduce_seconds = reduce_seconds
        self.train_gpu_seconds = train_gpu_seconds

    def recommend(
        self, cpu_headroom: dict[str, float], free_gpus: int
    ) -> int:
        """Workers for the next phase's training stage.

        Parallelize only while (a) CPU headroom confirms the workload
        is GPU-bound, (b) free GPUs exist, and (c) the marginal worker
        still reduces the modeled training time (reduce overhead grows
        with workers).
        """
        if not cpu_headroom:
            return 1
        if float(np.mean(list(cpu_headroom.values()))) < self.headroom_threshold:
            return 1
        best, best_time = 1, self._model_time(1)
        limit = max(1, min(self.max_workers, free_gpus))
        for workers in range(2, limit + 1):
            t = self._model_time(workers)
            if t < best_time:
                best, best_time = workers, t
        return best

    def _model_time(self, workers: int) -> float:
        import math

        if workers <= 1:
            return self.train_gpu_seconds
        return self.train_gpu_seconds / workers + self.reduce_seconds * (
            math.log2(workers + 1)
        )


class UtilizationAwarePlacement:
    """Node ranking for the agent scheduler (Sec 4.2's suggestion).

    Install via :meth:`repro.rp.agent.scheduler.AgentScheduler.set_node_ranker`;
    first-fit then scans nodes from least to most utilized, so new
    tasks land where memory-bandwidth pressure is lowest.
    """

    def __call__(self, nodes: "Sequence[Node]") -> "list[Node]":
        return sorted(
            nodes,
            key=lambda n: (n.domain.pressure(), n.cpu_utilization()),
        )
