"""Adaptive policies: turning SOMA observations into decisions.

The paper's conclusion sketches the plan: "analyze performance metrics
together with scientific progress measures to make smart scheduling
and configuration decisions, including the altering of the workflow
configuration on-the-fly".  This module implements the three concrete
decisions the paper's results motivate:

* :class:`RankTuningPolicy` — Sec 4.1 / Fig 4: observe completed MPI
  tasks and choose the rank count to use for the remaining instances
  ("RP could collect information about MPI task performance, and
  utilize that information to change the task description").
* :class:`TrainingParallelismPolicy` — Sec 4.3 / Fig 9: with CPU
  headroom high and GPUs the bottleneck, parallelize training across
  free GPUs.
* :class:`UtilizationAwarePlacement` — Sec 4.2 / Fig 8: "prioritizing
  the use of the free CPUs on a node with comparably lower overall CPU
  utilization".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.node import Node
    from ..rp.task import Task

__all__ = [
    "RankObservation",
    "RankTuningPolicy",
    "TrainingParallelismPolicy",
    "DetectionDrivenPolicy",
    "UtilizationAwarePlacement",
]


def _headroom_components(value) -> tuple[float, float]:
    """Normalize one host's headroom to ``(cpu, gpu)``.

    :func:`repro.soma.analysis.free_resource_estimate` returns
    per-resource dicts; bare floats (older callers, hand-built maps)
    are treated as CPU-only with unknown GPU load, i.e. full GPU
    headroom.
    """
    if isinstance(value, dict):
        return float(value.get("cpu", 0.0)), float(value.get("gpu", 1.0))
    return float(value), 1.0


@dataclass(frozen=True, slots=True)
class RankObservation:
    """One completed MPI task: its configuration and outcome."""

    ranks: int
    execution_time: float


class RankTuningPolicy:
    """Choose the MPI rank count from observed strong-scaling data.

    The decision metric is *cost* = execution time × ranks (core-
    seconds per instance), optionally trading cost for speed through
    ``speedup_weight``: 0 picks the most efficient configuration,
    1 picks the fastest.
    """

    def __init__(self, speedup_weight: float = 0.35) -> None:
        if not 0.0 <= speedup_weight <= 1.0:
            raise ValueError("speedup_weight must be in [0, 1]")
        self.speedup_weight = speedup_weight
        self._observations: list[RankObservation] = []

    def observe(self, ranks: int, execution_time: float) -> None:
        self._observations.append(RankObservation(ranks, execution_time))

    def observe_task(self, task: "Task") -> None:
        """Convenience: pull the configuration from an RP task."""
        if task.execution_time is not None:
            self.observe(task.description.ranks, task.execution_time)

    @property
    def num_observations(self) -> int:
        return len(self._observations)

    def mean_times(self) -> dict[int, float]:
        by_ranks: dict[int, list[float]] = {}
        for obs in self._observations:
            by_ranks.setdefault(obs.ranks, []).append(obs.execution_time)
        return {r: float(np.mean(v)) for r, v in by_ranks.items()}

    def recommend(self) -> int | None:
        """The rank count to use next, or None without data.

        Scores each observed configuration by a normalized blend of
        core-seconds (efficiency) and wall time (speed); lowest wins.
        """
        means = self.mean_times()
        if not means:
            return None
        times = np.array(list(means.values()))
        ranks = np.array(list(means.keys()), dtype=float)
        cost = times * ranks
        cost_n = cost / cost.min()
        time_n = times / times.min()
        score = (1.0 - self.speedup_weight) * cost_n + (
            self.speedup_weight * time_n
        )
        return int(ranks[int(np.argmin(score))])


class TrainingParallelismPolicy:
    """Pick the training-task count for the next DDMD phase."""

    def __init__(
        self,
        max_workers: int = 6,
        headroom_threshold: float = 0.5,
        reduce_seconds: float = 7.0,
        train_gpu_seconds: float = 260.0,
    ) -> None:
        self.max_workers = max_workers
        self.headroom_threshold = headroom_threshold
        self.reduce_seconds = reduce_seconds
        self.train_gpu_seconds = train_gpu_seconds

    def recommend(self, headroom: dict, free_gpus: int) -> int:
        """Workers for the next phase's training stage.

        ``headroom`` maps host to per-resource headroom (the shape
        :func:`~repro.soma.analysis.free_resource_estimate` returns).
        Parallelize only while (a) CPU headroom confirms the workload
        is GPU-bound, (b) free GPUs *with headroom* exist — the GPU
        component scales the worker budget so a machine whose GPUs are
        already busy is not over-subscribed — and (c) the marginal
        worker still reduces the modeled training time (reduce
        overhead grows with workers).
        """
        if not headroom:
            return 1
        components = [_headroom_components(v) for v in headroom.values()]
        cpu = float(np.mean([c for c, _ in components]))
        gpu = float(np.mean([g for _, g in components]))
        if cpu < self.headroom_threshold:
            return 1
        budget = int(free_gpus * min(1.0, gpu) + 1e-9)
        limit = max(1, min(self.max_workers, budget))
        best, best_time = 1, self._model_time(1)
        for workers in range(2, limit + 1):
            t = self._model_time(workers)
            if t < best_time:
                best, best_time = workers, t
        return best

    def _model_time(self, workers: int) -> float:
        import math

        if workers <= 1:
            return self.train_gpu_seconds
        return self.train_gpu_seconds / workers + self.reduce_seconds * (
            math.log2(workers + 1)
        )


class DetectionDrivenPolicy:
    """Re-tune the run from bottleneck *findings* instead of raw headroom.

    Consumes :class:`repro.analysis.bottleneck.Finding` records (only
    their ``kind`` is read, so plain strings work too) and turns them
    into the two knobs the adaptive DDMD experiment exposes: training
    parallelism for the next phase and the SOMA monitoring period.

    The contrast with :class:`TrainingParallelismPolicy` is the point
    of the detection ablation: absent adverse findings the workload is
    *known* healthy and GPU-bound, so the policy fans training out to
    the modeled-best worker count immediately instead of waiting for a
    headroom average to clear a threshold.
    """

    def __init__(
        self,
        max_workers: int = 6,
        reduce_seconds: float = 7.0,
        train_gpu_seconds: float = 260.0,
        min_monitor_period: float = 10.0,
        max_monitor_period: float = 240.0,
    ) -> None:
        self.max_workers = max_workers
        self.reduce_seconds = reduce_seconds
        self.train_gpu_seconds = train_gpu_seconds
        self.min_monitor_period = min_monitor_period
        self.max_monitor_period = max_monitor_period

    @staticmethod
    def _kinds(findings) -> set[str]:
        return {getattr(f, "kind", f) for f in findings}

    def recommend_training_workers(self, findings, free_gpus: int) -> int:
        """Training workers for the next phase given current findings.

        CPU oversubscription or a starving scheduler means extra
        training workers would contend for (or wait behind) scarce
        capacity — stay serial.  Otherwise pick the modeled-best count
        within the free-GPU budget.
        """
        kinds = self._kinds(findings)
        if "cpu_oversubscription" in kinds or "scheduler_starvation" in kinds:
            return 1
        limit = max(1, min(self.max_workers, int(free_gpus)))
        best, best_time = 1, self._model_time(1)
        for workers in range(2, limit + 1):
            t = self._model_time(workers)
            if t < best_time:
                best, best_time = workers, t
        return best

    def recommend_monitor_period(self, findings, current: float) -> float:
        """Monitoring period given current findings.

        RPC ingest queueing → back off (double the period, capped);
        otherwise keep the current period, floored at the minimum.
        """
        period = max(self.min_monitor_period, float(current))
        if "rpc_queueing" in self._kinds(findings):
            period = min(self.max_monitor_period, period * 2.0)
        return period

    def _model_time(self, workers: int) -> float:
        import math

        if workers <= 1:
            return self.train_gpu_seconds
        return self.train_gpu_seconds / workers + self.reduce_seconds * (
            math.log2(workers + 1)
        )


class UtilizationAwarePlacement:
    """Node ranking for the agent scheduler (Sec 4.2's suggestion).

    Install via :meth:`repro.rp.agent.scheduler.AgentScheduler.set_node_ranker`;
    first-fit then scans nodes from least to most utilized, so new
    tasks land where memory-bandwidth pressure is lowest.
    """

    def __call__(self, nodes: "Sequence[Node]") -> "list[Node]":
        return sorted(
            nodes,
            key=lambda n: (n.domain.pressure(), n.cpu_utilization()),
        )
