"""Offline analysis: timelines, statistics, overhead, text reports."""

from .critical_path import (
    PipelineCriticalPath,
    StagePath,
    TaskBreakdown,
    breakdown_task,
    pipeline_critical_path,
)
from .overhead import OverheadResult, compare_runtimes, makespan_overhead
from .report import (
    fmt,
    fmt_percent,
    render_boxes,
    render_series,
    render_table,
    sparkline,
)
from .stats import Summary, group_by, percent_change, summarize
from .timeline import (
    BOOTSTRAP,
    CoreInterval,
    RUNNING,
    ResourceTimeline,
    SCHEDULING,
    build_timeline,
)

__all__ = [
    "BOOTSTRAP",
    "CoreInterval",
    "OverheadResult",
    "PipelineCriticalPath",
    "StagePath",
    "TaskBreakdown",
    "breakdown_task",
    "pipeline_critical_path",
    "RUNNING",
    "ResourceTimeline",
    "SCHEDULING",
    "Summary",
    "build_timeline",
    "compare_runtimes",
    "fmt",
    "fmt_percent",
    "group_by",
    "makespan_overhead",
    "percent_change",
    "render_boxes",
    "render_series",
    "render_table",
    "sparkline",
    "summarize",
]
