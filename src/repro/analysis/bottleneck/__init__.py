"""Online bottleneck detection over SOMA's time-indexed data.

The subsystem turns the observability stack from record-everything
into act-on-it (ROADMAP item 3): rule-tree detectors over the
namespace stores and service accounting emit interpretable
:class:`Finding` records, thresholds are calibrated from clean
baseline sweeps, and findings feed the adaptive layer through
:class:`repro.adaptive.DetectionDrivenPolicy`.

Typical offline use::

    from repro.analysis.bottleneck import DetectionContext, detect_all
    ctx = DetectionContext.from_result(result)
    findings = detect_all(ctx)
"""

from .calibrate import CalibrationReport, calibrate
from .context import DetectionContext
from .detectors import (
    DETECTORS,
    CpuOversubscriptionDetector,
    Detector,
    LoadImbalanceDetector,
    RpcQueueingDetector,
    SchedulerStarvationDetector,
    detect_all,
    observe_all,
)
from .findings import KINDS, Finding, render_findings
from .scenarios import CLEAN_SCENARIOS, SCENARIOS, Scenario, run_scenario
from .thresholds import DEFAULT_THRESHOLDS, Thresholds

__all__ = [
    "CalibrationReport",
    "calibrate",
    "DetectionContext",
    "Detector",
    "DETECTORS",
    "CpuOversubscriptionDetector",
    "RpcQueueingDetector",
    "LoadImbalanceDetector",
    "SchedulerStarvationDetector",
    "detect_all",
    "observe_all",
    "KINDS",
    "Finding",
    "render_findings",
    "Scenario",
    "SCENARIOS",
    "CLEAN_SCENARIOS",
    "run_scenario",
    "DEFAULT_THRESHOLDS",
    "Thresholds",
]
