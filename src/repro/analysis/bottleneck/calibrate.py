"""Threshold calibration from clean baseline sweeps.

The rule is deliberately simple and interpretable: for each detector,
run every clean scenario across the calibration seeds, take the *worst*
value its metric reaches on those healthy runs, multiply by a safety
margin, and floor the result (a clean metric of ~zero must not yield a
hair-trigger threshold).  ``python -m repro bottleneck --calibrate``
prints the result; :data:`~repro.analysis.bottleneck.thresholds.DEFAULT_THRESHOLDS`
holds the values baked from this procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .context import DetectionContext
from .detectors import DETECTORS
from .scenarios import CLEAN_SCENARIOS, run_scenario
from .thresholds import Thresholds

__all__ = ["CalibrationReport", "calibrate"]

#: Safety factor between the worst clean value and the threshold.
DEFAULT_MARGIN = 1.5

#: Seeds the clean scenarios are swept over.
DEFAULT_SEEDS = (3, 17)


@dataclass(slots=True)
class CalibrationReport:
    """What calibration observed and what it derived."""

    thresholds: Thresholds
    #: metric field -> worst clean value across scenarios x seeds.
    observed: dict = field(default_factory=dict)
    #: metric field -> per-(scenario, seed) values, for inspection.
    samples: dict = field(default_factory=dict)
    margin: float = DEFAULT_MARGIN
    seeds: tuple = DEFAULT_SEEDS

    def render(self) -> str:
        lines = [
            f"calibration over {list(CLEAN_SCENARIOS)} x seeds "
            f"{list(self.seeds)} (margin {self.margin:g}x):"
        ]
        for detector in DETECTORS:
            metric = detector.metric_field
            observed = self.observed.get(metric, 0.0)
            lines.append(
                f"  {metric:<26} clean max {observed:>10.4g}  "
                f"floor {detector.metric_floor:>8.4g}  -> "
                f"{getattr(self.thresholds, metric):.4g}"
            )
        return "\n".join(lines)


def calibrate(
    seeds: tuple = DEFAULT_SEEDS,
    margin: float = DEFAULT_MARGIN,
    scenarios: tuple = CLEAN_SCENARIOS,
    base: Thresholds | None = None,
) -> CalibrationReport:
    """Derive thresholds from the clean scenarios.

    ``base`` supplies the structural (non-calibrated) fields; only the
    fields named by the detectors' ``metric_field`` are replaced.
    """
    base = base or Thresholds()
    observed: dict = {d.metric_field: 0.0 for d in DETECTORS}
    samples: dict = {d.metric_field: {} for d in DETECTORS}
    for name in scenarios:
        for seed in seeds:
            result = run_scenario(name, seed=seed)
            ctx = DetectionContext.from_result(result)
            for detector in DETECTORS:
                value = detector.observe(ctx)
                samples[detector.metric_field][f"{name}:s{seed}"] = value
                observed[detector.metric_field] = max(
                    observed[detector.metric_field], value
                )
    updates = {
        d.metric_field: max(d.metric_floor, observed[d.metric_field] * margin)
        for d in DETECTORS
    }
    return CalibrationReport(
        thresholds=base.with_updates(**updates),
        observed=observed,
        samples=samples,
        margin=margin,
        seeds=tuple(seeds),
    )
