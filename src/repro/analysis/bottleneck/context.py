"""What the detectors look at: a snapshot of a run's observability data.

A :class:`DetectionContext` decouples the detectors from how the data
was obtained — built offline from a finished
:class:`~repro.experiments.harness.WorkflowResult`, online from a live
:class:`~repro.soma.integration.SomaDeployment`, or synthetically in
tests from hand-built stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...experiments.harness import WorkflowResult
    from ...soma.integration import SomaDeployment
    from ...soma.storage import NamespaceStore

__all__ = ["DetectionContext"]


@dataclass(slots=True)
class DetectionContext:
    """Everything a detector may inspect, in one place."""

    #: Wall-clock (simulated) time of the snapshot.
    now: float
    #: Namespace name -> its time-indexed store.
    stores: "dict[str, NamespaceStore]" = field(default_factory=dict)
    #: Namespace name -> plain-data RPC server accounting
    #: (ranks / calls / errors / mean_queue_seconds / busy_seconds).
    server_stats: dict = field(default_factory=dict)
    #: The deployment's monitoring period (s); bounds how much
    #: wall-time one missing sample can represent.
    monitoring_period: float = 60.0

    def store(self, namespace: str) -> "NamespaceStore | None":
        return self.stores.get(namespace)

    @classmethod
    def from_deployment(
        cls, deployment: "SomaDeployment", now: float
    ) -> "DetectionContext":
        """Snapshot a (possibly disabled) SOMA deployment."""
        if not deployment.enabled:
            return cls(now=now)
        model = deployment.service_model
        # queue_stats() already carries the windowed burst peak; going
        # through it keeps this snapshot identical for single-instance
        # and sharded deployments (keys become instance.namespace).
        stats = model.queue_stats()
        return cls(
            now=now,
            stores=dict(model.stores),
            server_stats=stats,
            monitoring_period=deployment.config.monitoring_frequency,
        )

    @classmethod
    def from_result(cls, result: "WorkflowResult") -> "DetectionContext":
        """Snapshot a finished workflow run (offline analysis)."""
        return cls.from_deployment(result.deployment, now=result.finished_at)
