"""The rule-tree detectors: one class per bottleneck signature.

Each detector pairs two views of the same metric:

* :meth:`~Detector.observe` — the scalar "how bad did it get" metric
  on an arbitrary run; calibration takes its max over clean runs.
* :meth:`~Detector.detect` — the thresholded rule producing
  :class:`~repro.analysis.bottleneck.findings.Finding` records.

The signatures come from the paper's own observations plus the
RADICAL-Pilot leadership-class characterization (PAPERS.md): CPU
starvation/oversubscription from the hardware namespace, SOMA RPC
ingest queueing from service accounting, per-rank load imbalance from
TAU profiles, and scheduler starvation / throughput collapse from the
RP monitor's summary series.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ...soma.analysis import (
    cpu_utilization_series,
    load_imbalance,
    rank_region_breakdown,
    workflow_summary_series,
)
from ...soma.namespaces import HARDWARE, PERFORMANCE, WORKFLOW
from .context import DetectionContext
from .findings import Finding
from .thresholds import DEFAULT_THRESHOLDS, Thresholds

__all__ = [
    "Detector",
    "CpuOversubscriptionDetector",
    "RpcQueueingDetector",
    "LoadImbalanceDetector",
    "SchedulerStarvationDetector",
    "DETECTORS",
    "detect_all",
    "observe_all",
]


class Detector:
    """Base interface; subclasses fill in the class attributes."""

    #: Detector name (stable identifier in findings and reports).
    name: str = ""
    #: Finding kind this detector emits.
    kind: str = ""
    #: The :class:`Thresholds` field this detector calibrates.
    metric_field: str = ""
    #: Calibration floor: the threshold never drops below this even
    #: when the clean-run metric is ~zero.
    metric_floor: float = 0.0

    def observe(self, ctx: DetectionContext) -> float:
        """The run's worst value of the calibrated metric (0 if quiet)."""
        raise NotImplementedError

    def detect(
        self, ctx: DetectionContext, thresholds: Thresholds
    ) -> list[Finding]:
        """Findings for every subject whose metric crosses threshold."""
        raise NotImplementedError


class CpuOversubscriptionDetector(Detector):
    """Sustained CPU saturation on a compute node.

    Healthy GPU-bound phases leave CPU headroom (the paper's Fig 9
    observation); a node pinned at/above ``cpu_saturated_level`` for
    longer than any clean run exhibits is oversubscribed — co-scheduled
    CPU work is starving the tasks feeding the GPUs.
    """

    name = "cpu-oversubscription"
    kind = "cpu_oversubscription"
    metric_field = "cpu_sustained_seconds"
    metric_floor = 120.0

    def _saturated_runs(
        self, ctx: DetectionContext, level: float
    ) -> dict[str, list]:
        store = ctx.store(HARDWARE)
        if store is None:
            return {}
        runs: dict[str, list] = {}
        for host, points in cpu_utilization_series(store).items():
            host_runs, current = [], []
            for p in points:
                if p.cpu_utilization >= level:
                    current.append(p)
                else:
                    if len(current) >= 2:
                        host_runs.append(current)
                    current = []
            if len(current) >= 2:
                host_runs.append(current)
            if host_runs:
                runs[host] = host_runs
        return runs

    def observe(self, ctx: DetectionContext) -> float:
        longest = 0.0
        level = DEFAULT_THRESHOLDS.cpu_saturated_level
        for host_runs in self._saturated_runs(ctx, level).values():
            for run in host_runs:
                longest = max(longest, run[-1].time - run[0].time)
        return longest

    def detect(
        self, ctx: DetectionContext, thresholds: Thresholds
    ) -> list[Finding]:
        findings = []
        level = thresholds.cpu_saturated_level
        for host, host_runs in sorted(self._saturated_runs(ctx, level).items()):
            run = max(host_runs, key=lambda r: r[-1].time - r[0].time)
            sustained = run[-1].time - run[0].time
            if sustained < thresholds.cpu_sustained_seconds:
                continue
            cpu = [p.cpu_utilization for p in run]
            findings.append(
                Finding(
                    kind=self.kind,
                    detector=self.name,
                    where=host,
                    start=run[0].time,
                    end=run[-1].time,
                    severity=sustained / thresholds.cpu_sustained_seconds,
                    evidence={
                        "sustained_seconds": sustained,
                        "mean_cpu": float(np.mean(cpu)),
                        "max_cpu": float(np.max(cpu)),
                        "samples": len(run),
                    },
                    threshold={
                        "cpu_saturated_level": level,
                        "cpu_sustained_seconds": (
                            thresholds.cpu_sustained_seconds
                        ),
                    },
                    action=(
                        "reduce co-scheduled CPU work on this node (or "
                        "reserve cores for GPU-feeding tasks); keep "
                        "training fan-out serial until pressure clears"
                    ),
                )
            )
        return findings


class RpcQueueingDetector(Detector):
    """SOMA ingest queueing: publishes waiting for service ranks.

    The queue-wait a publish spends before a service rank picks it up
    is the paper's Scaling-B failure mode — monitoring pressure
    outrunning the instance's rank pool.  Clean runs queue for
    microseconds; a mean wait above threshold means the instance is
    saturated and monitors are backing up.

    Prefers the *windowed* peak (``peak_window_queue_seconds``) when
    the stats carry it: a ten-minute saturation burst inside an
    hours-long run barely moves the lifetime mean, but the worst
    window preserves it.  Synthetic stats without the field fall back
    to the lifetime mean, so calibrated thresholds stay comparable.
    """

    name = "rpc-queueing"
    kind = "rpc_queueing"
    metric_field = "rpc_mean_queue_seconds"
    metric_floor = 0.05

    @staticmethod
    def _queue_metric(stats: dict) -> float:
        peak = stats.get("peak_window_queue_seconds")
        if peak is not None:
            return float(peak)
        return float(stats["mean_queue_seconds"])

    def observe(self, ctx: DetectionContext) -> float:
        worst = 0.0
        for stats in ctx.server_stats.values():
            if stats.get("calls", 0):
                worst = max(worst, self._queue_metric(stats))
        return worst

    def detect(
        self, ctx: DetectionContext, thresholds: Thresholds
    ) -> list[Finding]:
        findings = []
        for namespace, stats in sorted(ctx.server_stats.items()):
            calls = stats.get("calls", 0)
            if not calls:
                continue
            mean_queue = self._queue_metric(stats)
            if mean_queue < thresholds.rpc_mean_queue_seconds:
                continue
            findings.append(
                Finding(
                    kind=self.kind,
                    detector=self.name,
                    where=f"soma.{namespace}",
                    start=0.0,
                    end=ctx.now,
                    severity=mean_queue / thresholds.rpc_mean_queue_seconds,
                    evidence={
                        "mean_queue_seconds": mean_queue,
                        "calls": calls,
                        "errors": stats.get("errors", 0),
                        "ranks": stats.get("ranks", 1),
                        "mean_service_seconds": (
                            float(stats.get("busy_seconds", 0.0)) / calls
                        ),
                    },
                    threshold={
                        "rpc_mean_queue_seconds": (
                            thresholds.rpc_mean_queue_seconds
                        ),
                    },
                    action=(
                        "add service ranks to this namespace instance or "
                        "lower the monitoring frequency (backpressure)"
                    ),
                )
            )
        return findings


class LoadImbalanceDetector(Detector):
    """Per-rank compute imbalance in a TAU-profiled MPI task.

    Fig 5's signature: total per-rank time is flat (fast ranks wait in
    MPI for stragglers) but the *compute* split is skewed.  The metric
    is max/mean over per-rank compute seconds via
    :func:`repro.soma.analysis.load_imbalance`.
    """

    name = "load-imbalance"
    kind = "load_imbalance"
    metric_field = "imbalance_ratio"
    metric_floor = 1.3

    def _task_uids(self, ctx: DetectionContext) -> list[str]:
        store = ctx.store(PERFORMANCE)
        if store is None or not len(store):
            return []
        merged = store.merged()
        if "TAU" not in merged:
            return []
        return sorted(name for name, _node in merged["TAU"].children())

    def _task_window(self, ctx, task_uid: str) -> tuple[float, float]:
        store = ctx.store(PERFORMANCE)
        times = [
            r.time for r in store if f"TAU/{task_uid}" in r.data
        ]
        if not times:
            return (0.0, ctx.now)
        return (min(times), max(times))

    def observe(self, ctx: DetectionContext) -> float:
        store = ctx.store(PERFORMANCE)
        worst = 0.0
        for uid in self._task_uids(ctx):
            worst = max(worst, load_imbalance(store, uid))
        return worst

    def detect(
        self, ctx: DetectionContext, thresholds: Thresholds
    ) -> list[Finding]:
        store = ctx.store(PERFORMANCE)
        findings = []
        for uid in self._task_uids(ctx):
            ratio = load_imbalance(store, uid)
            if ratio < thresholds.imbalance_ratio:
                continue
            breakdown = rank_region_breakdown(store, uid)
            compute = [
                sum(v for k, v in regions.items() if not k.startswith("MPI_"))
                for regions in breakdown.values()
            ]
            start, end = self._task_window(ctx, uid)
            findings.append(
                Finding(
                    kind=self.kind,
                    detector=self.name,
                    where=uid,
                    start=start,
                    end=end,
                    severity=ratio / thresholds.imbalance_ratio,
                    evidence={
                        "imbalance": ratio,
                        "ranks": len(breakdown),
                        "max_compute_seconds": float(np.max(compute)),
                        "mean_compute_seconds": float(np.mean(compute)),
                    },
                    threshold={
                        "imbalance_ratio": thresholds.imbalance_ratio,
                    },
                    action=(
                        "rebalance the domain decomposition or tune the "
                        "rank count (RankTuningPolicy) for this task type"
                    ),
                )
            )
        return findings


class SchedulerStarvationDetector(Detector):
    """Throughput collapse: pending work but no completions.

    From each RP monitor's summary series, the longest span of
    consecutive samples where the ``done`` counter does not advance
    while ``pending`` tasks wait.  Clean runs stall at most for one
    stage's duration; far longer means the scheduler (or the capacity
    under it) has starved.
    """

    name = "scheduler-starvation"
    kind = "scheduler_starvation"
    metric_field = "stall_seconds"
    metric_floor = 240.0

    def _stalls(self, ctx: DetectionContext, min_pending: float):
        """Per source: the longest (start, end, max_pending) stall."""
        store = ctx.store(WORKFLOW)
        if store is None:
            return {}
        by_source: dict[str, list[dict]] = defaultdict(list)
        for entry in workflow_summary_series(store):
            by_source[entry["source"]].append(entry)
        stalls = {}
        for source, series in by_source.items():
            best = None
            current = None  # [start, end, max_pending]
            for prev, cur in zip(series, series[1:]):
                progressed = cur.get("done", 0.0) > prev.get("done", 0.0)
                waiting = prev.get("pending", 0.0) >= min_pending
                if not progressed and waiting:
                    if current is None:
                        current = [prev["time"], cur["time"], prev["pending"]]
                    else:
                        current[1] = cur["time"]
                    current[2] = max(
                        current[2], prev.get("pending", 0.0),
                        cur.get("pending", 0.0),
                    )
                    if best is None or (
                        current[1] - current[0] > best[1] - best[0]
                    ):
                        best = list(current)
                else:
                    current = None
            if best is not None:
                stalls[source] = tuple(best)
        return stalls

    def observe(self, ctx: DetectionContext) -> float:
        longest = 0.0
        min_pending = DEFAULT_THRESHOLDS.stall_min_pending
        for start, end, _pending in self._stalls(ctx, min_pending).values():
            longest = max(longest, end - start)
        return longest

    def detect(
        self, ctx: DetectionContext, thresholds: Thresholds
    ) -> list[Finding]:
        findings = []
        stalls = self._stalls(ctx, thresholds.stall_min_pending)
        for source, (start, end, max_pending) in sorted(stalls.items()):
            stall = end - start
            if stall < thresholds.stall_seconds:
                continue
            findings.append(
                Finding(
                    kind=self.kind,
                    detector=self.name,
                    where=source,
                    start=start,
                    end=end,
                    severity=stall / thresholds.stall_seconds,
                    evidence={
                        "stall_seconds": stall,
                        "max_pending": float(max_pending),
                    },
                    threshold={
                        "stall_seconds": thresholds.stall_seconds,
                        "stall_min_pending": thresholds.stall_min_pending,
                    },
                    action=(
                        "check node health / agent scheduler state; "
                        "throttle submission or resize the pilot"
                    ),
                )
            )
        return findings


#: The built-in detector battery, in report order.
DETECTORS: tuple = (
    CpuOversubscriptionDetector(),
    RpcQueueingDetector(),
    LoadImbalanceDetector(),
    SchedulerStarvationDetector(),
)


def detect_all(
    ctx: DetectionContext,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    detectors=DETECTORS,
) -> list[Finding]:
    """Run the battery; findings sorted most severe first."""
    findings: list[Finding] = []
    for detector in detectors:
        findings.extend(detector.detect(ctx, thresholds))
    findings.sort(key=lambda f: (-f.severity, f.kind, f.where))
    return findings


def observe_all(ctx: DetectionContext, detectors=DETECTORS) -> dict[str, float]:
    """Each detector's calibration metric on this run."""
    return {d.metric_field: d.observe(ctx) for d in detectors}
