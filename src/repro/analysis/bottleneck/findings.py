"""Interpretable findings: the detector subsystem's output record.

A :class:`Finding` says *what* went wrong (its kind), *where* (host,
namespace, task, or monitor source), *when* (a time window), with the
*evidence* values that triggered it, the calibrated *threshold* it was
judged against, and a suggested *action* — the interpretable unit the
adaptive layer and the CLI report consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KINDS", "Finding", "render_findings"]

#: The finding kinds the built-in detectors emit.
KINDS: tuple[str, ...] = (
    "cpu_oversubscription",
    "rpc_queueing",
    "load_imbalance",
    "scheduler_starvation",
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One detected bottleneck, with its evidence."""

    #: Machine-readable category (one of :data:`KINDS` for built-ins).
    kind: str
    #: Name of the detector that emitted this finding.
    detector: str
    #: Subject: a hostname, ``soma.<namespace>``, task uid, or source.
    where: str
    #: Time window the evidence covers (simulated seconds).
    start: float
    end: float
    #: Ratio of the triggering metric to its threshold (>= 1.0).
    severity: float
    #: The measured values that triggered the finding.
    evidence: dict = field(default_factory=dict)
    #: The calibrated threshold values the evidence was judged against.
    threshold: dict = field(default_factory=dict)
    #: Suggested remediation, in words.
    action: str = ""

    @property
    def window(self) -> tuple[float, float]:
        return (self.start, self.end)

    def to_dict(self) -> dict:
        """Plain-data form (JSON-able) for payloads and the CLI."""
        return {
            "kind": self.kind,
            "detector": self.detector,
            "where": self.where,
            "start": self.start,
            "end": self.end,
            "severity": self.severity,
            "evidence": dict(self.evidence),
            "threshold": dict(self.threshold),
            "action": self.action,
        }


def render_findings(findings: "list[Finding]") -> str:
    """Human-readable findings report (one block per finding)."""
    if not findings:
        return "no findings: every detector metric is within its threshold"
    blocks = []
    for i, f in enumerate(findings, 1):
        evidence = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(f.evidence.items())
        )
        threshold = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(f.threshold.items())
        )
        blocks.append(
            "\n".join(
                [
                    f"[{i}] {f.kind} at {f.where} "
                    f"(severity {f.severity:.2f}x)",
                    f"    window:    {f.start:.0f}s .. {f.end:.0f}s",
                    f"    evidence:  {evidence}",
                    f"    threshold: {threshold}",
                    f"    action:    {f.action}",
                ]
            )
        )
    return "\n".join(blocks)
