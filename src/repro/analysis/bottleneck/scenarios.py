"""Named bottleneck scenarios: known-clean and known-bad runs.

Each scenario is a small, fast workflow with a *known* performance
truth: the clean pair calibrates the thresholds (and must produce zero
findings), while each fault scenario plants exactly one bottleneck
signature — via :class:`~repro.faults.FaultPlan` injection or a
pathological workload parameter — that its detector must recognize.
The chaos-battery tests and ``python -m repro bottleneck battery``
both run this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Generator

from ...experiments.ddmd_exps import adaptive_experiment, run_ddmd_experiment
from ...experiments.harness import WorkflowResult, run_workflow
from ...experiments.openfoam_exps import TUNING, run_openfoam_experiment
from ...faults import FaultPlan
from ...rp.description import TaskDescription
from ...rp.model import FixedDurationModel
from ...soma.namespaces import HARDWARE, WORKFLOW
from ...soma.service import SomaConfig
from ...workloads.ddmd import GPUStageTaskModel
from ...workloads.openfoam import OpenFOAMParams

__all__ = ["Scenario", "SCENARIOS", "CLEAN_SCENARIOS", "run_scenario"]


@dataclass(frozen=True, slots=True)
class Scenario:
    """One named run with a known performance truth."""

    name: str
    description: str
    #: Finding kinds this scenario must produce (empty for clean runs).
    expect: tuple[str, ...]
    build: Callable[[int], WorkflowResult]


# -- clean baselines ------------------------------------------------------


def _clean(seed: int) -> WorkflowResult:
    """Healthy GPU-bound DDMD (two adaptive phases)."""
    experiment = adaptive_experiment().with_updates(
        phases=2,
        phase_overrides=({"num_train_tasks": 1}, {"num_train_tasks": 2}),
    )
    return run_ddmd_experiment(experiment, seed=seed)


def _clean_mpi(seed: int) -> WorkflowResult:
    """Healthy TAU-profiled MPI run (two OpenFOAM configurations)."""
    experiment = replace(
        TUNING, rank_configs=(20, 82), instances_per_config=1
    )
    return run_openfoam_experiment(experiment, seed=seed)


# -- fault scenarios ------------------------------------------------------
#
# Node layout in these runs (agent first, then service, then compute,
# in cluster order): cn0000 = agent, cn0001 = SOMA service node, and
# cn0002.. the application compute nodes.


def _bag(
    count: int,
    duration: float,
    cores: int,
    name: str,
    cpu_busy: bool = True,
) -> list[TaskDescription]:
    return [
        TaskDescription(
            name=f"{name}-{i}",
            model=FixedDurationModel(duration, cpu_busy=cpu_busy),
            ranks=1,
            cores_per_rank=cores,
            multi_node=False,
        )
        for i in range(count)
    ]


def _run_bag(descriptions, **kwargs) -> WorkflowResult:
    def workload(client, deployment) -> Generator:
        tasks = client.submit_tasks(descriptions)
        yield from client.wait_tasks(tasks)
        return {"tasks": len(tasks)}

    return run_workflow(workload, **kwargs)


def _oversubscribed(seed: int) -> WorkflowResult:
    """CPU hogs pin both compute nodes at ~95% for ~2400 s.

    40 of 42 usable cores busy per node (plus the monitor core) —
    sustained far beyond anything the clean runs exhibit.
    """
    return _run_bag(
        _bag(count=4, duration=2400.0, cores=20, name="cpu-hog"),
        nodes=2,
        agent_nodes=1,
        service_nodes=1,
        soma_config=SomaConfig(
            namespaces=(WORKFLOW, HARDWARE),
            monitors=("proc", "rp"),
            monitoring_frequency=60.0,
            hardware_frequency=30.0,
        ),
        seed=seed,
    )


def _queueing(seed: int) -> WorkflowResult:
    """SOMA ingest overload: frequent publishes into a slowed service.

    One service rank per namespace, heavy per-publish processing, 5 s
    hardware sampling from four nodes — then the service node drops to
    5% speed for 600 s and the publish queue builds up.
    """
    plan = FaultPlan().node_slowdown(
        at=120.0, node="cn0001", factor=0.05, duration=600.0
    )
    return _run_bag(
        # Light non-CPU tasks: activity for the RP monitor to report
        # without tripping the CPU or starvation detectors.  Two waves
        # so the run spans the whole fault window.
        _bag(count=60, duration=240.0, cores=4, name="io", cpu_busy=False),
        nodes=4,
        agent_nodes=1,
        service_nodes=1,
        soma_config=SomaConfig(
            namespaces=(WORKFLOW, HARDWARE),
            monitors=("proc", "rp"),
            monitoring_frequency=10.0,
            hardware_frequency=5.0,
            ranks_per_namespace=1,
            # Ingest-side summarization cost per publish (the knob the
            # paper's Scaling B stresses with frequent monitoring).
            base_service_time=0.4,
        ),
        seed=seed,
        drain_seconds=30.0,
        fault_plan=plan,
    )


def _imbalance(seed: int) -> WorkflowResult:
    """A badly decomposed 34-rank MPI solve (TAU-profiled).

    ``imbalance_sigma`` an order of magnitude above the calibrated
    solver: a few straggler ranks do ~4x the mean compute.  34 ranks
    (~80% of one node) keep utilization below the saturation level, so
    the straggler tail shows up only in the TAU per-rank breakdown,
    not as CPU saturation.
    """
    experiment = replace(
        TUNING,
        rank_configs=(34,),
        instances_per_config=1,
        params=OpenFOAMParams(imbalance_sigma=0.55),
    )
    return run_openfoam_experiment(experiment, seed=seed)


def _starvation(seed: int) -> WorkflowResult:
    """Throughput collapse: both compute nodes drop to 1% mid-bag.

    A GPU-bound bag (6 concurrent tasks per node, GPU-limited, CPU
    nearly idle) whose pending tail keeps waiting while the ``done``
    counter freezes for ~2000 s — the starvation signature in
    isolation from CPU oversubscription.
    """
    plan = (
        FaultPlan()
        .node_slowdown(at=200.0, node="cn0002", factor=0.01, duration=2000.0)
        .node_slowdown(at=200.0, node="cn0003", factor=0.01, duration=2000.0)
    )
    return _run_bag(
        [
            TaskDescription(
                name=f"gpu-work-{i}",
                model=GPUStageTaskModel(gpu_seconds=120.0, cpu_seconds=4.0),
                ranks=1,
                cores_per_rank=2,
                gpus_per_rank=1,
                multi_node=False,
            )
            for i in range(36)
        ],
        nodes=2,
        agent_nodes=1,
        service_nodes=1,
        soma_config=SomaConfig(
            namespaces=(WORKFLOW, HARDWARE),
            monitors=("proc", "rp"),
            monitoring_frequency=60.0,
            hardware_frequency=30.0,
        ),
        seed=seed,
        drain_seconds=60.0,
        fault_plan=plan,
    )


#: Every named scenario, clean first.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="clean",
            description="healthy GPU-bound DDMD (2 adaptive phases)",
            expect=(),
            build=_clean,
        ),
        Scenario(
            name="clean-mpi",
            description="healthy TAU-profiled OpenFOAM (20r + 82r)",
            expect=(),
            build=_clean_mpi,
        ),
        Scenario(
            name="oversubscribed",
            description="CPU hog bag pinning both compute nodes",
            expect=("cpu_oversubscription",),
            build=_oversubscribed,
        ),
        Scenario(
            name="queueing",
            description="frequent monitoring into a slowed SOMA service",
            expect=("rpc_queueing",),
            build=_queueing,
        ),
        Scenario(
            name="imbalance",
            description="badly decomposed 34-rank MPI solve",
            expect=("load_imbalance",),
            build=_imbalance,
        ),
        Scenario(
            name="starvation",
            description="compute nodes at 1% speed mid-bag for ~2000 s",
            expect=("scheduler_starvation",),
            build=_starvation,
        ),
    )
}

#: The calibration set: scenarios that must produce zero findings.
CLEAN_SCENARIOS: tuple[str, ...] = ("clean", "clean-mpi")


def run_scenario(name: str, seed: int = 42) -> WorkflowResult:
    """Run one named scenario end to end."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
    return scenario.build(seed)
