"""Calibrated detector thresholds.

Structural constants (what counts as "saturated", how much pending
work marks a stall) are fixed by the platform model; the *calibrated*
fields are derived from clean baseline sweeps by
:func:`repro.analysis.bottleneck.calibrate.calibrate`: the maximum of
each detector's clean-run metric across scenarios × seeds, times a
safety margin, floored so a near-zero clean signal cannot produce a
hair-trigger threshold.  :data:`DEFAULT_THRESHOLDS` holds the values
baked from the repo's clean scenarios (regenerate with
``python -m repro bottleneck --calibrate``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["Thresholds", "DEFAULT_THRESHOLDS"]


@dataclass(frozen=True, slots=True)
class Thresholds:
    """Every tunable the built-in detectors consult."""

    # -- structural (platform truths, not calibrated) -------------------
    #: CPU utilization at/above which a sample counts as saturated.
    cpu_saturated_level: float = 0.9
    #: Pending tasks at/above which a no-progress interval is a stall.
    stall_min_pending: float = 1.0

    # -- calibrated (clean-run max × margin, floored) -------------------
    # Baked from `calibrate()` over the clean scenarios × seeds (3, 17)
    # at margin 1.5: clean maxima were 90.2 s sustained saturation
    # (clean-mpi's 82-rank solve), zero RPC queue wait, 1.189 imbalance,
    # and zero stall.
    #: Seconds of sustained saturation before CPU oversubscription fires.
    cpu_sustained_seconds: float = 135.3
    #: Mean RPC queue wait (s) before ingest queueing fires.
    rpc_mean_queue_seconds: float = 0.05
    #: max/mean per-rank compute ratio before load imbalance fires.
    imbalance_ratio: float = 1.784
    #: Seconds without completions (with work pending) before
    #: scheduler starvation fires.
    stall_seconds: float = 240.0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "Thresholds":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown threshold fields: {sorted(unknown)}")
        return cls(**data)

    def with_updates(self, **kwargs) -> "Thresholds":
        return replace(self, **kwargs)


DEFAULT_THRESHOLDS = Thresholds()
