"""Makespan decomposition and critical-path analysis.

The paper's conclusion: for workflows, "performance objectives of
turnaround time are expanded to include makespan and utilization,
especially in large many-task scenarios where resource management,
critical paths, and scheduling efficiency are paramount".  This module
decomposes an EnTK pipeline's makespan into its per-stage critical
path and attributes every second to a category: task execution, RP
overhead (scheduling/launch), or resource starvation (queue waits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..rp.states import TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..entk.pipeline import Pipeline
    from ..rp.task import Task
    from ..telemetry.spans import Span, Telemetry

__all__ = ["TaskBreakdown", "StagePath", "PipelineCriticalPath",
           "breakdown_task", "pipeline_critical_path",
           "span_critical_path"]


@dataclass(frozen=True, slots=True)
class TaskBreakdown:
    """Where one task's wall time went."""

    uid: str
    #: Client-side management (TMGR states).
    client_seconds: float
    #: Waiting in the agent scheduler for resources.
    queue_seconds: float
    #: Launch + teardown overhead around execution.
    launch_seconds: float
    #: Actual rank execution (exec_start .. exec_stop).
    execution_seconds: float
    #: Output staging + finalization.
    staging_seconds: float

    @property
    def total(self) -> float:
        return (
            self.client_seconds
            + self.queue_seconds
            + self.launch_seconds
            + self.execution_seconds
            + self.staging_seconds
        )

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wall time not spent executing ranks."""
        if self.total <= 0:
            return 0.0
        return 1.0 - self.execution_seconds / self.total


def breakdown_task(task: "Task") -> TaskBreakdown:
    """Decompose one finished task's timeline from its events."""
    submitted = task.submitted_at if task.submitted_at is not None else 0.0
    agent_sched = task.time_of(TaskState.AGENT_SCHEDULING) or submitted
    executing = task.time_of(TaskState.AGENT_EXECUTING) or agent_sched
    exec_start = task.time_of("exec_start") or executing
    exec_stop = task.time_of("exec_stop") or exec_start
    launch_stop = task.time_of("launch_stop") or exec_stop
    finished = task.finished_at if task.finished_at is not None else launch_stop
    return TaskBreakdown(
        uid=task.uid,
        client_seconds=max(0.0, agent_sched - submitted),
        queue_seconds=max(0.0, executing - agent_sched),
        launch_seconds=max(0.0, exec_start - executing)
        + max(0.0, launch_stop - exec_stop),
        execution_seconds=max(0.0, exec_stop - exec_start),
        staging_seconds=max(0.0, finished - launch_stop),
    )


@dataclass(frozen=True, slots=True)
class StagePath:
    """One stage on the pipeline's critical path."""

    name: str
    duration: float
    #: The task that finished last (defines the barrier release).
    critical_task: str
    breakdown: TaskBreakdown


@dataclass(slots=True)
class PipelineCriticalPath:
    """The critical path through one pipeline's stage chain."""

    pipeline: str
    makespan: float
    stages: list[StagePath] = field(default_factory=list)

    @property
    def execution_seconds(self) -> float:
        return sum(s.breakdown.execution_seconds for s in self.stages)

    @property
    def queue_seconds(self) -> float:
        return sum(s.breakdown.queue_seconds for s in self.stages)

    @property
    def overhead_seconds(self) -> float:
        return sum(
            s.breakdown.client_seconds
            + s.breakdown.launch_seconds
            + s.breakdown.staging_seconds
            for s in self.stages
        )

    def summary(self) -> dict[str, float]:
        return {
            "makespan": self.makespan,
            "execution": self.execution_seconds,
            "queue": self.queue_seconds,
            "overhead": self.overhead_seconds,
        }


def pipeline_critical_path(pipeline: "Pipeline") -> PipelineCriticalPath:
    """The stage-barrier critical path of one executed pipeline.

    Inside each stage, the critical task is the one that reached its
    final state last; the stage's barrier releases with it.
    """
    if pipeline.started_at is None or pipeline.finished_at is None:
        raise ValueError(f"{pipeline.uid} has not finished")
    path = PipelineCriticalPath(
        pipeline=pipeline.uid,
        makespan=pipeline.finished_at - pipeline.started_at,
    )
    for stage in pipeline.stages:
        finished = [t for t in stage.tasks if t.finished_at is not None]
        if not finished:
            continue
        critical = max(finished, key=lambda t: t.finished_at)
        path.stages.append(
            StagePath(
                name=stage.name,
                duration=stage.duration or 0.0,
                critical_task=critical.uid,
                breakdown=breakdown_task(critical),
            )
        )
    return path


def span_critical_path(
    telemetry: "Telemetry", trace_id: int | None = None
) -> "list[Span]":
    """The root-to-leaf span chain that releases a trace last.

    Span-native twin of :func:`pipeline_critical_path`: starting from
    the longest root span (of ``trace_id``, or of the whole run), at
    each level descend into the child whose end is latest — the span
    whose completion gated its parent's.  Open spans are clamped to
    ``env.now``.  Deterministic: ties break toward the earliest-created
    span.
    """
    spans = [
        s
        for s in telemetry.spans
        if trace_id is None or s.trace_id == trace_id
    ]
    if not spans:
        return []
    now = telemetry.env.now
    by_id = {s.span_id: s for s in spans}
    children: dict[int, list] = {}
    roots = []
    for s in spans:
        if s.parent_id is not None and s.parent_id in by_id:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)

    def end_of(span) -> float:
        return span.end if span.end is not None else now

    root = max(roots, key=lambda s: (end_of(s) - s.start, -s.span_id))
    path = [root]
    while True:
        kids = children.get(path[-1].span_id)
        if not kids:
            break
        path.append(max(kids, key=lambda s: (end_of(s), -s.span_id)))
    return path
