"""Monitoring-overhead accounting (the Fig 11 comparison).

Compares pipeline-runtime distributions between a baseline ("none")
run and monitored runs, producing the percentage overheads the paper
reports: "approximately 1.4, 3.4, 3.2, and 4.6 percent runtime
overhead for 64, 128, 256, and 512 nodes" for frequent-exclusive, and
speedups for the shared configurations.
"""

from __future__ import annotations

from dataclasses import dataclass


from .stats import percent_change, summarize

__all__ = ["OverheadResult", "compare_runtimes", "makespan_overhead"]


@dataclass(frozen=True, slots=True)
class OverheadResult:
    """Overhead of one configuration vs. the baseline."""

    config: str
    baseline_mean: float
    config_mean: float
    overhead_percent: float
    baseline_std: float
    config_std: float

    @property
    def is_speedup(self) -> bool:
        return self.overhead_percent < 0


def compare_runtimes(
    baseline: list[float], monitored: dict[str, list[float]]
) -> list[OverheadResult]:
    """Per-configuration mean-runtime overhead vs. baseline."""
    base = summarize(baseline)
    out = []
    for config, values in monitored.items():
        s = summarize(values)
        out.append(
            OverheadResult(
                config=config,
                baseline_mean=base.mean,
                config_mean=s.mean,
                overhead_percent=percent_change(base.mean, s.mean),
                baseline_std=base.std,
                config_std=s.std,
            )
        )
    return out


def makespan_overhead(baseline_makespan: float, makespan: float) -> float:
    """Single-number overhead of a whole run."""
    return percent_change(baseline_makespan, makespan)
