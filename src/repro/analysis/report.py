"""Plain-text rendering of tables and figure data.

Every benchmark prints the paper's table rows / figure series through
these helpers, so ``pytest benchmarks/ --benchmark-only`` output reads
like the paper's evaluation section.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "fmt",
    "fmt_percent",
    "render_table",
    "render_series",
    "render_boxes",
    "render_manifest",
    "sparkline",
]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def fmt(value: float, spec: str = ".2f", na: str = "n/a") -> str:
    """Format a number, rendering NaN as ``na``.

    NaN is what the stats helpers return for undefined quantities (the
    order statistics of an empty sample, a percent change against a
    zero baseline); every table/figure renderer funnels floats through
    here so those show up as ``n/a`` instead of ``nan`` or a fake 0.
    """
    if isinstance(value, float) and math.isnan(value):
        return na
    return format(value, spec)


def fmt_percent(value: float, spec: str = "+.2f", na: str = "n/a") -> str:
    """Format a percentage with sign, rendering NaN as ``na`` (no %)."""
    if isinstance(value, float) and math.isnan(value):
        return na
    return format(value, spec) + "%"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    columns = [
        [str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """Unicode sparkline of a numeric series."""
    vals = list(values)
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[max(0, min(len(_BLOCKS) - 1, idx))])
    return "".join(out)


def render_series(
    name: str, xs: Sequence[float], ys: Sequence[float], unit: str = ""
) -> str:
    """One labelled series with a sparkline and endpoints."""
    if not ys:
        return f"{name}: (empty)"
    return (
        f"{name}: {sparkline(ys)}  "
        f"[{min(ys):.2f}..{max(ys):.2f}]{unit} over x=[{xs[0]:g}..{xs[-1]:g}]"
    )


def render_boxes(
    groups: dict[str, Sequence[float]], unit: str = "s", title: str = ""
) -> str:
    """Text 'box plot': per-group min/p25/median/p75/max."""
    from .stats import summarize

    rows = []
    for name, values in groups.items():
        s = summarize(values)
        rows.append(
            [
                name,
                s.count,
                fmt(s.minimum, ".1f"),
                fmt(s.p25, ".1f"),
                fmt(s.median, ".1f"),
                fmt(s.p75, ".1f"),
                fmt(s.maximum, ".1f"),
                fmt(s.mean, ".1f"),
            ]
        )
    return render_table(
        ["group", "n", "min", "p25", "median", "p75", "max", f"mean ({unit})"],
        rows,
        title=title,
    )


def render_manifest(manifest: dict) -> str:
    """Human-readable view of a sweep manifest (per-cell merge table).

    Cells arrive sorted by key from the runner, so the rendering is
    independent of the order the pool completed them in.
    """
    rows = []
    for entry in manifest["cells"]:
        rows.append(
            [
                entry["key"],
                entry["family"],
                entry["seed"],
                entry["source"],
                fmt(entry["wall_seconds"], ".2f"),
                entry["result_digest"][:12],
            ]
        )
    for failure in manifest.get("failed", ()):
        rows.append([failure["key"], "-", "-", "FAILED", "-", "-"])
    for key in manifest.get("pending", ()):
        rows.append([key, "-", "-", "pending", "-", "-"])
    counts = manifest["counts"]
    lines = [
        render_table(
            ["cell", "family", "seed", "source", "wall (s)", "result digest"],
            rows,
            title=f"sweep manifest ({manifest['jobs']} job(s), "
            f"code {manifest['code_version'][:12]})",
        ),
        f"completed {counts['computed']} computed"
        f" + {counts['cache_hits']} cache hits"
        f" + {counts['journal_replays']} journal replays"
        f" of {counts['total']} cells"
        f" ({counts['failed']} failed, {counts['pending']} pending)",
        f"wall clock {fmt(manifest['wall_clock_seconds'], '.2f')} s"
        f" vs serial estimate "
        f"{fmt(manifest['serial_seconds_estimate'], '.2f')} s"
        f" (speedup {fmt(manifest['speedup_vs_serial'], '.2f')}x)",
        f"matrix digest {manifest['matrix_digest']}",
    ]
    return "\n".join(lines)
