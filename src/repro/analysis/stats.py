"""Statistics helpers shared by the experiment harness and benches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "group_by", "percent_change"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:.2f} p25={self.p25:.2f} "
            f"med={self.median:.2f} p75={self.p75:.2f} max={self.maximum:.2f}"
        )


def summarize(values) -> Summary:
    """Summary statistics of a sequence (empty -> zeros)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
    )


def group_by(pairs):
    """[(key, value)] -> {key: [values]} preserving insertion order."""
    out: dict = {}
    for key, value in pairs:
        out.setdefault(key, []).append(value)
    return out


def percent_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline × 100; positive = overhead."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline * 100.0
