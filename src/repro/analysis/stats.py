"""Statistics helpers shared by the experiment harness and benches."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "group_by", "percent_change"]


def _fmt(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value:.2f}"


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={_fmt(self.mean)} std={_fmt(self.std)} "
            f"min={_fmt(self.minimum)} p25={_fmt(self.p25)} "
            f"med={_fmt(self.median)} p75={_fmt(self.p75)} "
            f"max={_fmt(self.maximum)}"
        )


def summarize(values) -> Summary:
    """Summary statistics of a sequence.

    The order statistics of an empty sample do not exist, so they come
    back as NaN (rendered as ``n/a`` by the report helpers) — an
    all-zero ``Summary`` would be indistinguishable from a genuine
    all-zero sample.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        nan = math.nan
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
    )


def group_by(pairs):
    """[(key, value)] -> {key: [values]} preserving insertion order."""
    out: dict = {}
    for key, value in pairs:
        out.setdefault(key, []).append(value)
    return out


def percent_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline × 100; positive = overhead.

    A zero baseline has no meaningful relative change: returns NaN
    (rendered as ``n/a``) rather than silently reporting zero overhead.
    """
    if baseline == 0:
        return math.nan
    return (value - baseline) / baseline * 100.0
