"""Reconstruction of the RP resource-utilization timeline (Fig 8).

Fig 8 colours each core of the pilot over time: light blue while RP
bootstraps, purple while a task is being scheduled onto the core,
green while a task runs on it, white when idle.  We rebuild exactly
that view from the session tracer: ``rp.alloc`` records give core
assignments, task profile events give the scheduling/running phase
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..rp.session import Session
from ..rp.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.spans import Telemetry

__all__ = [
    "CoreInterval",
    "ResourceTimeline",
    "build_timeline",
    "span_tracks",
]

#: Interval kinds, matching the Fig 8 legend.
BOOTSTRAP = "bootstrap"
SCHEDULING = "scheduling"
RUNNING = "running"


@dataclass(frozen=True, slots=True)
class CoreInterval:
    """One coloured interval on one core of one node."""

    node: str
    core: int
    start: float
    stop: float
    kind: str
    task: str = ""

    @property
    def duration(self) -> float:
        return self.stop - self.start


class ResourceTimeline:
    """All intervals of one run, queryable per node/core."""

    def __init__(self, intervals: list[CoreInterval], t_end: float) -> None:
        self.intervals = intervals
        self.t_end = t_end

    def for_node(self, node: str) -> list[CoreInterval]:
        return [iv for iv in self.intervals if iv.node == node]

    def kinds(self) -> set[str]:
        return {iv.kind for iv in self.intervals}

    def busy_core_seconds(self, kind: str = RUNNING) -> float:
        return sum(iv.duration for iv in self.intervals if iv.kind == kind)

    def utilization(self, total_cores: int, since: float, until: float) -> float:
        """Fraction of core-seconds in [since, until] that were RUNNING."""
        span = (until - since) * total_cores
        if span <= 0:
            return 0.0
        busy = 0.0
        for iv in self.intervals:
            if iv.kind != RUNNING:
                continue
            lo, hi = max(iv.start, since), min(iv.stop, until)
            if hi > lo:
                busy += hi - lo
        return min(1.0, busy / span)


def build_timeline(
    session: Session,
    tasks: dict[str, Task],
    nodes: list[str] | None = None,
) -> ResourceTimeline:
    """Rebuild the Fig 8 view from tracer records and task events."""
    intervals: list[CoreInterval] = []
    t_end = session.env.now

    # Bootstrap band: from pilot record 'bootstrap_start' to
    # 'bootstrap_done' across every core of every node.
    boot = {
        rec.get("event"): rec.time
        for rec in session.tracer.select(category="rp.pilot")
    }
    ncores = session.cluster.spec.node.usable_cores
    if "bootstrap_start" in boot and "bootstrap_done" in boot:
        for node in nodes or [n.name for n in session.cluster.nodes]:
            for core in range(ncores):
                intervals.append(
                    CoreInterval(
                        node=node,
                        core=core,
                        start=boot["bootstrap_start"],
                        stop=boot["bootstrap_done"],
                        kind=BOOTSTRAP,
                    )
                )

    # Allocation records: which cores each task got, and when.
    for rec in session.tracer.select(category="rp.alloc"):
        task = tasks.get(rec.name)
        if task is None:
            continue
        if nodes is not None and rec.get("node") not in nodes:
            continue
        # Purple starts when the cores are actually assigned (a task
        # waiting in the scheduler queue holds no resources).
        sched_start = task.time_of("AGENT_EXECUTING_PENDING") or rec.time
        # Green = ranks actually executing; the launch method's spawn
        # time stays purple, as in Fig 8.
        run_start = task.time_of("exec_start")
        run_stop = task.time_of("launch_stop") or (
            task.finished_at if task.finished_at is not None else t_end
        )
        for core in rec.get("cores", []):
            if run_start is not None:
                intervals.append(
                    CoreInterval(
                        node=rec.get("node"),
                        core=core,
                        start=sched_start,
                        stop=run_start,
                        kind=SCHEDULING,
                        task=rec.name,
                    )
                )
                intervals.append(
                    CoreInterval(
                        node=rec.get("node"),
                        core=core,
                        start=run_start,
                        stop=run_stop,
                        kind=RUNNING,
                        task=rec.name,
                    )
                )
            else:
                intervals.append(
                    CoreInterval(
                        node=rec.get("node"),
                        core=core,
                        start=sched_start,
                        stop=run_stop if run_stop is not None else t_end,
                        kind=SCHEDULING,
                        task=rec.name,
                    )
                )
    return ResourceTimeline(intervals, t_end)


def span_tracks(
    telemetry: "Telemetry",
) -> dict[str, list[tuple[float, float, str]]]:
    """Per-component span intervals, the span-native timeline view.

    Returns component -> [(start, stop, span name), ...], start-ordered;
    open spans are clamped to ``env.now``.  This is the same grouping
    the Chrome exporter renders as thread tracks, usable directly by
    plotting code alongside :func:`build_timeline` intervals.
    """
    now = telemetry.env.now
    tracks: dict[str, list[tuple[float, float, str]]] = {}
    for span in telemetry.spans:
        stop = span.end if span.end is not None else max(now, span.start)
        tracks.setdefault(span.component, []).append(
            (span.start, stop, span.name)
        )
    for intervals in tracks.values():
        intervals.sort()
    return tracks
