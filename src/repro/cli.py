"""Command-line interface: run paper experiments from a shell.

Usage::

    python -m repro info
    python -m repro openfoam --experiment tuning --seed 11
    python -m repro ddmd --experiment adaptive
    python -m repro scaling --pipelines 16 --modes none shared exclusive
    python -m repro sweep --jobs 4 --manifest sweep.json
    python -m repro bottleneck battery
    python -m repro lint src/repro
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Enabling Performance Observability for "
            "Heterogeneous HPC Workflows with SOMA' (ICPP 2024)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the system inventory")

    p_open = sub.add_parser("openfoam", help="run an OpenFOAM experiment")
    p_open.add_argument(
        "--experiment", choices=("tuning", "overload"), default="tuning"
    )
    p_open.add_argument("--seed", type=int, default=11)

    p_ddmd = sub.add_parser("ddmd", help="run a DDMD mini-app experiment")
    p_ddmd.add_argument(
        "--experiment", choices=("tuning", "adaptive"), default="tuning"
    )
    p_ddmd.add_argument("--seed", type=int, default=7)

    p_scale = sub.add_parser(
        "scaling", help="run a Scaling-B style comparison"
    )
    p_scale.add_argument("--pipelines", type=int, default=16)
    p_scale.add_argument(
        "--modes",
        nargs="+",
        default=["none", "shared", "exclusive"],
        choices=["none", "shared", "exclusive"],
    )
    p_scale.add_argument("--frequent", action="store_true")
    p_scale.add_argument("--seed", type=int, default=5)

    p_sweep = sub.add_parser(
        "sweep",
        help="regenerate paper artifacts via the parallel sweep engine",
        description=(
            "Shard the full experiment matrix (every benchmarks/results/ "
            "artifact) over a worker pool with content-addressed caching "
            "and a crash-safe journal.  Interrupted runs resume with "
            "--resume; completed cells are never re-executed."
        ),
    )
    p_sweep.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes (default: 1, the serial reference path)",
    )
    p_sweep.add_argument(
        "--filter", action="append", default=None, metavar="GLOB",
        help="restrict to artifacts/cells matching the glob "
        "(repeatable; e.g. --filter 'fig*' --filter table1)",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="replay the journal of an interrupted sweep in --dir",
    )
    p_sweep.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="also write the merged manifest JSON to PATH",
    )
    p_sweep.add_argument(
        "--dir", default=".sweep", dest="sweep_dir", metavar="DIR",
        help="journal + cache directory (default: .sweep)",
    )
    p_sweep.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR",
        help="where regenerated artifacts go (default: benchmarks/results)",
    )
    p_sweep.add_argument(
        "--list", action="store_true", dest="list_cells",
        help="print the planned cells/artifacts and exit without running",
    )
    p_sweep.add_argument(
        "--no-artifacts", action="store_true",
        help="run the cells but skip rendering the artifact files",
    )
    p_sweep.add_argument(
        "--telemetry", action="store_true",
        help="run every cell with span telemetry enabled and export a "
        "Chrome trace per cell under <dir>/traces (forces recompute; "
        "results are byte-identical to a plain run)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="run one experiment with causal span tracing and export "
        "a Perfetto-loadable Chrome trace",
        description=(
            "Run an experiment with repro.telemetry enabled (the "
            "simulated run is byte-identical to an untraced one), write "
            "the span tree as Chrome trace-event JSON, and print a "
            "flame summary plus the top-K critical-path spans."
        ),
    )
    p_trace.add_argument(
        "experiment",
        choices=("ddmd", "ddmd-adaptive", "openfoam", "openfoam-overload"),
        help="which experiment to trace",
    )
    p_trace.add_argument("--seed", type=int, default=7)
    p_trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="trace JSON path (default: traces/<experiment>.trace.json)",
    )
    p_trace.add_argument(
        "--top", type=int, default=10,
        help="rows in the critical-path span table (default: 10)",
    )

    p_why = sub.add_parser(
        "why",
        help="explain why an event finished when it did (happens-before "
        "chain + critical path)",
        description=(
            "Run one experiment with provenance capture on (the run is "
            "byte-identical to an uninstrumented one), stitch the spans "
            "and cross-task interactions into the run graph, and print "
            "the most-constraining causal chain for TARGET plus the "
            "critical-path edge attribution for the whole run."
        ),
    )
    p_why.add_argument(
        "target",
        nargs="?",
        default="run",
        help="a task uid (task.000012), a span id, a span-label "
        "substring, or 'run' for the whole-run makespan (default: run)",
    )
    p_why.add_argument(
        "--experiment",
        choices=("ddmd", "ddmd-adaptive", "openfoam", "openfoam-overload"),
        default="ddmd-adaptive",
        help="which experiment to run (default: ddmd-adaptive)",
    )
    p_why.add_argument("--seed", type=int, default=7)
    p_why.add_argument(
        "--top", type=int, default=20,
        help="costliest hops kept in the chain rendering (default: 20)",
    )
    p_why.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the critical-path table to PATH",
    )

    p_bneck = sub.add_parser(
        "bottleneck",
        help="run the bottleneck detectors over a named scenario",
        description=(
            "Run one named scenario (or the whole battery) through the "
            "repro.analysis.bottleneck detectors and report the "
            "findings.  Every scenario has a known truth: clean runs "
            "must produce zero findings, fault runs must produce "
            "exactly their planted bottleneck kind — the exit status "
            "reflects whether the detectors agreed."
        ),
    )
    p_bneck.add_argument(
        "experiment",
        nargs="?",
        default="battery",
        metavar="SCENARIO",
        help="a scenario name, or 'battery' for all of them "
        "(default: battery; see repro.analysis.bottleneck.SCENARIOS)",
    )
    p_bneck.add_argument("--seed", type=int, default=42)
    p_bneck.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON instead of rendered text",
    )
    p_bneck.add_argument(
        "--calibrate", action="store_true",
        help="re-derive the thresholds from the clean scenarios "
        "instead of running detectors",
    )
    p_bneck.add_argument(
        "--margin", type=float, default=None, metavar="FACTOR",
        help="calibration safety margin (default: 1.5; only with "
        "--calibrate)",
    )

    p_fac = sub.add_parser(
        "facility",
        help="run the shared-facility SOMA scenario (sharded, multi-tenant)",
        description=(
            "Run hundreds of concurrent pilots (tenants) against one "
            "sharded SOMA deployment and print the facility manifest: "
            "degradation accounting (drops, gaps, stalls), per-shard "
            "store balance, and ingest queue statistics.  --chaos arms "
            "the canonical shard-outage + tenant-flood plan."
        ),
    )
    p_fac.add_argument("--pilots", type=int, default=200)
    p_fac.add_argument("--shards", type=int, default=4)
    p_fac.add_argument("--service-nodes", type=int, default=4)
    p_fac.add_argument("--tasks-per-pilot", type=int, default=500)
    p_fac.add_argument("--concurrency", type=int, default=8)
    p_fac.add_argument("--period", type=float, default=60.0)
    p_fac.add_argument("--seed", type=int, default=3)
    p_fac.add_argument(
        "--admission-rate", type=float, default=None, metavar="TOKENS_PER_S",
        help="per-tenant publish budget (default: no admission control)",
    )
    p_fac.add_argument(
        "--degrade", choices=("drop", "summarize"), default="drop",
        help="client behaviour for refused samples",
    )
    p_fac.add_argument(
        "--chaos", action="store_true",
        help="inject the canonical shard outage + tenant flood",
    )
    p_fac.add_argument(
        "--json", action="store_true",
        help="emit the manifest as JSON instead of rendered text",
    )

    p_lint = sub.add_parser(
        "lint",
        help="run simlint (determinism/lifecycle static analysis)",
        description=(
            "Walk the given files/directories with the simlint AST rules "
            "and report determinism and event-lifecycle hazards.  Exits "
            "non-zero on any unsuppressed finding; suppress with an "
            "inline `# simlint: disable=RULE(reason)` comment."
        ),
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    p_lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings with their justifications",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    p_lint.add_argument(
        "--flow",
        action="store_true",
        help="run the flow-sensitive SL100+ family (CFG/dataflow engine); "
        "replaces the syntactic rules it supersedes",
    )
    p_lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="fail only on findings not recorded in FILE",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into --baseline FILE and exit 0",
    )
    return parser


def _cmd_info() -> int:
    from . import __version__
    from .platform import SUMMIT

    print(f"repro {__version__} — SOMA/RP/EnTK reproduction stack")
    print(
        f"platform model: {SUMMIT.name}-like, "
        f"{SUMMIT.node.usable_cores} usable cores + "
        f"{SUMMIT.node.gpus} GPUs per node, "
        f"memory-bandwidth capacity {SUMMIT.node.memory_bandwidth} "
        "core-equivalents"
    )
    print("subsystems: sim, platform, conduit, messaging, rp, entk, "
          "soma, monitors, workloads, adaptive, experiments, analysis, "
          "sweep")
    print("benchmarks: one per paper table/figure "
          "(pytest benchmarks/ --benchmark-only)")
    return 0


def _cmd_openfoam(args: argparse.Namespace) -> int:
    from .analysis import render_boxes
    from .experiments import (
        OVERLOAD,
        TUNING,
        execution_times_by_ranks,
        run_openfoam_experiment,
    )

    experiment = TUNING if args.experiment == "tuning" else OVERLOAD
    print(f"running OpenFOAM '{experiment.name}' (seed {args.seed}) ...")
    result = run_openfoam_experiment(experiment, seed=args.seed)
    print(f"makespan: {result.makespan:.0f} simulated seconds")
    times = execution_times_by_ranks(result)
    print(
        render_boxes(
            {f"{r} ranks": v for r, v in sorted(times.items())},
            title="execution time per configuration",
        )
    )
    return 0


def _cmd_ddmd(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .experiments import (
        adaptive_experiment,
        run_ddmd_experiment,
        stage_durations,
        tuning_experiment,
    )

    experiment = (
        tuning_experiment()
        if args.experiment == "tuning"
        else adaptive_experiment()
    )
    print(f"running DDMD '{experiment.name}' (seed {args.seed}) ...")
    result = run_ddmd_experiment(
        experiment, seed=args.seed, adaptive_analysis=True
    )
    print(f"makespan: {result.makespan:.0f} simulated seconds")
    rows = []
    for stage in ("simulation", "training", "selection", "agent"):
        durations = stage_durations(result, stage)
        rows.append(
            [stage, len(durations), f"{np.mean(durations):.1f}"]
        )
    print(render_table(["stage", "runs", "mean duration (s)"], rows))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .analysis import compare_runtimes, render_boxes
    from .experiments import SCALING_B, pipeline_durations, run_ddmd_experiment

    durations: dict[str, list[float]] = {}
    for mode in args.modes:
        exp = SCALING_B(args.pipelines, mode, frequent=args.frequent)
        if args.pipelines < 64:
            exp = exp.with_updates(
                soma_nodes=0 if mode == "none" else max(1, args.pipelines // 16),
                soma_ranks_per_namespace=max(1, args.pipelines // 2),
            )
        print(f"running {mode} with {args.pipelines} pipelines ...")
        result = run_ddmd_experiment(exp, seed=args.seed)
        durations[mode] = pipeline_durations(result)
    print(render_boxes(durations, title="pipeline runtimes"))
    if "none" in durations and len(durations) > 1:
        baseline = durations.pop("none")
        for res in compare_runtimes(baseline, durations):
            print(
                f"{res.config:12s} {res.overhead_percent:+6.2f}% vs baseline"
            )
    return 0


def _select_cells(matrix, artifacts, patterns):
    """Resolve --filter globs against artifact names and cell keys."""
    from fnmatch import fnmatchcase

    if not patterns:
        return matrix, dict(artifacts)
    keys: set[str] = set()
    chosen_artifacts = {}
    for name, artifact in artifacts.items():
        if any(fnmatchcase(name, pat) for pat in patterns):
            chosen_artifacts[name] = artifact
            keys.update(artifact.cells)
    for cell in matrix:
        if any(fnmatchcase(cell.key, pat) for pat in patterns):
            keys.add(cell.key)
    if not keys:
        raise SystemExit(
            f"--filter {patterns} matched no artifact or cell; known "
            f"artifacts: {', '.join(sorted(artifacts))}"
        )
    selected = matrix.subset(keys)
    # An artifact renders iff every cell it needs is in the selection.
    for name, artifact in artifacts.items():
        if name not in chosen_artifacts and all(
            key in keys for key in artifact.cells
        ):
            chosen_artifacts[name] = artifact
    return selected, chosen_artifacts


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.report import render_manifest
    from .sweep import (
        SweepInterrupted,
        atomic_write_json,
        atomic_write_text,
        default_matrix,
        plan_shards,
        run_sweep,
    )

    matrix, artifacts = default_matrix()
    spec, selected_artifacts = _select_cells(
        matrix, artifacts, args.filter
    )

    if args.list_cells:
        plan = plan_shards(spec.cells, max(1, args.jobs))
        print(
            f"{len(spec)} cell(s), {len(selected_artifacts)} artifact(s), "
            f"{args.jobs} job(s); predicted makespan "
            f"{plan.predicted_makespan:.1f}s of {plan.serial_seconds:.1f}s "
            "serial (heuristic)"
        )
        for i, shard in enumerate(plan.shards):
            keys = ", ".join(c.key for c in shard)
            print(f"  shard {i}: {keys}")
        print("artifacts: " + ", ".join(sorted(selected_artifacts)))
        return 0

    telemetry_dir = (
        Path(args.sweep_dir) / "traces" if args.telemetry else None
    )
    interrupted: SweepInterrupted | None = None
    try:
        run = run_sweep(
            spec,
            jobs=max(1, args.jobs),
            sweep_dir=args.sweep_dir,
            resume=args.resume,
            progress=print,
            telemetry_dir=telemetry_dir,
        )
    except SweepInterrupted as exc:
        interrupted = exc
        run = exc.run
    if telemetry_dir is not None:
        traces = sorted(telemetry_dir.glob("*.trace.json"))
        print(f"[{len(traces)} cell trace(s) under {telemetry_dir}]")

    if args.manifest:
        atomic_write_json(args.manifest, run.manifest)
        print(f"[manifest written to {args.manifest}]")

    if interrupted is not None:
        print(f"sweep interrupted: {interrupted}")
        print("re-run with --resume to continue from the journal")
        return 3

    if not args.no_artifacts:
        results_dir = Path(args.results_dir)
        for name in sorted(selected_artifacts):
            artifact = selected_artifacts[name]
            text = artifact.render(run.payloads)
            path = atomic_write_text(results_dir / f"{name}.txt", text + "\n")
            print(f"[{name} written to {path}]")

    print(render_manifest(run.manifest))
    return 0


def _run_traced_experiment(name: str, seed: int):
    """Run one named experiment (shared by ``trace`` and ``why``)."""
    if name in ("openfoam", "openfoam-overload"):
        from .experiments import OVERLOAD, TUNING, run_openfoam_experiment

        experiment = OVERLOAD if name == "openfoam-overload" else TUNING
        print(f"running OpenFOAM '{experiment.name}' (seed {seed}) ...")
        return run_openfoam_experiment(experiment, seed=seed)
    from .experiments import (
        adaptive_experiment,
        run_ddmd_experiment,
        tuning_experiment,
    )

    experiment = (
        adaptive_experiment() if name == "ddmd-adaptive" else tuning_experiment()
    )
    print(f"running DDMD '{experiment.name}' (seed {seed}) ...")
    return run_ddmd_experiment(
        experiment, seed=seed, adaptive_analysis=(name == "ddmd-adaptive")
    )


def _cmd_why(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .provenance import (
        build_graph,
        critical_path,
        render_critical_path,
        render_why,
        report_violations,
        resolve_target,
        set_default_provenance,
        validate_graph,
        why_chain,
    )
    from .telemetry import drain_telemetries, set_default_telemetry

    drain_telemetries()
    prev_tel = set_default_telemetry(True)
    prev_prov = set_default_provenance(True)
    try:
        result = _run_traced_experiment(args.experiment, args.seed)
    finally:
        set_default_telemetry(prev_tel)
        set_default_provenance(prev_prov)

    graph = build_graph(result)
    drain_telemetries()
    violations = validate_graph(graph)
    if violations:
        report_violations(graph, violations)
        for violation in violations:
            print(f"invalid run graph — {violation.format()}", file=sys.stderr)
        return 1

    target = resolve_target(graph, args.target)
    if target is None:
        tasks = ", ".join(sorted(graph.task_events)[:8])
        print(
            f"why: no event matches {args.target!r}; try 'run', a span "
            f"label substring, or a task uid ({tasks}, ...)",
            file=sys.stderr,
        )
        return 2
    chain = why_chain(graph, target)
    print()
    print(render_why(graph, target, chain, top=max(1, args.top)))
    print()
    path = critical_path(graph)
    table = render_critical_path(graph, path)
    print(table)
    if args.out is not None:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(table + "\n", encoding="utf-8")
        print(f"\ncritical-path table written to {out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .telemetry import (
        MetricsRegistry,
        absorb_session,
        chrome_trace,
        component_tracks,
        drain_telemetries,
        flame_summary,
        merge_chrome_traces,
        render_span_table,
        save_chrome_trace,
        set_default_telemetry,
        top_critical_spans,
        validate_chrome_trace,
    )

    drain_telemetries()  # discard hubs any earlier in-process run left
    previous = set_default_telemetry(True)
    try:
        result = _run_traced_experiment(args.experiment, args.seed)
    finally:
        set_default_telemetry(previous)
        hubs = drain_telemetries()

    if not hubs:
        print("no telemetry hubs recorded (nothing to export)")
        return 1
    metrics = MetricsRegistry()
    absorb_session(metrics, result.session, result.client, result.deployment)
    documents = [
        chrome_trace(hub, metrics=metrics if index == 0 else None, pid=index + 1)
        for index, hub in enumerate(hubs)
    ]
    document = merge_chrome_traces(documents)
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems[:10]:
            print(f"invalid trace: {problem}")
        return 1
    out = Path(
        args.out
        if args.out is not None
        else Path("traces") / f"{args.experiment}.trace.json"
    )
    path = save_chrome_trace(out, document)

    hub = max(hubs, key=lambda h: len(h.spans))
    counters = hub.counters()
    print(
        f"makespan: {result.makespan:.0f} simulated seconds; "
        f"{counters['spans_started']} spans on "
        f"{len(component_tracks(document))} component tracks "
        f"({counters['traces']} causal traces)"
    )
    print(f"trace written to {path} (load in ui.perfetto.dev)")
    print()
    print(flame_summary(hub))
    print()
    print("top critical-path spans (by self time):")
    print(render_span_table(top_critical_spans(hub, k=max(1, args.top))))
    return 0


def _cmd_bottleneck(args: argparse.Namespace) -> int:
    import json

    from .analysis.bottleneck import (
        SCENARIOS,
        DetectionContext,
        calibrate,
        detect_all,
        render_findings,
        run_scenario,
    )
    from .analysis.bottleneck.calibrate import DEFAULT_MARGIN

    if args.calibrate:
        report = calibrate(margin=args.margin or DEFAULT_MARGIN)
        if args.json:
            print(
                json.dumps(
                    {
                        "thresholds": report.thresholds.to_dict(),
                        "observed": report.observed,
                        "samples": report.samples,
                        "margin": report.margin,
                        "seeds": list(report.seeds),
                    },
                    indent=2,
                )
            )
        else:
            print(report.render())
        return 0
    if args.margin is not None:
        raise SystemExit("--margin only makes sense with --calibrate")

    names = (
        list(SCENARIOS) if args.experiment == "battery" else [args.experiment]
    )
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        known = ", ".join(SCENARIOS)
        raise SystemExit(
            f"unknown scenario {unknown[0]!r}; known: {known}, battery"
        )

    mismatches = []
    kinds_seen: set[str] = set()
    report_json = []
    for name in names:
        scenario = SCENARIOS[name]
        result = run_scenario(name, seed=args.seed)
        ctx = DetectionContext.from_result(result)
        findings = detect_all(ctx)
        kinds = sorted({f.kind for f in findings})
        kinds_seen.update(kinds)
        ok = set(kinds) == set(scenario.expect)
        if not ok:
            mismatches.append(name)
        if args.json:
            report_json.append(
                {
                    "scenario": name,
                    "seed": args.seed,
                    "expected": list(scenario.expect),
                    "ok": ok,
                    "findings": [f.to_dict() for f in findings],
                }
            )
            continue
        verdict = "ok" if ok else "MISMATCH"
        expected = "/".join(scenario.expect) or "none"
        print(
            f"== {name} (seed {args.seed}) — {scenario.description}; "
            f"expected: {expected} [{verdict}]"
        )
        print(render_findings(findings))
        print()
    if args.json:
        print(json.dumps(report_json, indent=2))
    elif args.experiment == "battery":
        print(
            f"battery: {len(names)} scenario(s), {len(kinds_seen)} "
            f"distinct finding kind(s), {len(mismatches)} mismatch(es)"
        )
    if mismatches:
        print(
            "detectors disagreed with the planted truth in: "
            + ", ".join(mismatches),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_facility(args: argparse.Namespace) -> int:
    import json as json_mod

    from .experiments.facility import (
        FacilitySpec,
        facility_chaos_plan,
        run_facility,
    )
    from .sweep.artifacts import render_facility

    spec = FacilitySpec(
        pilots=args.pilots,
        shards=args.shards,
        service_nodes=args.service_nodes,
        tasks_per_pilot=args.tasks_per_pilot,
        concurrency=args.concurrency,
        period=args.period,
        admission_rate=args.admission_rate,
        degrade=args.degrade,
    )
    plan = facility_chaos_plan(spec) if args.chaos else None
    result = run_facility(spec, seed=args.seed, fault_plan=plan)
    payload = result.payload()
    if args.json:
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_facility(payload))
    # The degradation contract is the scenario's pass condition.
    return 0 if payload["stalled_tasks"] == 0 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .sanitize import simlint

    if args.list_rules:
        width = max(len(rule.name) for rule in simlint.RULES.values())
        for rule in simlint.RULES.values():
            print(f"{rule.id}  {rule.name:<{width}}  {rule.summary}")
        return 0
    if args.write_baseline and args.baseline is None:
        print("lint: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    return simlint.main(
        args.paths,
        fmt=args.fmt,
        show_suppressed=args.show_suppressed,
        flow=args.flow,
        baseline=args.baseline,
        update_baseline=args.write_baseline,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "openfoam":
        return _cmd_openfoam(args)
    if args.command == "ddmd":
        return _cmd_ddmd(args)
    if args.command == "scaling":
        return _cmd_scaling(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "why":
        return _cmd_why(args)
    if args.command == "bottleneck":
        return _cmd_bottleneck(args)
    if args.command == "facility":
        return _cmd_facility(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
