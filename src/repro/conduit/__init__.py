"""Conduit-style hierarchical data model (paper Sec 2.2.2).

All monitoring payloads in the SOMA stack are :class:`Node` trees,
mirroring how the paper uses ``Conduit::Node`` to give each monitoring
namespace its own logical tree that can be merged during analysis.
"""

from .node import Node, PathError

__all__ = ["Node", "PathError"]
