"""Conduit-style hierarchical data model.

The paper (Sec 2.2.2) represents all monitoring data as Conduit trees:
each namespace is a ``Conduit::Node`` whose children are addressed by
``/``-separated paths, with typed leaves at the bottom (Listings 1, 2).
This module reimplements the subset of Conduit's node API the SOMA
stack needs: path get/set, iteration, merging ("update"), flattening,
diffing and a compact serialized form whose size drives the simulated
RPC transfer cost.

Example (the workflow-namespace model of Listing 1)::

    root = Node()
    root["RP/task.000000/1698435412.606"] = "launch_start"
    root["RP/task.000000/1698435412.964"] = "exec_start"
"""

from __future__ import annotations

import json
from typing import Any, Iterator

__all__ = ["Node", "PathError"]

#: Leaf types Conduit understands; anything else must be wrapped.
_LEAF_TYPES = (int, float, str, bool, bytes, type(None))


class PathError(KeyError):
    """Raised for malformed or missing paths."""


def _split(path: str) -> list[str]:
    if not isinstance(path, str):
        raise PathError(f"path must be a string, got {type(path).__name__}")
    parts = [p for p in path.split("/") if p]
    if not parts:
        raise PathError(f"empty path {path!r}")
    return parts


class Node:
    """A hierarchical, ordered tree of named children and typed leaves.

    A node is either an *object* node (has named children) or a *leaf*
    (holds a scalar or a homogeneous list of scalars).  Setting a value
    through a path materializes intermediate object nodes, exactly like
    ``conduit::Node::fetch``.
    """

    __slots__ = ("_children", "_value", "_has_value")

    def __init__(self, value: Any = None) -> None:
        self._children: dict[str, Node] = {}
        self._value: Any = None
        self._has_value = False
        if value is not None:
            self.set(value)

    # -- classification -------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self._has_value

    @property
    def is_object(self) -> bool:
        return bool(self._children)

    @property
    def is_empty(self) -> bool:
        return not self._has_value and not self._children

    # -- value access ----------------------------------------------------

    @property
    def value(self) -> Any:
        if not self._has_value:
            raise PathError("node is not a leaf")
        return self._value

    def set(self, value: Any) -> None:
        """Make this node a leaf holding ``value``."""
        if isinstance(value, Node):
            self._children = {k: v.copy() for k, v in value._children.items()}
            self._value = value._value
            self._has_value = value._has_value
            return
        if isinstance(value, dict):
            self._children.clear()
            self._has_value = False
            self._value = None
            for key, sub in value.items():
                self[str(key)] = sub
            return
        if isinstance(value, (list, tuple)):
            value = list(value)
            for item in value:
                if not isinstance(item, _LEAF_TYPES):
                    raise TypeError(
                        f"list leaves must hold scalars, got {type(item).__name__}"
                    )
        elif not isinstance(value, _LEAF_TYPES):
            raise TypeError(
                f"unsupported leaf type {type(value).__name__}: {value!r}"
            )
        if self._children:
            raise PathError("cannot assign a value to an object node")
        self._value = value
        self._has_value = True

    # -- path access -------------------------------------------------------

    def fetch(self, path: str) -> "Node":
        """Get the node at ``path``, creating object nodes on the way."""
        node = self
        for part in _split(path):
            if node._has_value:
                raise PathError(f"cannot descend through leaf at {part!r}")
            child = node._children.get(part)
            if child is None:
                child = Node()
                node._children[part] = child
            node = child
        return node

    def get(self, path: str, default: Any = None) -> Any:
        """Value at ``path``, or ``default`` if missing / not a leaf."""
        try:
            node = self._descend(path)
        except PathError:
            return default
        if node is None or not node._has_value:
            return default
        return node._value

    def _descend(self, path: str) -> "Node | None":
        node = self
        for part in _split(path):
            child = node._children.get(part)
            if child is None:
                return None
            node = child
        return node

    def __getitem__(self, path: str) -> Any:
        node = self._descend(path)
        if node is None:
            raise PathError(path)
        if node._has_value:
            return node._value
        return node

    def __setitem__(self, path: str, value: Any) -> None:
        self.fetch(path).set(value)

    def __contains__(self, path: str) -> bool:
        return self._descend(path) is not None

    def __delitem__(self, path: str) -> None:
        parts = _split(path)
        node = self
        for part in parts[:-1]:
            child = node._children.get(part)
            if child is None:
                raise PathError(path)
            node = child
        if parts[-1] not in node._children:
            raise PathError(path)
        del node._children[parts[-1]]

    def remove(self, path: str) -> None:
        del self[path]

    # -- iteration ---------------------------------------------------------

    def child_names(self) -> list[str]:
        return list(self._children)

    def children(self) -> Iterator[tuple[str, "Node"]]:
        return iter(self._children.items())

    def __iter__(self) -> Iterator[str]:
        return iter(self._children)

    def __len__(self) -> int:
        return len(self._children)

    def number_of_children(self) -> int:
        return len(self._children)

    def leaves(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        """Yield ``(path, value)`` for every leaf under this node."""
        if self._has_value:
            yield prefix or "", self._value
            return
        for name, child in self._children.items():
            sub = f"{prefix}/{name}" if prefix else name
            yield from child.leaves(sub)

    def paths(self) -> list[str]:
        """All leaf paths under this node."""
        return [p for p, _ in self.leaves()]

    # -- structural operations ----------------------------------------------

    def update(self, other: "Node") -> None:
        """Merge ``other`` into this node (other wins on conflicts)."""
        if other._has_value:
            if self._children:
                raise PathError("cannot merge a leaf onto an object node")
            self._value = other._value
            self._has_value = True
            return
        if self._has_value and other._children:
            raise PathError("cannot merge an object onto a leaf node")
        for name, child in other._children.items():
            mine = self._children.get(name)
            if mine is None:
                self._children[name] = child.copy()
            else:
                mine.update(child)

    def copy(self) -> "Node":
        node = Node()
        node._value = (
            list(self._value) if isinstance(self._value, list) else self._value
        )
        node._has_value = self._has_value
        node._children = {k: v.copy() for k, v in self._children.items()}
        return node

    def diff(self, other: "Node") -> list[str]:
        """Paths at which this node and ``other`` differ."""
        result: list[str] = []
        mine = dict(self.leaves())
        theirs = dict(other.leaves())
        for path in sorted(set(mine) | set(theirs)):
            if mine.get(path, _MISSING) != theirs.get(path, _MISSING):
                result.append(path)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return not self.diff(other)

    # -- conversion -----------------------------------------------------------

    def to_dict(self) -> Any:
        """Plain-Python mirror of the tree (leaves become values)."""
        if self._has_value:
            return self._value
        return {name: child.to_dict() for name, child in self._children.items()}

    @classmethod
    def from_dict(cls, data: Any) -> "Node":
        node = cls()
        node.set(data)
        return node

    def to_json(self) -> str:
        def encode(value: Any) -> Any:
            if isinstance(value, bytes):
                return {"__bytes__": value.hex()}
            return value

        def walk(node: "Node") -> Any:
            if node._has_value:
                if isinstance(node._value, list):
                    return [encode(v) for v in node._value]
                return encode(node._value)
            return {name: walk(child) for name, child in node._children.items()}

        return json.dumps(walk(self), sort_keys=False)

    @classmethod
    def from_json(cls, payload: str) -> "Node":
        def decode(value: Any) -> Any:
            if isinstance(value, dict) and set(value) == {"__bytes__"}:
                return bytes.fromhex(value["__bytes__"])
            return value

        def build(data: Any, node: "Node") -> None:
            if isinstance(data, dict) and set(data) != {"__bytes__"}:
                for key, sub in data.items():
                    build(sub, node.fetch(key))
            elif isinstance(data, list):
                node.set([decode(v) for v in data])
            else:
                node.set(decode(data))

        node = cls()
        raw = json.loads(payload)
        build(raw, node)
        return node

    # -- size accounting ---------------------------------------------------------

    def nbytes(self) -> int:
        """Approximate serialized size in bytes.

        This is the quantity the simulated RPC layer charges for when a
        SOMA client publishes a tree, so it must be cheap and stable.
        """
        total = 0
        for path, value in self.leaves():
            total += len(path)
            if isinstance(value, str):
                total += len(value)
            elif isinstance(value, bytes):
                total += len(value)
            elif isinstance(value, bool) or value is None:
                total += 1
            elif isinstance(value, int):
                total += 8
            elif isinstance(value, float):
                total += 8
            elif isinstance(value, list):
                total += 8 * len(value)
        return total

    def num_leaves(self) -> int:
        return sum(1 for _ in self.leaves())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._has_value:
            return f"Node({self._value!r})"
        return f"Node({len(self._children)} children)"

    def render(self, indent: int = 0) -> str:
        """Human-readable tree rendering (used in example output)."""
        pad = "  " * indent
        if self._has_value:
            return f"{pad}{self._value!r}"
        lines = []
        for name, child in self._children.items():
            if child._has_value:
                lines.append(f"{pad}{name}: {child._value!r}")
            else:
                lines.append(f"{pad}{name}:")
                lines.append(child.render(indent + 1))
        return "\n".join(lines)


_MISSING = object()
