"""RADICAL-EnTK-style ensemble toolkit on top of the RP substrate."""

from .appmanager import AppManager
from .pipeline import Pipeline
from .stage import Stage

__all__ = ["AppManager", "Pipeline", "Stage"]
