"""EnTK AppManager: lowers pipelines/stages onto an RP client.

"This is configured and managed by RADICAL-EnTK (Ensemble Toolkit),
which is a higher-level abstraction of RADICAL-Pilot functionality"
(paper Sec 3.2).  The AppManager runs each pipeline as a process:
submit a stage's tasks, wait for the barrier, fire the stage's
post_exec hook, continue.  An optional ``between_phases`` callback
(every ``stages_per_phase`` stages) hosts the adaptive-experiment
analysis the paper performs between DDMD phases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..rp.client import Client
from ..rp.states import TaskState
from ..sim.core import Event
from ..sim.events import AllOf
from .pipeline import Pipeline
from .stage import Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..rp.task import Task

__all__ = ["AppManager"]


class AppManager:
    """Executes pipelines of stages on one RP client."""

    def __init__(
        self,
        client: Client,
        stages_per_phase: int = 4,
        between_phases: Callable[[Pipeline, int], None] | None = None,
    ) -> None:
        self.client = client
        self.env = client.session.env
        self.stages_per_phase = stages_per_phase
        self.between_phases = between_phases
        self.pipelines: list[Pipeline] = []
        self.failed_tasks: "list[Task]" = []

    def run(
        self, pipelines: list[Pipeline]
    ) -> Generator[Event, None, list[Pipeline]]:
        """Run all pipelines concurrently; returns when all are done."""
        self.pipelines.extend(pipelines)
        procs = [
            self.env.process(
                self._run_pipeline(p), name=f"entk-{p.uid}"
            )
            for p in pipelines
        ]
        if procs:
            yield AllOf(self.env, procs)
        return pipelines

    def _run_pipeline(
        self, pipeline: Pipeline
    ) -> Generator[Event, None, None]:
        pipeline.started_at = self.env.now
        with self.client.session.telemetry.span(
            f"pipeline:{pipeline.uid}", component="entk", uid=pipeline.uid
        ):
            self.client.session.tracer.record(
                "entk.pipeline", pipeline.uid, event="start"
            )
            for index, stage in enumerate(pipeline.stages):
                yield from self._run_stage(pipeline, stage)
                if (
                    self.between_phases is not None
                    and self.stages_per_phase > 0
                    and (index + 1) % self.stages_per_phase == 0
                ):
                    phase = (index + 1) // self.stages_per_phase - 1
                    self.between_phases(pipeline, phase)
            pipeline.finished_at = self.env.now
            self.client.session.tracer.record(
                "entk.pipeline",
                pipeline.uid,
                event="done",
                duration=pipeline.duration,
            )

    def _run_stage(
        self, pipeline: Pipeline, stage: Stage
    ) -> Generator[Event, None, None]:
        stage.started_at = self.env.now
        # Task root spans created under this stage span adopt it as
        # their parent — the hand-off from EnTK to RP in every trace.
        with self.client.session.telemetry.span(
            f"stage:{stage.name}",
            component="entk",
            uid=stage.uid,
            pipeline=pipeline.uid,
        ):
            stage.tasks = self.client.submit_tasks(stage.task_descriptions)
            yield from self.client.wait_tasks(stage.tasks)
            stage.finished_at = self.env.now
            for task in stage.tasks:
                if task.state != TaskState.DONE:
                    self.failed_tasks.append(task)
            self.client.session.tracer.record(
                "entk.stage",
                stage.uid,
                pipeline=pipeline.uid,
                stage_name=stage.name,
                duration=stage.duration,
            )
            if stage.post_exec is not None:
                stage.post_exec(stage)

    # -- results -----------------------------------------------------------

    def pipeline_durations(self) -> list[float]:
        return [
            p.duration for p in self.pipelines if p.duration is not None
        ]

    def stage_durations(self, name: str | None = None) -> list[float]:
        out = []
        for pipeline in self.pipelines:
            for stage in pipeline.stages:
                if name is not None and stage.name != name:
                    continue
                if stage.duration is not None:
                    out.append(stage.duration)
        return out
