"""EnTK Pipeline: an ordered chain of stages."""

from __future__ import annotations

import itertools

from .stage import Stage

__all__ = ["Pipeline"]


class Pipeline:
    """Stages executed strictly in order; pipelines run concurrently.

    The paper uses EnTK "to schedule n number of phases in a row,
    within m number of concurrent pipelines" (Sec 3.2, Fig 3); a phase
    is four consecutive stages appended to the pipeline.
    """

    _ids = itertools.count()

    @classmethod
    def reset_ids(cls) -> None:
        """Restart uid minting (per-run, for in-process repeatability).

        Uids land in trace records, so two identical runs in one
        process must not keep counting where the previous run stopped
        — the experiment harness resets the counter per workflow.
        """
        cls._ids = itertools.count()

    def __init__(self, name: str = "", stages: list[Stage] | None = None) -> None:
        self.uid = f"pipeline.{next(Pipeline._ids):04d}"
        self.name = name or self.uid
        self.stages: list[Stage] = list(stages or [])
        self.started_at: float | None = None
        self.finished_at: float | None = None

    def add_stage(self, stage: Stage) -> None:
        self.stages.append(stage)

    def add_stages(self, stages: list[Stage]) -> None:
        self.stages.extend(stages)

    @property
    def duration(self) -> float | None:
        """End-to-end pipeline execution time (Figs 10/11 y-axis)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def num_tasks(self) -> int:
        return sum(len(s.task_descriptions) for s in self.stages)

    @property
    def succeeded(self) -> bool:
        return all(s.succeeded for s in self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pipeline {self.name} stages={len(self.stages)}>"
