"""EnTK Stage: a set of tasks with a barrier after them."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from ..rp.description import TaskDescription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..rp.task import Task

__all__ = ["Stage"]


class Stage:
    """Tasks that may run concurrently; the stage ends when all do.

    Mirrors RADICAL-EnTK's Stage: "stages ... must be run in order"
    within a pipeline, with an implicit barrier between consecutive
    stages.
    """

    _ids = itertools.count()

    @classmethod
    def reset_ids(cls) -> None:
        """Restart uid minting (see :meth:`Pipeline.reset_ids`)."""
        cls._ids = itertools.count()

    def __init__(
        self,
        name: str = "",
        tasks: list[TaskDescription] | None = None,
        post_exec: Callable[["Stage"], None] | None = None,
    ) -> None:
        self.uid = f"stage.{next(Stage._ids):06d}"
        self.name = name or self.uid
        self.task_descriptions: list[TaskDescription] = list(tasks or [])
        #: Callback invoked (synchronously) when the stage completes —
        #: EnTK's post_exec hook, used for adaptive decisions.
        self.post_exec = post_exec
        #: Filled at runtime.
        self.tasks: "list[Task]" = []
        self.started_at: float | None = None
        self.finished_at: float | None = None

    def add_task(self, description: TaskDescription) -> None:
        self.task_descriptions.append(description)

    @property
    def duration(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def succeeded(self) -> bool:
        return bool(self.tasks) and all(t.state == "DONE" for t in self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name} tasks={len(self.task_descriptions)}>"
