"""Experiment harnesses regenerating the paper's tables and figures."""

from .ddmd_exps import (
    DDMD_ADAPTIVE_TRAIN_COUNTS,
    DDMD_TUNING_PHASES,
    DDMDExperiment,
    SCALING_A,
    SCALING_B,
    adaptive_experiment,
    build_pipelines,
    pipeline_durations,
    run_ddmd_experiment,
    stage_durations,
    tuning_experiment,
)
from .harness import WorkflowResult, run_workflow
from .openfoam_exps import (
    OVERLOAD,
    OpenFOAMExperiment,
    TUNING,
    execution_times_by_ranks,
    execution_times_by_spread,
    run_openfoam_experiment,
)

__all__ = [
    "DDMD_ADAPTIVE_TRAIN_COUNTS",
    "DDMD_TUNING_PHASES",
    "DDMDExperiment",
    "OVERLOAD",
    "OpenFOAMExperiment",
    "SCALING_A",
    "SCALING_B",
    "TUNING",
    "WorkflowResult",
    "adaptive_experiment",
    "build_pipelines",
    "execution_times_by_ranks",
    "execution_times_by_spread",
    "pipeline_durations",
    "run_ddmd_experiment",
    "run_openfoam_experiment",
    "run_workflow",
    "stage_durations",
    "tuning_experiment",
]
