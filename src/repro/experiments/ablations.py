"""Ablation runs of the adaptive prototype (paper Sec 6 future work).

Previously private to ``benchmarks/bench_ablation_adaptive.py``; hoisted
here so the sweep engine can run them as self-contained cells and the
bench can keep regenerating the same tables from the same code.

1. **Rank tuning** (Sec 4.1): probe each MPI configuration once, let
   the :class:`~repro.adaptive.RankTuningPolicy` pick one, run the
   remaining instances there — vs. statically cycling the original
   mixed configurations.
2. **Utilization-aware placement** (Sec 4.2): schedule onto the node
   with the lowest memory-bandwidth pressure — vs. default rotating
   first-fit — for a contention-heavy bag of tasks.
3. **Detection-driven adaptation**: pick each DDMD phase's training
   parallelism from the online bottleneck findings — vs. the paper's
   a-priori 1/2/4/6 schedule.
"""

from __future__ import annotations

from ..adaptive import AdaptiveController, RankTuningPolicy
from ..entk.appmanager import AppManager
from ..entk.pipeline import Pipeline
from ..entk.stage import Stage
from ..platform.specs import summit_like
from ..rp.client import Client
from ..rp.description import PilotDescription, TaskDescription
from ..rp.model import ComputeModel
from ..rp.session import Session
from ..soma.integration import deploy_soma
from ..soma.namespaces import HARDWARE, WORKFLOW
from ..soma.service import SomaConfig
from ..workloads.ddmd import ddmd_phase_stages
from ..workloads.openfoam import OpenFOAMParams, openfoam_task_description
from .ddmd_exps import DDMD_ADAPTIVE_TRAIN_COUNTS, adaptive_experiment
from .harness import run_workflow

__all__ = [
    "ABLATION_RANKS",
    "ABLATION_INSTANCES",
    "run_rank_tuning_ablation",
    "run_placement_ablation",
    "run_detection_ablation",
]

ABLATION_RANKS = (20, 41, 82, 164)
ABLATION_INSTANCES = 8


def run_rank_tuning_ablation(
    adaptive: bool, seed: int = 11
) -> tuple[float, int]:
    """Makespan (and the chosen rank count) of one rank-tuning run."""
    params = OpenFOAMParams()
    session = Session(cluster_spec=summit_like(6), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=5, agent_nodes=1)
        )
        deployment = yield from deploy_soma(
            client,
            pilot,
            SomaConfig(namespaces=(WORKFLOW, HARDWARE), monitors=("proc",)),
        )
        controller = AdaptiveController(
            client, deployment, rank_policy=RankTuningPolicy(0.35)
        )
        start = env.now
        probes = client.submit_tasks(
            [
                openfoam_task_description(r, params=params, name=f"probe-{r}")
                for r in ABLATION_RANKS
            ]
        )
        yield from client.wait_tasks(probes)
        controller.observe_tasks(probes)
        choice = controller.recommended_ranks() if adaptive else 0
        rest = []
        for i in range(ABLATION_INSTANCES):
            ranks = choice if adaptive else ABLATION_RANKS[i % len(ABLATION_RANKS)]
            rest.append(
                openfoam_task_description(ranks, params=params, name=f"r{i}")
            )
        tasks = client.submit_tasks(rest)
        yield from client.wait_tasks(tasks)
        return env.now - start, choice

    makespan, choice = env.run(env.process(main(env)))
    client.close()
    return makespan, choice


def run_placement_ablation(adaptive: bool, seed: int) -> float:
    """Makespan of a contention-heavy bag under one placement policy."""
    session = Session(cluster_spec=summit_like(5), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        yield from client.submit_pilot(
            PilotDescription(nodes=4, agent_nodes=1)
        )
        if adaptive:
            from ..adaptive import UtilizationAwarePlacement

            client.agent.scheduler.set_node_ranker(UtilizationAwarePlacement())
        start = env.now
        # Contention-heavy bag: memory-bound 10-rank jobs in waves.
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"job{i}",
                    model=ComputeModel(
                        200.0, mem_intensity=0.7, demand_per_core=1.3
                    ),
                    ranks=10,
                    multi_node=False,
                )
                for i in range(24)
            ]
        )
        yield from client.wait_tasks(tasks)
        return env.now - start

    makespan = env.run(env.process(main(env)))
    client.close()
    return makespan


def run_detection_ablation(
    adaptive: bool, seed: int = 11
) -> tuple[float, list[int]]:
    """Makespan (and the per-phase train counts) of one adaptive-DDMD run.

    Both arms run the Table 2 "Adaptive" cell phase by phase.  The
    static arm follows the paper's a-priori 1/2/4/6 training-task
    schedule; the detection arm starts at the same conservative count
    and then, between phases, feeds the online bottleneck findings
    through :meth:`~repro.adaptive.AdaptiveController.apply_findings`
    — a healthy run scales training out immediately, a detected CPU
    or scheduler bottleneck pulls it back to serial.
    """
    # Function-level import: repro.analysis.bottleneck's scenario
    # registry imports this package's siblings.
    from ..analysis.bottleneck import DetectionContext, detect_all

    experiment = adaptive_experiment()
    counts: list[int] = []

    def workload(client, deployment):
        env = client.session.env
        controller = AdaptiveController(client, deployment)
        manager = AppManager(client, stages_per_phase=4)
        start = env.now
        count = DDMD_ADAPTIVE_TRAIN_COUNTS[0]
        for phase in range(experiment.phases):
            if not adaptive:
                count = DDMD_ADAPTIVE_TRAIN_COUNTS[phase]
            counts.append(count)
            params = experiment.params.with_updates(num_train_tasks=count)
            pipeline = Pipeline(name=f"ddmd-ph{phase}")
            for stage_name, tasks in ddmd_phase_stages(
                params, phase_index=phase, pipeline=0
            ):
                pipeline.add_stage(Stage(name=stage_name, tasks=tasks))
            yield from manager.run([pipeline])
            if adaptive:
                ctx = DetectionContext.from_deployment(
                    deployment, now=env.now
                )
                applied = controller.apply_findings(detect_all(ctx))
                count = applied["training_workers"]
        return {"makespan": env.now - start, "train_counts": list(counts)}

    result = run_workflow(
        workload,
        nodes=experiment.app_nodes,
        agent_nodes=1,
        service_nodes=experiment.soma_nodes,
        share_service_nodes=(experiment.soma_mode == "shared"),
        soma_config=experiment.soma_config(),
        seed=seed,
    )
    return result.payload["makespan"], counts
