"""DeepDriveMD mini-app experiments (paper Sec 3.2, Table 2, Figs 9-11).

Four experiment families:

* **Tuning** (Fig 9) — 6 phases × 1 pipeline on 2 app nodes (+1 SOMA
  node), varying cores per simulation task (1/3/7) and per training
  task (7 then 3); CPU utilization stays low because the work is on
  the GPUs.
* **Adaptive** — 4 phases × 1 pipeline, training tasks 1/2/4/6 set a
  priori; online SOMA analysis runs between phases.
* **Scaling A** (Fig 10) — 1 phase × 64 pipelines on 64 app nodes,
  SOMA nodes 1/2/4 (ranks : pipelines from 1:1 to 1:8... i.e. 16, 32,
  64 ranks per namespace), shared vs exclusive.
* **Scaling B** (Fig 11) — 1 phase × m pipelines on m app nodes for
  m = 64..512, SOMA nodes 4/7/13/25 with a steady 1:1 rank:pipeline
  ratio, in none / shared / exclusive configurations at 60 s and the
  "frequent" variants at 10 s.

Each pipeline's simulation stage needs 12 GPUs but its node only has
6, so the stage runs as two waves — the oversubscription that makes
the shared configurations interesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Generator

from ..entk.appmanager import AppManager
from ..entk.pipeline import Pipeline
from ..entk.stage import Stage
from ..rp.client import Client
from ..sim.core import Event
from ..soma.analysis import free_resource_estimate
from ..soma.integration import SomaDeployment
from ..soma.namespaces import HARDWARE, WORKFLOW
from ..soma.service import SomaConfig
from ..workloads.ddmd import DDMDParams, ddmd_phase_stages
from .harness import WorkflowResult, run_workflow

__all__ = [
    "DDMDExperiment",
    "DDMD_TUNING_PHASES",
    "DDMD_ADAPTIVE_TRAIN_COUNTS",
    "SCALING_A",
    "SCALING_B",
    "run_ddmd_experiment",
    "build_pipelines",
    "pipeline_durations",
]


@dataclass(frozen=True, slots=True)
class DDMDExperiment:
    """One DDMD run configuration (a cell of Table 2)."""

    name: str
    phases: int = 1
    pipelines: int = 1
    app_nodes: int = 2
    soma_nodes: int = 1
    #: 'none' (baseline), 'shared', or 'exclusive'.
    soma_mode: str = "exclusive"
    soma_ranks_per_namespace: int = 1
    #: 0 = the paper's single-instance deployment; N>0 shards the
    #: service across N instances behind the consistent-hash ring.
    soma_shards: int = 0
    monitoring_frequency: float = 60.0
    params: DDMDParams = field(default_factory=DDMDParams)
    #: Per-phase overrides applied to ``params`` (list of dicts).
    phase_overrides: tuple[dict, ...] = ()

    def with_updates(self, **kwargs) -> "DDMDExperiment":
        return replace(self, **kwargs)

    @property
    def monitored(self) -> bool:
        return self.soma_mode != "none"

    def soma_config(self) -> SomaConfig | None:
        if not self.monitored:
            return None
        return SomaConfig(
            ranks_per_namespace=self.soma_ranks_per_namespace,
            namespaces=(WORKFLOW, HARDWARE),
            monitoring_frequency=self.monitoring_frequency,
            monitors=("proc", "rp"),
            shards=self.soma_shards,
        )

    def params_for_phase(self, phase: int) -> DDMDParams:
        if phase < len(self.phase_overrides):
            return self.params.with_updates(**self.phase_overrides[phase])
        return self.params


#: Fig 9's six phases: train cores 7 (gray) then 3 (green), sim cores
#: 1 / 3 / 7 (light -> dark shading) within each.
DDMD_TUNING_PHASES: tuple[dict, ...] = (
    {"cores_per_train_task": 7, "cores_per_sim_task": 1},
    {"cores_per_train_task": 7, "cores_per_sim_task": 3},
    {"cores_per_train_task": 7, "cores_per_sim_task": 7},
    {"cores_per_train_task": 3, "cores_per_sim_task": 1},
    {"cores_per_train_task": 3, "cores_per_sim_task": 3},
    {"cores_per_train_task": 3, "cores_per_sim_task": 7},
)

#: The adaptive experiment's a-priori training task counts per phase.
DDMD_ADAPTIVE_TRAIN_COUNTS = (1, 2, 4, 6)


def tuning_experiment() -> DDMDExperiment:
    """Table 2 "Tuning": 6 phases, 1 pipeline, 2 app + 1 SOMA node."""
    return DDMDExperiment(
        name="tuning",
        phases=6,
        pipelines=1,
        app_nodes=2,
        soma_nodes=1,
        soma_mode="exclusive",
        soma_ranks_per_namespace=1,
        monitoring_frequency=60.0,
        phase_overrides=DDMD_TUNING_PHASES,
    )


def adaptive_experiment() -> DDMDExperiment:
    """Table 2 "Adaptive": 4 phases, train tasks 1/2/4/6."""
    return DDMDExperiment(
        name="adaptive",
        phases=4,
        pipelines=1,
        app_nodes=2,
        soma_nodes=1,
        soma_mode="exclusive",
        soma_ranks_per_namespace=1,
        monitoring_frequency=60.0,
        params=DDMDParams(cores_per_sim_task=6, cores_per_train_task=1),
        phase_overrides=tuple(
            {"num_train_tasks": k} for k in DDMD_ADAPTIVE_TRAIN_COUNTS
        ),
    )


def SCALING_A(
    soma_nodes: int, mode: str, pipelines: int = 64
) -> DDMDExperiment:
    """Table 2 "Scaling A": 64 pipelines, SOMA ranks 16 x soma_nodes."""
    return DDMDExperiment(
        name=f"scaling-a-{mode}-{soma_nodes}n",
        phases=1,
        pipelines=pipelines,
        app_nodes=pipelines,
        soma_nodes=soma_nodes,
        soma_mode=mode,
        # Table 2: total SOMA ranks 16/32/64, split over 2 namespaces.
        soma_ranks_per_namespace=8 * soma_nodes,
        monitoring_frequency=60.0,
        # Wide run-to-run variation, as the mini-app exhibits at scale
        # (the paper's Figs 10/11 distributions are broad).
        params=DDMDParams(
            cores_per_sim_task=3, cores_per_train_task=7, noise_sigma=0.25
        ),
    )


def SCALING_B(
    pipelines: int, mode: str, frequent: bool = False
) -> DDMDExperiment:
    """Table 2 "Scaling B": steady 1:1 SOMA-rank : pipeline ratio."""
    soma_nodes_map = {64: 4, 128: 7, 256: 13, 512: 25}
    return DDMDExperiment(
        name=(
            f"scaling-b-{mode}{'-frequent' if frequent else ''}-{pipelines}p"
        ),
        phases=1,
        pipelines=pipelines,
        app_nodes=pipelines,
        soma_nodes=0 if mode == "none" else soma_nodes_map.get(
            pipelines, max(1, (pipelines * 2 + 41) // 42)
        ),
        soma_mode=mode,
        # "We kept the ratio of SOMA ranks to pipelines at 1:1": the
        # Table's rank total, split over the two namespaces used.
        soma_ranks_per_namespace=max(1, pipelines // 2),
        monitoring_frequency=10.0 if frequent else 60.0,
        params=DDMDParams(
            cores_per_sim_task=3, cores_per_train_task=7, noise_sigma=0.25
        ),
    )


def build_pipelines(experiment: DDMDExperiment) -> list[Pipeline]:
    """n phases × 4 stages inside each of m pipelines (Fig 3)."""
    pipelines = []
    for p in range(experiment.pipelines):
        pipeline = Pipeline(name=f"ddmd-p{p}")
        for phase in range(experiment.phases):
            params = experiment.params_for_phase(phase)
            for stage_name, tasks in ddmd_phase_stages(
                params, phase_index=phase, pipeline=p
            ):
                pipeline.add_stage(Stage(name=stage_name, tasks=tasks))
        pipelines.append(pipeline)
    return pipelines


def run_ddmd_experiment(
    experiment: DDMDExperiment,
    seed: int = 42,
    adaptive_analysis: bool = False,
) -> WorkflowResult:
    """Run one DDMD configuration end to end.

    With ``adaptive_analysis=True`` the harness queries SOMA between
    phases for free-resource estimates (the paper's Adaptive setup) and
    stores them in the result payload.
    """
    analyses: list[dict] = []

    def workload(
        client: Client, deployment: SomaDeployment
    ) -> Generator[Event, None, dict]:
        session = client.session

        def between_phases(pipeline: Pipeline, phase: int) -> None:
            if not adaptive_analysis or not deployment.enabled:
                return
            headroom = free_resource_estimate(
                deployment.store(HARDWARE),
                window=3 * experiment.monitoring_frequency,
                now=session.env.now,
            )
            analyses.append(
                {
                    "pipeline": pipeline.uid,
                    "phase": phase,
                    "time": session.env.now,
                    "headroom": headroom,
                }
            )

        manager = AppManager(
            client, stages_per_phase=4, between_phases=between_phases
        )
        pipelines = build_pipelines(experiment)
        yield from manager.run(pipelines)
        return {
            "pipelines": pipelines,
            "manager": manager,
            "analyses": analyses,
        }

    return run_workflow(
        workload,
        nodes=experiment.app_nodes,
        agent_nodes=1,
        service_nodes=experiment.soma_nodes,
        share_service_nodes=(experiment.soma_mode == "shared"),
        soma_config=experiment.soma_config(),
        seed=seed,
    )


def pipeline_durations(result: WorkflowResult) -> list[float]:
    """Fig 10/11 y-axis: per-pipeline end-to-end times."""
    return [
        p.duration
        for p in result.payload["pipelines"]
        if p.duration is not None
    ]


def stage_durations(result: WorkflowResult, stage: str) -> list[float]:
    manager: AppManager = result.payload["manager"]
    return manager.stage_durations(stage)
