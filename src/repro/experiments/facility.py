"""The facility scenario: hundreds of pilots, one shared SOMA service.

The paper deploys SOMA per workflow; ROADMAP item 2 asks what happens
when a leadership-class facility runs it as *shared infrastructure* —
hundreds of concurrent pilots (the RP Summit characterization's
many-task regime) publishing into one sharded deployment.  This module
is that scenario:

* a :class:`ShardedSomaServiceModel` brought up on a handful of
  service nodes (no RP pilot machinery — the service is the facility's,
  not any workflow's);
* one *tenant* per pilot: a bag-of-tasks engine (``concurrency``
  workers draining ``tasks_per_pilot`` task durations drawn from the
  OpenFOAM/DDMD workload scales) plus a monitor process publishing a
  batched sample tree per monitoring period;
* the PR 1 degradation contract, generalized: task workers never touch
  the monitoring path, so a shard outage or an admission rejection can
  cost *samples* (recorded as gaps) but never *task time*.  The
  ``stalled_tasks`` counter exists to catch anyone re-coupling them.

Everything is deterministic per (spec, seed): durations come from
``session.stable_rng("facility:<tenant>")``, and the run produces a
plain-data manifest (:meth:`FacilityResult.payload`) the sweep engine
can cache and diff byte-for-byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from ..conduit import Node as ConduitNode
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..platform import summit_like
from ..rp.session import Session
from ..sim.core import Event
from ..soma.namespaces import PERFORMANCE, WORKFLOW
from ..soma.service import ShardedSomaServiceModel, SomaConfig
from ..soma.sharding import DEFAULT_VNODES, shard_key
from ..workloads.ddmd import DDMDParams
from ..workloads.openfoam import OpenFOAMParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..soma.client import SomaClient

__all__ = [
    "FacilitySpec",
    "FacilityResult",
    "facility_chaos_plan",
    "run_facility",
]


@dataclass(frozen=True, slots=True)
class FacilitySpec:
    """Shape of one facility run (plain data, picklable for the sweep)."""

    #: Concurrent pilots (= tenants) sharing the service.
    pilots: int = 200
    #: Shard instances of the SOMA deployment.
    shards: int = 4
    #: Facility nodes hosting the service instances.
    service_nodes: int = 4
    #: Monitored tasks each pilot runs.
    tasks_per_pilot: int = 500
    #: Task slots per pilot (bag-of-tasks width).
    concurrency: int = 8
    #: Monitoring/publication period, seconds.
    period: float = 60.0
    #: Workload families assigned round-robin to pilots.
    workload_mix: tuple[str, ...] = ("openfoam", "ddmd")
    #: Namespaces each pilot's monitor publishes into.
    namespaces: tuple[str, ...] = (WORKFLOW, PERFORMANCE)
    #: Service ranks per namespace server.
    ranks_per_namespace: int = 2
    #: Virtual nodes per instance on the ring.
    ring_vnodes: int = DEFAULT_VNODES
    #: Per-tenant publish budget (tokens/s); None = no admission control.
    admission_rate: float | None = None
    admission_burst: float = 10.0
    #: Client degrade mode under backpressure: "drop" or "summarize".
    degrade: str = "drop"

    def soma_config(self) -> SomaConfig:
        return SomaConfig(
            ranks_per_namespace=self.ranks_per_namespace,
            namespaces=self.namespaces,
            monitoring_frequency=self.period,
            monitors=(),
            shards=self.shards,
            ring_vnodes=self.ring_vnodes,
            admission_rate=self.admission_rate,
            admission_burst=self.admission_burst,
        )

    def tenants(self) -> tuple[str, ...]:
        return tuple(f"t{i:03d}" for i in range(self.pilots))


#: Mean task durations per workload family, seconds.  OpenFOAM: the
#: per-iteration compute grain of the paper's solver runs; DDMD: the
#: stage mix of one pipeline pass averaged over its four task kinds.
def _family_scale(family: str) -> float:
    if family == "openfoam":
        p = OpenFOAMParams()
        return p.total_work / p.iterations
    if family == "ddmd":
        p = DDMDParams()
        return (
            p.sim_gpu_seconds
            + p.train_gpu_seconds
            + p.selection_cpu_seconds
            + p.agent_gpu_seconds
        ) / 4.0 / 4.0
    raise ValueError(f"unknown workload family {family!r}")


class _PilotState:
    """Mutable per-pilot accounting shared by its workers + monitor."""

    __slots__ = (
        "tenant",
        "family",
        "completed",
        "stalled",
        "pending_samples",
        "published_samples",
        "publishes_ok",
        "publishes_failed",
        "client",
    )

    def __init__(self, tenant: str, family: str) -> None:
        self.tenant = tenant
        self.family = family
        self.completed = 0
        self.stalled = 0
        self.pending_samples: list[tuple[float, float]] = []
        self.published_samples = 0
        self.publishes_ok = 0
        self.publishes_failed = 0
        #: The pilot's SOMA client, attached once the pilot finishes.
        self.client: "SomaClient | None" = None


@dataclass(slots=True)
class FacilityResult:
    """Everything a facility run reports (plain data via payload())."""

    spec: FacilitySpec
    seed: int
    makespan: float
    samples_generated: int
    samples_published: int
    stalled_tasks: int
    publishes_ok: int
    publishes_failed: int
    client_drops: int
    client_rejections: int
    gaps: int
    gap_seconds: float
    store_records: dict[str, int]
    queue_stats: dict[str, dict[str, float]]
    admission: dict[str, dict[str, dict[str, int]]]
    faults_applied: int

    def payload(self) -> dict[str, Any]:
        """JSON-able manifest (sweep cell output / CI artifact)."""
        return {
            "pilots": self.spec.pilots,
            "shards": self.spec.shards,
            "tasks_per_pilot": self.spec.tasks_per_pilot,
            "seed": self.seed,
            "makespan": self.makespan,
            "samples_generated": self.samples_generated,
            "samples_published": self.samples_published,
            "stalled_tasks": self.stalled_tasks,
            "publishes_ok": self.publishes_ok,
            "publishes_failed": self.publishes_failed,
            "client_drops": self.client_drops,
            "client_rejections": self.client_rejections,
            "gaps": self.gaps,
            "gap_seconds": self.gap_seconds,
            "store_records": dict(sorted(self.store_records.items())),
            "queue_stats": {
                name: dict(sorted(stats.items()))
                for name, stats in sorted(self.queue_stats.items())
            },
            "admission": self.admission,
            "faults_applied": self.faults_applied,
        }


def _worker(
    env, state: _PilotState, queue: "deque[float]"
) -> Generator[Event, None, None]:
    """One task slot: drain durations; never touches the RPC path."""
    while queue:
        duration = queue.popleft()
        started = env.now
        yield env.timeout(duration)
        # Float non-associativity makes (t0 + d) - t0 != d in general;
        # the epsilon separates that from an actual stall.
        if (env.now - started) > duration + 1e-6:
            state.stalled += 1
        state.pending_samples.append((env.now, duration))
        state.completed += 1


def _monitor(
    env,
    spec: FacilitySpec,
    state: _PilotState,
    client: "SomaClient",
) -> Generator[Event, None, None]:
    """Publish the pilot's batched samples once per period.

    Separate process from the workers by design: monitoring riding the
    task path is exactly the coupling the degradation contract forbids.
    """
    while state.completed < spec.tasks_per_pilot:
        yield env.timeout(spec.period)
        yield from _flush(env, spec, state, client)
    # Final flush for samples completed inside the last partial period.
    yield from _flush(env, spec, state, client)


def _flush(
    env, spec: FacilitySpec, state: _PilotState, client: "SomaClient"
) -> Generator[Event, None, None]:
    batch = state.pending_samples
    if not batch:
        return
    state.pending_samples = []
    base = f"RP/{state.tenant}"
    tree = ConduitNode()
    tree[f"{base}/completed"] = state.completed
    tree[f"{base}/batch"] = len(batch)
    tree[f"{base}/last_finish"] = batch[-1][0]
    perf = ConduitNode()
    total = sum(duration for _, duration in batch)
    perf[f"TAU/{state.tenant}/batch_task_seconds"] = total
    perf[f"TAU/{state.tenant}/batch_tasks"] = len(batch)
    published_all = True
    for namespace, payload in ((WORKFLOW, tree), (PERFORMANCE, perf)):
        if namespace not in spec.namespaces:
            continue
        ok = yield from client.publish(namespace, payload)
        if ok:
            state.publishes_ok += 1
        else:
            state.publishes_failed += 1
            published_all = False
    if published_all:
        state.published_samples += len(batch)


def _pilot(
    session: Session,
    spec: FacilitySpec,
    config: SomaConfig,
    state: _PilotState,
) -> Generator[Event, None, None]:
    env = session.env
    rng = session.stable_rng(f"facility:{state.tenant}")
    scale = _family_scale(state.family)
    # Uniform ±50% around the family scale: enough spread to desync
    # the pilots' monitors without modelling full workload pipelines.
    durations = deque(
        scale * (0.5 + float(rng.random()))
        for _ in range(spec.tasks_per_pilot)
    )
    client = config.make_client(
        session,
        name=f"mon@{state.tenant}",
        node=None,
        tenant=state.tenant,
    )
    client.degrade = spec.degrade
    workers = [
        env.process(
            _worker(env, state, durations),
            name=f"facility:{state.tenant}:w{i}",
        )
        for i in range(spec.concurrency)
    ]
    monitor = env.process(
        _monitor(env, spec, state, client),
        name=f"facility:{state.tenant}:mon",
    )
    for proc in workers:
        yield proc
    yield monitor
    # Surface the client's degradation tallies on the shared state.
    state.client = client


def facility_chaos_plan(
    spec: FacilitySpec,
    outage_at: float = 300.0,
    outage_duration: float = 240.0,
    flood_at: float = 600.0,
    flood_duration: float = 120.0,
    flood_rate: float = 50.0,
    flood_tenant: str = "noisy",
) -> FaultPlan:
    """The canonical facility chaos plan (CLI, sweep, and tests).

    Targets the shard that owns the *first* tenant's first namespace —
    computed through the same ring the deployment will build, so the
    outage provably hits a shard with live traffic — with a windowed
    outage followed by a synthetic-tenant flood against that shard.
    """
    ring = spec.soma_config().make_ring()
    victim = ring.owner(shard_key(spec.tenants()[0], spec.namespaces[0]))
    return (
        FaultPlan()
        .shard_outage(outage_at, victim, duration=outage_duration)
        .tenant_flood(
            flood_at,
            victim,
            tenant=flood_tenant,
            rate=flood_rate,
            duration=flood_duration,
        )
    )


def run_facility(
    spec: FacilitySpec,
    seed: int = 1,
    fault_plan: "FaultPlan | None" = None,
) -> FacilityResult:
    """Run one facility scenario to completion and report the manifest."""
    session = Session(
        cluster_spec=summit_like(max(1, spec.service_nodes), name="facility"),
        seed=seed,
    )
    env = session.env
    config = spec.soma_config()
    model = ShardedSomaServiceModel(session, config)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(session, fault_plan, name="facility-chaos")
        injector.start()

    states = [
        _PilotState(tenant, spec.workload_mix[i % len(spec.workload_mix)])
        for i, tenant in enumerate(spec.tenants())
    ]
    clients: "list[SomaClient]" = []

    def main() -> Generator[Event, None, None]:
        nodes = list(session.cluster.nodes[: max(1, spec.service_nodes)])
        model.bring_up(nodes, session.cluster.network)
        pilots = []
        for state in states:
            proc = env.process(
                _pilot(session, spec, config, state),
                name=f"facility:pilot:{state.tenant}",
            )
            pilots.append(proc)
        for proc in pilots:
            yield proc

    env.run(env.process(main(), name="facility-main"))

    for state in states:
        assert state.client is not None
        clients.append(state.client)

    store_records = {
        key: len(store) for key, store in sorted(dict(model.stores).items())
    }
    return FacilityResult(
        spec=spec,
        seed=seed,
        makespan=env.now,
        samples_generated=sum(s.completed for s in states),
        samples_published=sum(s.published_samples for s in states),
        stalled_tasks=sum(s.stalled for s in states),
        publishes_ok=sum(s.publishes_ok for s in states),
        publishes_failed=sum(s.publishes_failed for s in states),
        client_drops=sum(c.dropped for c in clients),
        client_rejections=sum(c.rejected for c in clients),
        gaps=sum(c.gaps for c in clients),
        gap_seconds=sum(c.gap_seconds for c in clients),
        store_records=store_records,
        queue_stats=model.queue_stats(),
        admission=model.admission_counters(),
        faults_applied=len(injector.applied) if injector is not None else 0,
    )
