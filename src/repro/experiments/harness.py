"""Experiment harness: one entry point per paper experiment family.

Wraps the full stack — session, pilot, SOMA deployment, workload
submission, shutdown — into plain functions returning
:class:`WorkflowResult` objects that benches and tests consume.

The module also hosts the *cell-family registry* the sweep engine
(:mod:`repro.sweep`) dispatches through: a cell is ``(family, params,
seed)`` — all plain data — and :func:`run_cell` resolves the family by
name to a module-level function, so a cell pickles cleanly into a
worker process with no closures attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..platform.specs import ClusterSpec, summit_like
from ..rp.client import Client
from ..rp.config import RPConfig
from ..rp.description import PilotDescription
from ..rp.session import Session
from ..rp.task import Task
from ..sim.core import Event
from ..soma.integration import SomaDeployment, deploy_soma, no_soma
from ..soma.service import SomaConfig

__all__ = [
    "WorkflowResult",
    "run_workflow",
    "register_cell_family",
    "cell_families",
    "run_cell",
]

#: family name -> function(params: dict, seed: int) -> JSON-able payload.
_CELL_FAMILIES: dict[str, Callable[[dict, int], dict]] = {}


def register_cell_family(
    name: str,
) -> Callable[[Callable[[dict, int], dict]], Callable[[dict, int], dict]]:
    """Register a module-level function as a sweep cell family.

    The function must be picklable by reference (defined at module
    level) and must reduce its run to a plain JSON-able payload dict —
    that payload is what gets digested, cached, and journalled.
    """

    def decorate(fn: Callable[[dict, int], dict]) -> Callable[[dict, int], dict]:
        if name in _CELL_FAMILIES and _CELL_FAMILIES[name] is not fn:
            raise ValueError(f"cell family {name!r} already registered")
        _CELL_FAMILIES[name] = fn
        return fn

    return decorate


def cell_families() -> tuple[str, ...]:
    """Names of the registered families (built-ins load on demand)."""
    _ensure_builtin_families()
    return tuple(sorted(_CELL_FAMILIES))


def _ensure_builtin_families() -> None:
    # The built-in families live in repro.sweep.cells; importing the
    # module registers them.  Lazy to keep harness import-light and to
    # avoid an import cycle (sweep.cells imports this module).
    from ..sweep import cells as _cells  # noqa: F401


def run_cell(family: str, params: dict, seed: int) -> dict:
    """Run one self-contained cell and return its plain-data payload.

    This is the function sweep workers execute: a top-level callable
    taking only plain arguments, so ``(family, params, seed)`` is the
    entire pickled state of a cell.
    """
    _ensure_builtin_families()
    try:
        fn = _CELL_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(_CELL_FAMILIES)) or "(none)"
        raise KeyError(
            f"unknown cell family {family!r}; registered: {known}"
        ) from None
    return fn(dict(params), int(seed))


@dataclass(slots=True)
class WorkflowResult:
    """Everything a finished workflow run exposes for analysis."""

    session: Session
    client: Client
    deployment: SomaDeployment
    tasks: dict[str, Task]
    #: Virtual time from pilot-active to workload completion.
    makespan: float
    #: Virtual time at workload completion.
    finished_at: float
    #: Free-form payload the workload function returned.
    payload: Any = None
    #: The fault injector armed for this run, if any.
    injector: Any = None

    @property
    def application_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if t.is_application]

    def tasks_by_name_prefix(self, prefix: str) -> list[Task]:
        return [
            t
            for t in self.tasks.values()
            if t.description.name.startswith(prefix)
        ]


def run_workflow(
    workload: Callable[[Client, SomaDeployment], Generator[Event, Any, Any]],
    nodes: int,
    agent_nodes: int = 1,
    service_nodes: int = 0,
    share_service_nodes: bool = False,
    soma_config: SomaConfig | None = None,
    cluster_spec: ClusterSpec | None = None,
    rp_config: RPConfig | None = None,
    seed: int = 42,
    trace: bool = True,
    telemetry: bool | None = None,
    drain_seconds: float = 0.0,
    fault_plan: Any = None,
) -> WorkflowResult:
    """Run one complete workflow on a fresh simulated machine.

    ``workload`` is a process generator receiving the active client and
    the SOMA deployment; whatever it returns becomes the result's
    ``payload``.  ``soma_config=None`` runs the baseline ("none")
    configuration with no service and no monitors.  ``telemetry=None``
    defers to the process default (``set_default_telemetry`` /
    ``REPRO_TELEMETRY``); the simulated run is byte-identical either way.
    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) arms a
    :class:`~repro.faults.FaultInjector` against the session before the
    run starts — this is how the bottleneck scenarios inject their
    known faults.
    """
    # Restart process-global uid mints so a workflow's trace stream
    # depends only on (workload, seed, config) — never on how many
    # runs this process executed before.  The differential event-queue
    # battery and the seed-sweep determinism tests rely on this.
    from ..entk.pipeline import Pipeline
    from ..entk.stage import Stage
    from ..rp import raptor

    Pipeline.reset_ids()
    Stage.reset_ids()
    raptor.reset_ids()

    spec = cluster_spec or summit_like(nodes + agent_nodes + service_nodes)
    session = Session(
        cluster_spec=spec,
        config=rp_config,
        seed=seed,
        trace=trace,
        telemetry=telemetry,
    )
    client = Client(session)
    env = session.env
    box: dict[str, Any] = {}

    injector = None
    if fault_plan is not None:
        from ..faults import FaultInjector

        injector = FaultInjector(session, fault_plan)
        injector.start()

    def main() -> Generator[Event, Any, None]:
        pilot = yield from client.submit_pilot(
            PilotDescription(
                nodes=nodes,
                agent_nodes=agent_nodes,
                service_nodes=service_nodes,
                share_service_nodes=share_service_nodes,
                walltime=30 * 24 * 3600.0,
            )
        )
        if soma_config is not None:
            deployment = yield from deploy_soma(client, pilot, soma_config)
        else:
            deployment = no_soma(session)
        box["deployment"] = deployment
        start = env.now
        payload = yield from workload(client, deployment)
        box["payload"] = payload
        box["makespan"] = env.now - start
        if drain_seconds > 0:
            # Let one more monitoring cycle land before shutdown.
            yield env.timeout(drain_seconds)
        client.close()

    proc = env.process(main(), name="workflow-main")
    env.run(proc)

    return WorkflowResult(
        session=session,
        client=client,
        deployment=box["deployment"],
        tasks=dict(client.task_manager.tasks),
        makespan=box["makespan"],
        finished_at=env.now,
        payload=box.get("payload"),
        injector=injector,
    )
