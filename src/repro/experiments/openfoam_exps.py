"""The OpenFOAM workflow experiments (paper Sec 3.1, Table 1).

Two runs on the Summit-like platform:

* **tuning** — one instance of each task configuration (20, 41, 82,
  164 MPI ranks) across 4 compute nodes (+1 agent/SOMA node);
* **overloaded** — 20 instances of each configuration across 10
  compute nodes (+1 agent/SOMA node).

Monitors: proc (hardware, every 30 s as in Fig 7), rp (workflow), and
the TAU plugin wrapping every application task.  One SOMA rank per
namespace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..rp.client import Client
from ..rp.description import TaskDescription
from ..sim.core import Event
from ..soma.integration import SomaDeployment
from ..soma.namespaces import HARDWARE, PERFORMANCE, WORKFLOW
from ..soma.service import SomaConfig
from ..workloads.openfoam import OpenFOAMParams, openfoam_task_description
from .harness import WorkflowResult, run_workflow

__all__ = [
    "OpenFOAMExperiment",
    "TUNING",
    "OVERLOAD",
    "run_openfoam_experiment",
]

#: The four task configurations of Table 1.
RANK_CONFIGS = (20, 41, 82, 164)


@dataclass(frozen=True, slots=True)
class OpenFOAMExperiment:
    """One row of Table 1."""

    name: str
    instances_per_config: int
    compute_nodes: int
    agent_nodes: int = 1
    rank_configs: tuple[int, ...] = RANK_CONFIGS
    monitors: tuple[str, ...] = ("proc", "rp")
    use_tau: bool = True
    monitoring_frequency: float = 60.0
    hardware_frequency: float = 30.0
    soma_ranks_per_namespace: int = 1
    #: 0 = the paper's single-instance deployment; N>0 shards the
    #: service across N instances behind the consistent-hash ring.
    soma_shards: int = 0
    params: OpenFOAMParams = field(default_factory=OpenFOAMParams)

    @property
    def num_tasks(self) -> int:
        return self.instances_per_config * len(self.rank_configs)

    def soma_config(self) -> SomaConfig:
        return SomaConfig(
            ranks_per_namespace=self.soma_ranks_per_namespace,
            namespaces=(WORKFLOW, HARDWARE, PERFORMANCE),
            monitoring_frequency=self.monitoring_frequency,
            hardware_frequency=self.hardware_frequency,
            monitors=self.monitors,
            shards=self.soma_shards,
        )


#: Table 1, "Tuning" column: 4 tasks, 4 (+1) nodes.
TUNING = OpenFOAMExperiment(
    name="tuning", instances_per_config=1, compute_nodes=4
)

#: Table 1, "Overload" column: 80 tasks, 10 (+1) nodes.
OVERLOAD = OpenFOAMExperiment(
    name="overload", instances_per_config=20, compute_nodes=10
)


def run_openfoam_experiment(
    experiment: OpenFOAMExperiment, seed: int = 42
) -> WorkflowResult:
    """Run one OpenFOAM workflow under SOMA monitoring."""

    def workload(
        client: Client, deployment: SomaDeployment
    ) -> Generator[Event, None, dict]:
        descriptions: list[TaskDescription] = []
        # Interleaved submission, largest configuration first within
        # each round: the 164-rank task occupies the machine at the
        # start (Fig 8) and the mix stays heterogeneous throughout.
        for i in range(experiment.instances_per_config):
            for ranks in sorted(experiment.rank_configs, reverse=True):
                td = openfoam_task_description(
                    ranks,
                    params=experiment.params,
                    name=f"openfoam-{ranks}r-{i}",
                )
                if experiment.use_tau and deployment.enabled:
                    td = deployment.wrap_with_tau(td)
                descriptions.append(td)
        tasks = client.submit_tasks(descriptions)
        yield from client.wait_tasks(tasks)
        return {
            "by_ranks": {
                ranks: [
                    t
                    for t in tasks
                    if t.description.metadata.get("ranks") == ranks
                ]
                for ranks in experiment.rank_configs
            }
        }

    return run_workflow(
        workload,
        nodes=experiment.compute_nodes,
        agent_nodes=experiment.agent_nodes,
        soma_config=experiment.soma_config(),
        seed=seed,
        drain_seconds=experiment.hardware_frequency + 5.0,
    )


def execution_times_by_ranks(result: WorkflowResult) -> dict[int, list[float]]:
    """Fig 4 data: per-configuration task execution times."""
    out: dict[int, list[float]] = {}
    for ranks, tasks in result.payload["by_ranks"].items():
        out[ranks] = [
            t.execution_time for t in tasks if t.execution_time is not None
        ]
    return out


def execution_times_by_spread(
    result: WorkflowResult, ranks: int
) -> dict[int, list[float]]:
    """Fig 6 data: execution time grouped by number of nodes used."""
    out: dict[int, list[float]] = {}
    for task in result.payload["by_ranks"][ranks]:
        if task.execution_time is None:
            continue
        out.setdefault(len(task.nodelist), []).append(task.execution_time)
    return dict(sorted(out.items()))
