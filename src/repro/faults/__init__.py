"""Deterministic fault injection and bounded-retry robustness.

Everything chaotic about a run is declared up front in a
:class:`FaultPlan` and driven off the simulated clock by a
:class:`FaultInjector`, so "chaos" runs replay bit-identically for a
given (seed, plan) pair.  The matching robustness half —
:class:`RetryPolicy` with deterministic backoff jitter — is what SOMA
clients and RP's persistence paths use to degrade gracefully instead
of stalling or crashing when a fault window opens.

The typed transient errors (:class:`RPCTimeout`,
:class:`ServiceUnavailable`) live in :mod:`repro.messaging.protocol`
(the layer that raises them) and are re-exported here for convenience.
"""

from ..messaging.protocol import RPCError, RPCTimeout, ServiceUnavailable
from .injector import FaultInjector, MessageFaultDecision, MessageFaults
from .plan import (
    FAULT_KINDS,
    NODE_CRASH,
    NODE_SLOWDOWN,
    PARTITION,
    PROFILE_OUTAGE,
    RPC_DELAY,
    RPC_DROP,
    RPC_DUPLICATE,
    SERVICE_OUTAGE,
    SHARD_OUTAGE,
    TENANT_FLOOD,
    WINDOWED_KINDS,
    FaultEvent,
    FaultPlan,
)
from .retry import TRANSIENT_ERRORS, RetryExhausted, RetryPolicy
from .worker import WorkerFault, WorkerFaultSpec, check_worker_fault

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MessageFaultDecision",
    "MessageFaults",
    "NODE_CRASH",
    "NODE_SLOWDOWN",
    "PARTITION",
    "PROFILE_OUTAGE",
    "RPCError",
    "RPCTimeout",
    "RPC_DELAY",
    "RPC_DROP",
    "RPC_DUPLICATE",
    "RetryExhausted",
    "RetryPolicy",
    "SERVICE_OUTAGE",
    "SHARD_OUTAGE",
    "ServiceUnavailable",
    "TENANT_FLOOD",
    "TRANSIENT_ERRORS",
    "WINDOWED_KINDS",
    "WorkerFault",
    "WorkerFaultSpec",
    "check_worker_fault",
]
