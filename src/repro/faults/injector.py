"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live session.

The injector is a sim process that walks the plan's timeline and pokes
the fault hooks exposed by the lower layers:

* node crash / slowdown → :meth:`Node.fail` / :meth:`Node.set_speed_factor`;
* rack partition → :meth:`Network.sever` / :meth:`Network.heal`;
* message drop/delay/duplicate → a :class:`MessageFaults` gate attached
  to ``network.message_faults`` and consulted by every RPC client;
* SOMA service outage → ``shutdown()``/``restart()`` on the namespace
  servers found through the session's RPC registry;
* profile-store outage → ``session.profiles.set_available(...)``.

All randomness (which messages a probabilistic fault hits, retry
jitter downstream) flows from ``session.stable_rng("faults:<name>")``,
so a (seed, plan) pair replays bit-identically — and a run with no
probabilistic faults active draws nothing at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..sim.core import Event
from .plan import (
    FaultEvent,
    FaultPlan,
    NODE_CRASH,
    NODE_SLOWDOWN,
    PARTITION,
    PROFILE_OUTAGE,
    RPC_DELAY,
    RPC_DROP,
    RPC_DUPLICATE,
    SERVICE_OUTAGE,
    SHARD_OUTAGE,
    TENANT_FLOOD,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..platform.node import Node
    from ..rp.session import Session

__all__ = ["FaultInjector", "MessageFaults", "MessageFaultDecision"]

#: Simulated seconds a client waits on a dropped message before giving
#: up, absent an explicit per-plan stall (models a transport timeout).
DEFAULT_DROP_STALL = 30.0


class MessageFaultDecision:
    """The fate the gate assigned to one message."""

    __slots__ = ("action", "delay")

    def __init__(self, action: str | None = None, delay: float = 0.0) -> None:
        #: "drop_request", "drop_response", "duplicate", or None.
        self.action = action
        #: Extra in-flight latency, seconds.
        self.delay = delay


class MessageFaults:
    """Per-message fault gate consulted by RPC clients.

    Attached to ``network.message_faults`` (duck-typed — the platform
    layer never imports this module).  While no probability is set the
    gate is inert and :meth:`draw` returns ``None`` without touching
    the RNG, so fault-free runs keep their exact event streams.
    """

    def __init__(self, rng: "np.random.Generator") -> None:
        self.rng = rng
        self.drop_probability = 0.0
        self.duplicate_probability = 0.0
        self.delay_probability = 0.0
        self.delay_seconds = 0.0
        self.drop_stall = DEFAULT_DROP_STALL
        self.decided = 0
        self.dropped_requests = 0
        self.dropped_responses = 0
        self.duplicated = 0
        self.delayed = 0

    @property
    def active(self) -> bool:
        return (
            self.drop_probability > 0
            or self.duplicate_probability > 0
            or self.delay_probability > 0
        )

    def reset(self) -> None:
        """Deactivate the gate (window closed); counters survive."""
        self.drop_probability = 0.0
        self.duplicate_probability = 0.0
        self.delay_probability = 0.0
        self.delay_seconds = 0.0

    def draw(self, method: str) -> MessageFaultDecision | None:
        """Decide the fate of one outbound call, or None when inert.

        Draw order is fixed (drop, duplicate, delay) so the RNG stream
        is reproducible; at most one *action* applies per message, with
        delay composable on top of a duplicate.
        """
        if not self.active:
            return None
        self.decided += 1
        decision = MessageFaultDecision()
        if self.drop_probability > 0 and float(self.rng.random()) < self.drop_probability:
            # Requests and responses are equally exposed on the wire.
            if float(self.rng.random()) < 0.5:
                decision.action = "drop_request"
                self.dropped_requests += 1
            else:
                decision.action = "drop_response"
                self.dropped_responses += 1
            return decision
        if (
            self.duplicate_probability > 0
            and float(self.rng.random()) < self.duplicate_probability
        ):
            decision.action = "duplicate"
            self.duplicated += 1
        if (
            self.delay_probability > 0
            and float(self.rng.random()) < self.delay_probability
        ):
            decision.delay = self.delay_seconds
            self.delayed += 1
        if decision.action is None and decision.delay == 0.0:
            return None
        return decision


class FaultInjector:
    """Drives a :class:`FaultPlan` against a running session."""

    def __init__(
        self, session: "Session", plan: FaultPlan, name: str = "chaos"
    ) -> None:
        self.session = session
        self.env = session.env
        self.plan = plan
        self.name = name
        self.rng = session.stable_rng(f"faults:{name}")
        self.message_faults = MessageFaults(self.rng)
        #: (time, event) pairs in application order, for assertions.
        self.applied: list[tuple[float, FaultEvent]] = []
        #: Per-tenant flood accounting: publishes the synthetic tenant
        #: landed vs. ones the service refused (admission or outage).
        self.flood_sent: dict[str, int] = {}
        self.flood_refused: dict[str, int] = {}
        self._process = None

    def start(self) -> None:
        """Attach the message gate and launch the timeline process."""
        self.session.cluster.network.message_faults = self.message_faults
        self._process = self.env.process(self._run(), name=f"faults:{self.name}")

    # -- timeline -----------------------------------------------------

    def _run(self) -> Generator[Event, None, None]:
        for event in self.plan.timeline():
            if event.time > self.env.now:
                yield self.env.timeout(event.time - self.env.now)
            self._apply(event)
            if event.duration is not None:
                self.env.process(
                    self._restore_later(event),
                    name=f"faults:{self.name}:restore",
                )

    def _restore_later(self, event: FaultEvent) -> Generator[Event, None, None]:
        yield self.env.timeout(event.duration)
        self._restore(event)

    # -- dispatch -----------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        self.applied.append((self.env.now, event))
        if event.kind == NODE_CRASH:
            self._resolve_node(event.node).fail()
        elif event.kind == NODE_SLOWDOWN:
            self._resolve_node(event.node).set_speed_factor(event.factor)
        elif event.kind == PARTITION:
            self.session.cluster.network.sever(*event.racks)
        elif event.kind == RPC_DROP:
            self.message_faults.drop_probability = event.probability
            if event.delay > 0:
                self.message_faults.drop_stall = event.delay
        elif event.kind == RPC_DELAY:
            self.message_faults.delay_probability = event.probability
            self.message_faults.delay_seconds = event.delay
        elif event.kind == RPC_DUPLICATE:
            self.message_faults.duplicate_probability = event.probability
        elif event.kind == SERVICE_OUTAGE:
            for server in self._service_servers(event):
                server.shutdown()
        elif event.kind == SHARD_OUTAGE:
            for server in self._shard_servers(event):
                server.shutdown()
        elif event.kind == TENANT_FLOOD:
            self.env.process(
                self._flood(event),
                name=f"faults:{self.name}:flood:{event.seq}",
            )
        elif event.kind == PROFILE_OUTAGE:
            self.session.profiles.set_available(False)
        self.session.tracer.record(
            "fault.inject",
            event.kind,
            seq=event.seq,
            target=self._target_label(event),
        )

    def _restore(self, event: FaultEvent) -> None:
        if event.kind == NODE_SLOWDOWN:
            self._resolve_node(event.node).set_speed_factor(1.0)
        elif event.kind == PARTITION:
            self.session.cluster.network.heal(*event.racks)
        elif event.kind == RPC_DROP:
            self.message_faults.drop_probability = 0.0
            self.message_faults.drop_stall = DEFAULT_DROP_STALL
        elif event.kind == RPC_DELAY:
            self.message_faults.delay_probability = 0.0
            self.message_faults.delay_seconds = 0.0
        elif event.kind == RPC_DUPLICATE:
            self.message_faults.duplicate_probability = 0.0
        elif event.kind == SERVICE_OUTAGE:
            for server in self._service_servers(event):
                server.restart()
        elif event.kind == SHARD_OUTAGE:
            for server in self._shard_servers(event):
                server.restart()
        # TENANT_FLOOD needs no restore action: the flood process
        # stops itself when the window closes.
        elif event.kind == PROFILE_OUTAGE:
            self.session.profiles.set_available(True)
        self.session.tracer.record(
            "fault.restore",
            event.kind,
            seq=event.seq,
            target=self._target_label(event),
        )

    # -- helpers ------------------------------------------------------

    def _resolve_node(self, ref: "int | str | None") -> "Node":
        cluster = self.session.cluster
        if isinstance(ref, int):
            return cluster.nodes[ref]
        if isinstance(ref, str):
            return cluster.node_by_name(ref)
        raise TypeError(f"cannot resolve node reference {ref!r}")

    def _service_servers(self, event: FaultEvent):
        """Registered servers a service outage touches.

        Resolved at apply time through the session's RPC registry, so
        the injector needs no handle on the SOMA deployment itself.
        """
        registry = self.session.rpc_registry
        prefix = f"{event.registry_prefix}."
        if event.namespaces is not None:
            names = [f"{prefix}{ns}" for ns in event.namespaces]
        else:
            names = [n for n in sorted(registry.names()) if n.startswith(prefix)]
        servers = [registry.try_lookup(name) for name in names]
        return [s for s in servers if s is not None]

    def _shard_servers(self, event: FaultEvent):
        """Registered servers of one shard instance.

        Sharded deployments register ``<prefix>.<instance>.<namespace>``;
        scoping by the instance segment keeps the blast radius to one
        shard by construction.
        """
        registry = self.session.rpc_registry
        prefix = f"{event.registry_prefix}.{event.shard}."
        if event.namespaces is not None:
            names = [f"{prefix}{ns}" for ns in event.namespaces]
        else:
            names = [n for n in sorted(registry.names()) if n.startswith(prefix)]
        servers = [registry.try_lookup(name) for name in names]
        return [s for s in servers if s is not None]

    def _flood(self, event: FaultEvent) -> Generator[Event, None, None]:
        """Synthetic-tenant overload: hammer one shard's ingest path.

        A raw RPC client (tenant-stamped, no retry) publishes tiny
        trees round-robin over the shard's namespace servers at
        ``event.rate`` publishes/s until the window closes.  Refusals
        (admission or outage) are expected — they're the point — so
        they only increment counters; :class:`~repro.sim.core.Interrupt`
        still propagates.
        """
        from ..conduit import Node as ConduitNode
        from ..messaging.protocol import RPCError
        from ..messaging.rpc import RPCClient

        servers = self._shard_servers(event)
        if not servers:
            return
        tenant = event.tenant or "flood"
        client = RPCClient(
            self.env,
            self.session.cluster.network,
            name=f"flood:{tenant}:{event.seq}",
            node=None,
            rng=self.session.stable_rng(f"faults:flood:{event.seq}"),
            component="chaos-flood",
            tenant=tenant,
        )
        deadline = self.env.now + (event.duration or 0.0)
        period = 1.0 / event.rate
        sent = 0
        while self.env.now < deadline:
            server = servers[sent % len(servers)]
            tree = ConduitNode()
            tree[f"FLOOD/{tenant}/seq"] = sent
            sent += 1
            try:
                yield from client.call(
                    server, "publish", body=tree, payload_bytes=tree.nbytes()
                )
                self.flood_sent[tenant] = self.flood_sent.get(tenant, 0) + 1
            except RPCError:
                self.flood_refused[tenant] = (
                    self.flood_refused.get(tenant, 0) + 1
                )
            remaining = deadline - self.env.now
            if remaining <= 0:
                break
            yield self.env.timeout(min(period, remaining))

    @staticmethod
    def _target_label(event: FaultEvent) -> str:
        if event.node is not None:
            return str(event.node)
        if event.racks is not None:
            return f"racks:{event.racks[0]}-{event.racks[1]}"
        if event.kind == SERVICE_OUTAGE:
            scope = ",".join(event.namespaces) if event.namespaces else "*"
            return f"{event.registry_prefix}:{scope}"
        if event.kind == SHARD_OUTAGE:
            return f"{event.registry_prefix}:{event.shard}"
        if event.kind == TENANT_FLOOD:
            return (
                f"{event.registry_prefix}:{event.shard}"
                f"<-{event.tenant}@{event.rate:g}/s"
            )
        if event.probability > 0:
            return f"p={event.probability:g}"
        return ""
