"""Declarative fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultEvent` entries — "at
t=120 crash node cn0002", "from t=300 for 60 s drop 30 % of RPC
messages" — that a :class:`~repro.faults.injector.FaultInjector`
applies against a running session.  Plans are plain data: they can be
built once and replayed against any seed, and two runs with the same
(seed, plan) pair produce bit-identical traces.

Fault classes
-------------
==================  =============================================  ========
kind                effect                                         windowed
==================  =============================================  ========
``node_crash``      node fails; resident ranks die                 no
``node_slowdown``   node runs at ``factor`` of nominal speed       yes
``partition``       traffic between two racks blocked              yes
``rpc_drop``        fraction of RPC messages lost in transit       yes
``rpc_delay``       fraction of RPC messages delayed               yes
``rpc_duplicate``   fraction of RPC requests delivered twice       yes
``service_outage``  SOMA namespace servers shut down               yes
``profile_outage``  RP profile store rejects reads/writes          yes
``shard_outage``    one shard instance's servers shut down         yes
``tenant_flood``    synthetic tenant floods a shard's ingest       yes
==================  =============================================  ========

Windowed faults with a ``duration`` are automatically restored when the
window closes (slowdown reset, partition healed, probabilities zeroed,
servers restarted, store re-enabled).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "NODE_CRASH",
    "NODE_SLOWDOWN",
    "PARTITION",
    "RPC_DROP",
    "RPC_DELAY",
    "RPC_DUPLICATE",
    "SERVICE_OUTAGE",
    "PROFILE_OUTAGE",
    "SHARD_OUTAGE",
    "TENANT_FLOOD",
    "FAULT_KINDS",
    "WINDOWED_KINDS",
]

NODE_CRASH = "node_crash"
NODE_SLOWDOWN = "node_slowdown"
PARTITION = "partition"
RPC_DROP = "rpc_drop"
RPC_DELAY = "rpc_delay"
RPC_DUPLICATE = "rpc_duplicate"
SERVICE_OUTAGE = "service_outage"
PROFILE_OUTAGE = "profile_outage"
SHARD_OUTAGE = "shard_outage"
TENANT_FLOOD = "tenant_flood"

FAULT_KINDS: tuple[str, ...] = (
    NODE_CRASH,
    NODE_SLOWDOWN,
    PARTITION,
    RPC_DROP,
    RPC_DELAY,
    RPC_DUPLICATE,
    SERVICE_OUTAGE,
    PROFILE_OUTAGE,
    SHARD_OUTAGE,
    TENANT_FLOOD,
)

#: Kinds that can carry a duration and are restored at window close.
WINDOWED_KINDS: frozenset[str] = frozenset(FAULT_KINDS) - {NODE_CRASH}


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault (see the table in the module docstring)."""

    time: float
    kind: str
    #: Insertion index; orders simultaneous events deterministically.
    seq: int = 0
    #: Window length for restorable faults; None = until end of run.
    duration: float | None = None
    #: Target node (index or name) for node faults.
    node: int | str | None = None
    #: Rack pair for partitions.
    racks: tuple[int, int] | None = None
    #: Speed factor for slowdowns (< 1 slows the node down).
    factor: float = 1.0
    #: Per-message probability for rpc_* faults.
    probability: float = 0.0
    #: Extra latency (rpc_delay) or client stall before a dropped
    #: message is declared lost (rpc_drop; 0 keeps the gate's default).
    delay: float = 0.0
    #: Namespaces hit by a service outage; None = all under the prefix.
    namespaces: tuple[str, ...] | None = None
    #: Registry prefix of the service to take down.
    registry_prefix: str = "soma"
    #: Target shard instance (e.g. "s01") for shard_outage / the shard
    #: a tenant_flood aims its publishes at.
    shard: str | None = None
    #: Synthetic tenant name used by tenant_flood publishes.
    tenant: str | None = None
    #: Flood intensity, publishes per second per namespace.
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive (or None)")
        if self.duration is not None and self.kind not in WINDOWED_KINDS:
            raise ValueError(f"{self.kind} cannot carry a duration")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if self.kind == NODE_CRASH and self.node is None:
            raise ValueError("node_crash needs a target node")
        if self.kind == NODE_SLOWDOWN and self.node is None:
            raise ValueError("node_slowdown needs a target node")
        if self.kind == PARTITION:
            if self.racks is None or len(self.racks) != 2:
                raise ValueError("partition needs a (rack_a, rack_b) pair")
            if self.racks[0] == self.racks[1]:
                raise ValueError("partition racks must differ")
        if self.kind == SHARD_OUTAGE and self.shard is None:
            raise ValueError("shard_outage needs a target shard instance")
        if self.kind == TENANT_FLOOD:
            if self.shard is None:
                raise ValueError("tenant_flood needs a target shard instance")
            if self.tenant is None:
                raise ValueError("tenant_flood needs a tenant name")
            if self.rate <= 0:
                raise ValueError("tenant_flood needs a positive rate")
            if self.duration is None or not math.isfinite(self.duration):
                raise ValueError("tenant_flood needs a finite duration")


class FaultPlan:
    """An ordered collection of fault events (chainable builder)."""

    def __init__(self, events: "tuple[FaultEvent, ...] | list[FaultEvent]" = ()) -> None:
        self._events: list[FaultEvent] = list(events)

    # -- builders -----------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    def _add(self, **kwargs) -> "FaultPlan":
        return self.add(FaultEvent(seq=len(self._events), **kwargs))

    def node_crash(self, at: float, node: int | str) -> "FaultPlan":
        """Crash ``node`` at time ``at`` (terminal: no restore)."""
        return self._add(time=at, kind=NODE_CRASH, node=node)

    def node_slowdown(
        self,
        at: float,
        node: int | str,
        factor: float,
        duration: float | None = None,
    ) -> "FaultPlan":
        """Run ``node`` at ``factor`` of nominal speed for ``duration``."""
        return self._add(
            time=at, kind=NODE_SLOWDOWN, node=node, factor=factor, duration=duration
        )

    def partition(
        self,
        at: float,
        racks: tuple[int, int],
        duration: float | None = None,
    ) -> "FaultPlan":
        """Sever traffic between two racks, healing after ``duration``."""
        return self._add(
            time=at, kind=PARTITION, racks=tuple(racks), duration=duration
        )

    def rpc_drop(
        self,
        at: float,
        probability: float,
        duration: float | None = None,
        stall: float = 0.0,
    ) -> "FaultPlan":
        """Lose ``probability`` of RPC messages; ``stall`` is the client
        transport timeout charged before declaring a message lost."""
        return self._add(
            time=at,
            kind=RPC_DROP,
            probability=probability,
            duration=duration,
            delay=stall,
        )

    def rpc_delay(
        self,
        at: float,
        probability: float,
        delay: float,
        duration: float | None = None,
    ) -> "FaultPlan":
        """Add ``delay`` seconds to ``probability`` of RPC messages."""
        return self._add(
            time=at,
            kind=RPC_DELAY,
            probability=probability,
            delay=delay,
            duration=duration,
        )

    def rpc_duplicate(
        self,
        at: float,
        probability: float,
        duration: float | None = None,
    ) -> "FaultPlan":
        """Deliver ``probability`` of RPC requests twice."""
        return self._add(
            time=at, kind=RPC_DUPLICATE, probability=probability, duration=duration
        )

    def service_outage(
        self,
        at: float,
        duration: float | None = None,
        namespaces: "tuple[str, ...] | None" = None,
        registry_prefix: str = "soma",
    ) -> "FaultPlan":
        """Shut the SOMA namespace servers down, restarting after
        ``duration`` (None leaves them down for the rest of the run)."""
        return self._add(
            time=at,
            kind=SERVICE_OUTAGE,
            duration=duration,
            namespaces=tuple(namespaces) if namespaces is not None else None,
            registry_prefix=registry_prefix,
        )

    def profile_outage(
        self, at: float, duration: float | None = None
    ) -> "FaultPlan":
        """Make the RP profile store reject reads/writes for a window."""
        return self._add(time=at, kind=PROFILE_OUTAGE, duration=duration)

    def shard_outage(
        self,
        at: float,
        shard: str,
        duration: float | None = None,
        namespaces: "tuple[str, ...] | None" = None,
        registry_prefix: str = "soma",
    ) -> "FaultPlan":
        """Shut one shard instance's namespace servers down.

        The facility degradation contract says the blast radius stays
        inside the shard: tenants routed elsewhere keep publishing,
        tenants on ``shard`` degrade (drop + gap) and recover when the
        window closes.
        """
        return self._add(
            time=at,
            kind=SHARD_OUTAGE,
            shard=shard,
            duration=duration,
            namespaces=tuple(namespaces) if namespaces is not None else None,
            registry_prefix=registry_prefix,
        )

    def tenant_flood(
        self,
        at: float,
        shard: str,
        tenant: str,
        rate: float,
        duration: float,
        namespaces: "tuple[str, ...] | None" = None,
        registry_prefix: str = "soma",
    ) -> "FaultPlan":
        """Flood ``shard`` with ``rate`` publishes/s from a synthetic
        ``tenant`` for ``duration`` seconds (admission-control chaos:
        the flooding tenant should be throttled, co-resident tenants
        should keep their budgets)."""
        return self._add(
            time=at,
            kind=TENANT_FLOOD,
            shard=shard,
            tenant=tenant,
            rate=rate,
            duration=duration,
            namespaces=tuple(namespaces) if namespaces is not None else None,
            registry_prefix=registry_prefix,
        )

    # -- access -------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return tuple(self._events)

    def timeline(self) -> list[FaultEvent]:
        """Events in deterministic application order."""
        return sorted(self._events, key=lambda e: (e.time, e.seq))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.timeline())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(f"{e.kind}@{e.time:g}" for e in self.timeline())
        return f"<FaultPlan [{kinds}]>"
