"""Bounded retry with deterministic exponential backoff.

The robustness counterpart of the fault model: every RPC-shaped call in
the stack (SOMA publishes/queries, RP profile writes) can be wrapped in
a :class:`RetryPolicy` that retries *transient* failures — timeouts,
unavailable services — a bounded number of times, within a per-call
deadline, with exponential backoff whose jitter is drawn from the sim
RNG so two runs with the same seed retry at identical instants.

Design constraints (enforced by the property tests):

* the number of attempts never exceeds ``max_attempts``;
* total time spent (attempts + backoff) never exceeds ``deadline``;
* the backoff schedule is monotone non-decreasing and capped at
  ``max_delay``;
* identical RNG seeds yield identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Generator

from ..sim.core import Environment, Event
from ..sim.events import AnyOf, TimeoutExpired
from ..messaging.protocol import RPCError, RPCTimeout, ServiceUnavailable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["RetryPolicy", "RetryExhausted", "TRANSIENT_ERRORS"]

#: Failure classes a retry policy considers transient by default.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    RPCTimeout,
    ServiceUnavailable,
    TimeoutExpired,
)


class RetryExhausted(RPCError):
    """All attempts failed (or the deadline ran out).

    Subclasses :class:`RPCError` so existing ``except RPCError``
    degradation paths treat an exhausted retry like any other failed
    call.  ``last_error`` holds the failure of the final attempt.
    """

    def __init__(
        self, message: str, attempts: int, last_error: BaseException | None
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded attempts + exponential backoff + per-call deadline."""

    #: Total attempts, including the first one (>= 1).
    max_attempts: int = 4
    #: Backoff before the first retry, in simulated seconds.
    base_delay: float = 0.5
    #: Growth factor between consecutive backoffs (>= 1).
    multiplier: float = 2.0
    #: Upper bound on any single backoff delay.
    max_delay: float = 30.0
    #: Jitter fraction: each delay is stretched by up to ``jitter`` of
    #: itself, drawn deterministically from the caller's sim RNG.
    jitter: float = 0.1
    #: Wall-clock budget for the whole call (attempts + backoff), or
    #: None for unbounded.
    deadline: float | None = 60.0
    #: Budget for a single attempt, or None to rely on the deadline.
    timeout: float | None = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def with_updates(self, **kwargs: Any) -> "RetryPolicy":
        return replace(self, **kwargs)

    # -- schedule -----------------------------------------------------

    def schedule(
        self, rng: "np.random.Generator | None" = None
    ) -> tuple[float, ...]:
        """The backoff delays between consecutive attempts.

        Returns ``max_attempts - 1`` delays.  Jitter is additive-upward
        and the running maximum is taken, so the schedule is monotone
        non-decreasing regardless of the draws; every delay is capped
        at ``max_delay``.  With the same RNG state the schedule is
        bit-identical.
        """
        delays: list[float] = []
        previous = 0.0
        for attempt in range(max(0, self.max_attempts - 1)):
            raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
            if rng is not None and self.jitter > 0:
                raw = min(self.max_delay, raw * (1.0 + self.jitter * float(rng.random())))
            previous = max(previous, raw)
            delays.append(previous)
        return tuple(delays)

    # -- execution ----------------------------------------------------

    def execute(
        self,
        env: Environment,
        make_attempt: Callable[[], Generator[Event, Any, Any]],
        rng: "np.random.Generator | None" = None,
        retry_on: tuple[type[BaseException], ...] = TRANSIENT_ERRORS,
        on_retry: Callable[[int, float, BaseException], None] | None = None,
        name: str = "call",
    ) -> Generator[Event, Any, Any]:
        """Run ``make_attempt()`` under this policy (process generator).

        ``make_attempt`` must return a *fresh* generator per attempt.
        Non-transient failures propagate immediately; transient ones are
        retried until attempts or the deadline run out, after which
        :class:`RetryExhausted` (chaining the last error) is raised.
        ``on_retry(attempt_index, delay, error)`` fires before each
        backoff sleep — the hook metrics layers use to count retries.
        """
        start = env.now
        schedule: tuple[float, ...] | None = None
        last_error: BaseException | None = None
        attempts = 0
        for attempt in range(self.max_attempts):
            remaining: float | None = None
            if self.deadline is not None:
                remaining = self.deadline - (env.now - start)
                if remaining <= 0:
                    break
            per_attempt = self.timeout
            if per_attempt is None:
                per_attempt = remaining
            elif remaining is not None:
                per_attempt = min(per_attempt, remaining)
            attempts += 1
            # The race below is with_timeout() inlined: identical event
            # structure (child process, clock, AnyOf — in that order),
            # but without the extra delegating generator frame, which
            # on the persist/RPC hot path is one frame per attempt.
            try:
                child = env.process(make_attempt(), name=f"{name}#{attempt}")
                if per_attempt is None:
                    result = yield child
                    return result
                clock = env.timeout(per_attempt)
                try:
                    # A failed child fails the AnyOf, re-raising here.
                    yield AnyOf(env, [child, clock])
                finally:
                    if child.triggered:
                        # Child finished first: tombstone the losing
                        # clock so it stops occupying the pending set.
                        clock.cancel_scheduled()
                if child.triggered:
                    if child.ok:
                        return child.value
                    raise child.value
                child.interrupt("timeout")
                raise TimeoutExpired(
                    f"{name}#{attempt}: no result within {per_attempt}s",
                    per_attempt,
                )
            except retry_on as exc:
                last_error = exc
            if attempt + 1 >= self.max_attempts:
                break
            if schedule is None:
                # Drawn lazily: a call that never fails consumes no RNG.
                schedule = self.schedule(rng)
            delay = schedule[attempt]
            if self.deadline is not None:
                budget = self.deadline - (env.now - start)
                if budget <= 0:
                    break
                delay = min(delay, budget)
            if on_retry is not None:
                on_retry(attempt, delay, last_error)
            if delay > 0:
                yield env.timeout(delay)
        raise RetryExhausted(
            f"{name}: gave up after {attempts} attempt(s) "
            f"in {env.now - start:.3f}s",
            attempts=attempts,
            last_error=last_error,
        ) from last_error
