"""Deterministic *process-level* fault injection for sweep workers.

The simulation-level faults in :mod:`repro.faults.plan` run on the
virtual clock; sweeps add a second failure domain — the host processes
executing cells.  A :class:`WorkerFaultSpec` declares, as plain data,
that the worker picking up a given cell must die:

* ``mode="exception"`` — raise :class:`WorkerFault` (an ordinary
  worker crash the pool survives; the cell is recorded as failed);
* ``mode="sigkill"`` — ``SIGKILL`` the worker's own process (the hard
  variant: the whole pool tears down mid-sweep, exactly like an OOM
  kill or a node reaping a job).

The spec travels through the ``REPRO_SWEEP_FAULT`` environment variable
so it reaches pool workers regardless of start method.  Faults fire
*once*: before firing, the injector exclusively creates ``once_path``
on disk, so a resumed sweep (same environment, same spec) finds the
marker and runs clean — which is what the crash/resume battery relies
on to prove recovery without un-arming the fault.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass

__all__ = ["WorkerFault", "WorkerFaultSpec", "ENV_VAR", "check_worker_fault"]

ENV_VAR = "REPRO_SWEEP_FAULT"

_MODES = ("exception", "sigkill")


class WorkerFault(RuntimeError):
    """An injected worker-process fault (the soft, catchable variant)."""


@dataclass(frozen=True, slots=True)
class WorkerFaultSpec:
    """Kill the worker that starts executing ``cell`` (fire once)."""

    cell: str
    mode: str = "exception"
    #: Marker file created (exclusively) before firing; an existing
    #: marker disarms the fault, making the injection one-shot even
    #: across a resume with the same environment.
    once_path: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown worker-fault mode {self.mode!r}")

    def to_env(self) -> str:
        return json.dumps(
            {"cell": self.cell, "mode": self.mode, "once_path": self.once_path}
        )

    @classmethod
    def from_env(cls, value: str) -> "WorkerFaultSpec":
        data = json.loads(value)
        return cls(
            cell=data["cell"],
            mode=data.get("mode", "exception"),
            once_path=data.get("once_path"),
        )


def _spec_from_environ() -> WorkerFaultSpec | None:
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    return WorkerFaultSpec.from_env(raw)


def check_worker_fault(cell_key: str) -> None:
    """Fire the armed worker fault if it targets ``cell_key``.

    Called by sweep workers when a cell starts executing, so the death
    lands mid-sweep with the cell claimed but not journalled.
    """
    spec = _spec_from_environ()
    if spec is None or spec.cell != cell_key:
        return
    if spec.once_path is not None:
        try:
            # Exclusive create: exactly one worker wins the right to
            # fire, and a pre-existing marker means "already fired".
            with open(spec.once_path, "x", encoding="utf-8") as marker:
                marker.write(f"worker fault fired for cell {cell_key}\n")
        except FileExistsError:
            return
    if spec.mode == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise WorkerFault(f"injected worker fault while executing cell {cell_key!r}")
