"""Communication substrates: ZeroMQ-style queues and Mochi-style RPC."""

from .protocol import (
    AdmissionRejected,
    Message,
    RPCError,
    RPCRequest,
    RPCResponse,
    RPCTimeout,
    ServiceUnavailable,
)
from .queues import ComponentQueue, QueueRegistry
from .rpc import RPCClient, RPCRegistry, RPCServer, ServerStats

__all__ = [
    "AdmissionRejected",
    "ComponentQueue",
    "Message",
    "QueueRegistry",
    "RPCClient",
    "RPCError",
    "RPCRegistry",
    "RPCRequest",
    "RPCResponse",
    "RPCServer",
    "RPCTimeout",
    "ServerStats",
    "ServiceUnavailable",
]
