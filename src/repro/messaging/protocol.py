"""Message envelopes shared by the queue and RPC layers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Message",
    "RPCRequest",
    "RPCResponse",
    "RPCError",
    "RPCTimeout",
    "ServiceUnavailable",
    "AdmissionRejected",
]

_msg_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """A message on a component queue (RP's ZeroMQ-style pipes)."""

    topic: str
    body: Any
    sender: str = ""
    sent_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_msg_ids))
    #: Telemetry baggage (a SpanContext) stamped at send time; pure
    #: data, never consulted by the simulation itself.
    ctx: Any = None


@dataclass(slots=True)
class RPCRequest:
    """A remote procedure call in flight."""

    method: str
    payload_bytes: float
    body: Any
    client: str
    sent_at: float
    uid: int = field(default_factory=lambda: next(_msg_ids))
    #: Telemetry baggage (a SpanContext); see :class:`Message`.
    ctx: Any = None
    #: Tenant the calling client acts for; admission control keys its
    #: per-tenant token buckets on this.
    tenant: str = "default"


@dataclass(slots=True)
class RPCResponse:
    """The reply to one :class:`RPCRequest`."""

    request_uid: int
    ok: bool
    body: Any
    served_by: str = ""
    service_time: float = 0.0
    queue_time: float = 0.0


class RPCError(Exception):
    """Raised on the client when a call fails (bad method, dead server)."""


class RPCTimeout(RPCError):
    """No response arrived within the call deadline.

    Covers dropped requests/responses, partitions that outlast the
    per-call timeout, and servers too slow to answer.  Transient:
    retry policies treat it as retriable.
    """


class ServiceUnavailable(RPCError):
    """The target service is not accepting calls (down or restarting).

    Transient: the service may come back, so retry policies treat it
    as retriable.  Also used for the RP profile store while its backing
    file system is injected as unavailable.
    """


class AdmissionRejected(RPCError):
    """The server refused the call before queueing it (backpressure).

    Deliberately *not* transient: retrying an over-budget tenant's
    publish immediately would defeat the admission controller, so
    retry policies surface the rejection at once and the client's
    degradation path (drop or summarize the sample, record a gap)
    takes over.  The next monitoring period gets a fresh token draw.
    """
