"""ZeroMQ-style component queues.

RP's components "exchange data via queues implemented with ZeroMQ —
each component gets its inputs via a queue and pushes its output to
another component's queue" (paper Sec 2.3.1).  A :class:`ComponentQueue`
is a named FIFO with a small configurable enqueue latency, which is all
the semantics RP needs from ZeroMQ here.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim.core import Environment, Event, Timeout
from ..sim.stores import Store
from .protocol import Message

__all__ = ["ComponentQueue", "QueueRegistry"]


class ComponentQueue:
    """Named FIFO between two components with per-hop latency."""

    def __init__(
        self, env: Environment, name: str, latency: float = 1e-4
    ) -> None:
        self.env = env
        self.name = name
        self.latency = latency
        self._store = Store(env)
        self.enqueued = 0
        self.dequeued = 0

    def put(self, topic: str, body: Any, sender: str = "") -> None:
        """Fire-and-forget enqueue (arrives ``latency`` later)."""
        msg = Message(topic=topic, body=body, sender=sender, sent_at=self.env.now)
        tel = self.env._telemetry
        if tel is not None:
            msg.ctx = tel.current()
        self.enqueued += 1
        # The backing store is unbounded, so delivery cannot block: a
        # plain timer callback replaces a full delivery process (two
        # heap events per message instead of four, no generator).
        timer = Timeout(self.env, self.latency)
        timer.callbacks.append(lambda _event, msg=msg: self._store.put(msg))

    def get(self) -> Generator[Event, None, Message]:
        """Wait for the next message (process generator)."""
        msg: Message = yield self._store.get()
        self.dequeued += 1
        return msg

    def __len__(self) -> int:
        return len(self._store)


class QueueRegistry:
    """All queues of one RP session, addressable by name."""

    def __init__(self, env: Environment, latency: float = 1e-4) -> None:
        self.env = env
        self.latency = latency
        self._queues: dict[str, ComponentQueue] = {}

    def queue(self, name: str) -> ComponentQueue:
        q = self._queues.get(name)
        if q is None:
            q = ComponentQueue(self.env, name, self.latency)
            self._queues[name] = q
        return q

    def names(self) -> list[str]:
        return list(self._queues)
