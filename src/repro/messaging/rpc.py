"""Mochi/Margo-style RPC engine on the simulated fabric.

SOMA's service implementation builds on the Mochi microservice
framework, whose RPCs ride RDMA-capable transports (paper Sec 2.2).
The model here preserves what the overhead experiments exercise:

* the request payload crosses the shared :class:`~repro.platform.network.Network`;
* the server has a fixed number of *ranks* (worker processes) — a
  request waits for a free rank, then occupies it for a service time
  proportional to the payload;
* the (small) response crosses the fabric back.

Server-side service time is also charged as CPU work on the node the
server rank lives on, so SOMA service ranks show up in /proc and in
the shared-node contention domain — this is exactly what makes the
"shared" configurations of Figs 10/11 interesting.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Generator

from ..sim.core import Environment, Event, Interrupt
from ..sim.events import TimeoutExpired, with_timeout
from ..sim.resources import Resource
from ..platform.network import Network
from ..platform.node import Node, NodeFailure
from .protocol import (
    AdmissionRejected,
    RPCError,
    RPCRequest,
    RPCResponse,
    RPCTimeout,
    ServiceUnavailable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..faults.retry import RetryPolicy

__all__ = ["RPCServer", "RPCClient", "RPCRegistry", "ServerStats"]

#: Fallback per-call CPU service time (seconds) for an empty payload.
DEFAULT_BASE_SERVICE_TIME = 2e-4
#: Fallback incremental CPU time per payload byte.
DEFAULT_PER_BYTE_SERVICE_TIME = 2e-9
#: Size of a response envelope in bytes.
RESPONSE_BYTES = 256.0

#: Default accounting-window length for :class:`ServerStats`, seconds.
DEFAULT_STATS_WINDOW = 60.0


class ServerStats:
    """Aggregate + windowed accounting for one RPC server.

    Lifetime counters (``calls``/``bytes``/``busy_time``/``queue_time``)
    answer "how much work did this server do overall"; the *windowed*
    accounting answers "how bad did its worst burst get".  A long run
    dilutes a lifetime mean — ten minutes of saturation disappear into
    hours of idle publishing — so detectors that look for queueing
    bursts read :attr:`peak_window_queue_time` instead: the largest
    per-window mean queue wait over fixed ``window_seconds`` windows.

    Window rolling is pure host-side arithmetic driven by the call
    completions themselves (no kernel events), so arming it never
    perturbs a run.
    """

    __slots__ = (
        "calls",
        "bytes",
        "busy_time",
        "queue_time",
        "errors",
        "rejections",
        "window_seconds",
        "windows_closed",
        "peak_window_queue_time",
        "peak_window_calls",
        "_window_start",
        "_window_calls",
        "_window_queue_time",
    )

    def __init__(self, window_seconds: float = DEFAULT_STATS_WINDOW) -> None:
        self.calls = 0
        self.bytes = 0.0
        self.busy_time = 0.0
        self.queue_time = 0.0
        self.errors = 0
        #: Calls refused by the admission gate before queueing.
        self.rejections = 0
        self.window_seconds = window_seconds
        #: Windows finalized so far (only windows that saw calls).
        self.windows_closed = 0
        #: Worst per-window mean queue wait seen so far.
        self.peak_window_queue_time = 0.0
        #: Calls in the busiest window (by call count).
        self.peak_window_calls = 0
        self._window_start: float | None = None
        self._window_calls = 0
        self._window_queue_time = 0.0

    @property
    def mean_queue_time(self) -> float:
        return self.queue_time / self.calls if self.calls else 0.0

    @property
    def worst_window_queue_time(self) -> float:
        """Peak windowed mean queue wait, including the open window.

        Zero-call-safe: a server that never served a call reports 0.
        """
        current = (
            self._window_queue_time / self._window_calls
            if self._window_calls
            else 0.0
        )
        return max(self.peak_window_queue_time, current)

    def note_call(
        self, now: float, queue_time: float, busy_time: float, nbytes: float
    ) -> None:
        """Fold one served call into lifetime + windowed accounting."""
        self.calls += 1
        self.bytes += nbytes
        self.busy_time += busy_time
        self.queue_time += queue_time
        if self._window_start is None:
            self._window_start = now
        elif now - self._window_start >= self.window_seconds:
            self._close_window()
            # Realign on the fixed grid anchored at the first call, so
            # two identical runs roll windows at identical instants.
            elapsed = now - self._window_start
            self._window_start += self.window_seconds * (
                elapsed // self.window_seconds
            )
        self._window_calls += 1
        self._window_queue_time += queue_time

    def _close_window(self) -> None:
        if not self._window_calls:
            return
        mean = self._window_queue_time / self._window_calls
        self.peak_window_queue_time = max(self.peak_window_queue_time, mean)
        self.peak_window_calls = max(self.peak_window_calls, self._window_calls)
        self.windows_closed += 1
        self._window_calls = 0
        self._window_queue_time = 0.0

    # -- snapshot/interval accounting --------------------------------

    def snapshot(self) -> dict:
        """Plain-data copy of the lifetime counters (for deltas)."""
        return {
            "calls": self.calls,
            "bytes": self.bytes,
            "busy_time": self.busy_time,
            "queue_time": self.queue_time,
            "errors": self.errors,
            "rejections": self.rejections,
        }

    @staticmethod
    def interval(before: dict, after: dict) -> dict:
        """Deltas between two snapshots, with zero-call-safe means."""
        delta = {key: after[key] - before[key] for key in after}
        calls = delta["calls"]
        delta["mean_queue_time"] = (
            delta["queue_time"] / calls if calls else 0.0
        )
        delta["mean_busy_time"] = delta["busy_time"] / calls if calls else 0.0
        return delta


class RPCServer:
    """An addressable RPC endpoint with a pool of worker ranks.

    Parameters
    ----------
    node:
        The compute node hosting the server ranks; service time is
        charged there as CPU work so the ranks contend realistically.
    ranks:
        Number of concurrent worker processes.
    """

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        network: Network,
        node: Node | None,
        name: str,
        ranks: int = 1,
        base_service_time: float = DEFAULT_BASE_SERVICE_TIME,
        per_byte_service_time: float = DEFAULT_PER_BYTE_SERVICE_TIME,
        component: str = "rpc-server",
        admission: "Callable[[RPCRequest], bool] | None" = None,
    ) -> None:
        if ranks <= 0:
            raise ValueError("server needs at least one rank")
        self.env = env
        self.network = network
        self.node = node
        self.name = name
        #: Telemetry track this server's serve spans appear on.
        self.component = component
        self.address = f"ofi+verbs://{name}.{next(RPCServer._ids)}"
        self.ranks = ranks
        self.base_service_time = base_service_time
        self.per_byte_service_time = per_byte_service_time
        self._workers = Resource(env, capacity=ranks)
        self._handlers: dict[str, Callable[[RPCRequest], Any]] = {}
        self.stats = ServerStats()
        self.alive = True
        #: Optional admission gate consulted *before* a request queues
        #: for a rank.  Returning False rejects the call with
        #: :class:`AdmissionRejected` at wire-RTT cost — the request
        #: never holds a worker slot and never charges service time, so
        #: backpressure stays cheap for the server under overload.
        self.admission = admission

    def register(self, method: str, handler: Callable[[RPCRequest], Any]) -> None:
        """Expose ``handler`` under ``method``."""
        self._handlers[method] = handler

    def shutdown(self) -> None:
        """Stop accepting calls (in-flight calls complete)."""
        self.alive = False

    def restart(self) -> None:
        """Come back up after an outage; handlers and state survive.

        Mirrors an RP service-task restart on the same address: the
        registry entry stays valid, so clients holding the old handle
        reconnect transparently on their next retry.
        """
        self.alive = True

    def service_time_for(self, payload_bytes: float) -> float:
        return self.base_service_time + payload_bytes * self.per_byte_service_time

    def _serve(
        self, request: RPCRequest
    ) -> Generator[Event, None, RPCResponse]:
        """Server-side handling: queue for a rank, work, reply."""
        tel = self.env._telemetry
        if tel is None:
            # Telemetry off: no wrapper frame on the hot path.
            return self._serve_inner(request)
        return self._serve_traced(tel, request)

    def _serve_traced(
        self, tel: Any, request: RPCRequest
    ) -> Generator[Event, None, RPCResponse]:
        # The request envelope carries the caller's context across the
        # simulated wire, so server work joins the caller's trace even
        # though no process ancestry links them.
        span = tel.start_span(
            f"rpc.serve:{request.method}",
            component=self.component,
            parent=request.ctx,
            activate=True,
            server=self.name,
        )
        try:
            response = yield from self._serve_inner(request)
            return response
        finally:
            tel.end_span(span)

    def _serve_inner(
        self, request: RPCRequest
    ) -> Generator[Event, None, RPCResponse]:
        if not self.alive:
            # Arrived after a shutdown (in-flight during an outage).
            self.stats.errors += 1
            raise ServiceUnavailable(f"server {self.name} is shut down")
        if self.admission is not None and not self.admission(request):
            self.stats.rejections += 1
            raise AdmissionRejected(
                f"server {self.name} rejected {request.method!r} "
                f"from tenant {request.tenant!r} (over budget)"
            )
        arrival = self.env.now
        tel = self.env._telemetry
        prov = tel.provenance if tel is not None else None
        with self._workers.request() as slot:
            yield slot
            queue_time = self.env.now - arrival
            if prov is not None:
                prov.note_rpc_serve(
                    request.uid, self.name, arrival, self.env.now
                )
            handler = self._handlers.get(request.method)
            if handler is None:
                self.stats.errors += 1
                return RPCResponse(
                    request_uid=request.uid,
                    ok=False,
                    body=RPCError(f"no such method {request.method!r}"),
                    served_by=self.name,
                    queue_time=queue_time,
                )
            service_time = self.service_time_for(request.payload_bytes)
            start = self.env.now
            try:
                if self.node is not None and service_time > 0:
                    act = self.node.run_compute(
                        cores=1,
                        work=service_time * self.node.spec.core_speed,
                        mem_intensity=0.2,
                        tag=f"rpc:{self.name}",
                    )
                    yield act.done
                elif service_time > 0:
                    yield self.env.timeout(service_time)
            except NodeFailure as exc:
                # The hosting node died mid-service: to the caller this
                # is an outage, not a handler bug.
                self.stats.errors += 1
                raise ServiceUnavailable(
                    f"server {self.name} lost its node: {exc}"
                ) from exc
            try:
                body = handler(request)
                ok = True
            except Interrupt:
                # No yield inside this try, so the kernel cannot deliver
                # cancellation here — but an Interrupt raised through a
                # nested frame is still cancellation and must propagate
                # rather than become an error response.
                raise
            except Exception as exc:  # handler bug → error response
                body = exc
                ok = False
                self.stats.errors += 1
            elapsed = self.env.now - start
            self.stats.note_call(
                self.env.now, queue_time, elapsed, request.payload_bytes
            )
            return RPCResponse(
                request_uid=request.uid,
                ok=ok,
                body=body,
                served_by=self.name,
                service_time=elapsed,
                queue_time=queue_time,
            )


class RPCClient:
    """Client stub: translates API calls into simulated RPCs.

    Mirrors the paper's client stub, which "runs within the address
    space of the component being instrumented and requires no
    additional computational resources"; the optional ``node`` lets the
    *standalone-binary* variant charge its serialization CPU cost.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        name: str,
        node: Node | None = None,
        serialize_cost_per_byte: float = 1e-9,
        rng: "np.random.Generator | None" = None,
        component: str = "rpc-client",
        tenant: str = "default",
    ) -> None:
        self.env = env
        self.network = network
        self.name = name
        self.node = node
        #: Tenant stamped on every outgoing request; server-side
        #: admission control budgets per tenant.
        self.tenant = tenant
        #: Telemetry track this client's attempt spans appear on.
        self.component = component
        self.serialize_cost_per_byte = serialize_cost_per_byte
        #: Source of deterministic backoff jitter for retrying calls.
        self.rng = rng
        self.calls = 0
        self.failures = 0
        self.retries = 0
        self.timeouts = 0
        self.total_rtt = 0.0

    def call(
        self,
        server: RPCServer,
        method: str,
        body: Any = None,
        payload_bytes: float = 1024.0,
        timeout: float | None = None,
        retry: "RetryPolicy | None" = None,
    ) -> Generator[Event, None, RPCResponse]:
        """Synchronous RPC (process generator): returns the response.

        ``timeout`` bounds a single attempt (:class:`RPCTimeout` on
        expiry).  ``retry`` wraps the call in a
        :class:`~repro.faults.RetryPolicy`: transient failures
        (timeouts, unavailable service) are retried with deterministic
        exponential backoff; permanent errors surface immediately.
        """
        if retry is not None:

            def attempt() -> Generator[Event, None, RPCResponse]:
                return self._call_once(server, method, body, payload_bytes)

            def note_retry(attempt_no: int, delay: float, exc: BaseException) -> None:
                self.retries += 1

            result = yield from retry.execute(
                self.env,
                attempt,
                rng=self.rng,
                on_retry=note_retry,
                name=f"rpc:{method}",
            )
            return result
        if timeout is not None:
            try:
                result = yield from with_timeout(
                    self.env,
                    self._call_once(server, method, body, payload_bytes),
                    timeout,
                    name=f"rpc:{method}",
                )
            except TimeoutExpired as exc:
                self.timeouts += 1
                self.failures += 1
                raise RPCTimeout(str(exc)) from None
            return result
        result = yield from self._call_once(server, method, body, payload_bytes)
        return result

    def _call_once(
        self,
        server: RPCServer,
        method: str,
        body: Any = None,
        payload_bytes: float = 1024.0,
    ) -> Generator[Event, None, RPCResponse]:
        """One bare attempt: serialize, cross the wire, serve, reply."""
        tel = self.env._telemetry
        if tel is None:
            # Telemetry off: hand back the bare attempt generator, no
            # extra delegation frame on the hot path.
            return self._attempt(server, method, body, payload_bytes, None)
        return self._call_traced(tel, server, method, body, payload_bytes)

    def _call_traced(
        self,
        tel: Any,
        server: RPCServer,
        method: str,
        body: Any,
        payload_bytes: float,
    ) -> Generator[Event, None, RPCResponse]:
        # One span per attempt; retried calls show one span each, and
        # the try/finally closes it exactly once even when with_timeout
        # cancels this generator mid-yield.
        span = tel.start_span(
            f"rpc.attempt:{method}",
            component=self.component,
            activate=True,
            server=server.name,
        )
        try:
            response = yield from self._attempt(
                server, method, body, payload_bytes, span
            )
            return response
        finally:
            tel.end_span(span)

    def _attempt(
        self,
        server: RPCServer,
        method: str,
        body: Any,
        payload_bytes: float,
        span: Any,
    ) -> Generator[Event, None, RPCResponse]:
        if not server.alive:
            self.failures += 1
            raise ServiceUnavailable(
                f"server {server.name} is not accepting calls"
            )
        start = self.env.now
        request = RPCRequest(
            method=method,
            payload_bytes=payload_bytes,
            body=body,
            client=self.name,
            sent_at=start,
            tenant=self.tenant,
        )
        if span is not None:
            request.ctx = span.context
        tel = self.env._telemetry
        if tel is not None and tel.provenance is not None:
            tel.provenance.note_rpc_send(
                request.uid, method, self.name, start, span
            )
        # Client-side serialization cost (charged on our node if any).
        ser = payload_bytes * self.serialize_cost_per_byte
        if ser > 0 and self.node is not None:
            act = self.node.inject_jitter(cpu_seconds=ser)
            yield act.done
        elif ser > 0:
            yield self.env.timeout(ser)
        # Message-level fault gate (drop/delay/duplicate), if injected.
        faults = self.network.message_faults
        decision = faults.draw(method) if faults is not None else None
        if decision is not None and decision.delay > 0:
            yield self.env.timeout(decision.delay)
        # Request over the wire.
        yield from self.network.transfer(
            payload_bytes,
            messages=1,
            tag=f"rpc:{method}",
            src=self.node,
            dst=server.node,
        )
        if decision is not None and decision.action == "drop_request":
            # The request is lost in transit; the caller only learns
            # after its transport timeout expires.
            self.failures += 1
            self.timeouts += 1
            yield self.env.timeout(faults.drop_stall)
            raise RPCTimeout(f"rpc:{method}: request dropped in transit")
        if decision is not None and decision.action == "duplicate":
            duplicate = RPCRequest(
                method=method,
                payload_bytes=payload_bytes,
                body=body,
                client=self.name,
                sent_at=start,
                ctx=request.ctx,
                tenant=self.tenant,
            )
            self.env.process(
                _swallow(server._serve(duplicate)),
                name=f"rpc-dup-{duplicate.uid}",
            )
        # Server-side processing.
        response = yield from server._serve(request)
        # Response back over the wire.
        yield from self.network.transfer(
            RESPONSE_BYTES,
            messages=1,
            tag=f"rpc:{method}:resp",
            src=server.node,
            dst=self.node,
        )
        if decision is not None and decision.action == "drop_response":
            self.failures += 1
            self.timeouts += 1
            yield self.env.timeout(faults.drop_stall)
            raise RPCTimeout(f"rpc:{method}: response dropped in transit")
        self.calls += 1
        rtt = self.env.now - start
        self.total_rtt += rtt
        if not response.ok and isinstance(response.body, RPCError):
            self.failures += 1
            raise response.body
        return response

    @property
    def mean_rtt(self) -> float:
        return self.total_rtt / self.calls if self.calls else 0.0


def _swallow(generator: Generator[Event, Any, Any]) -> Generator[Event, Any, None]:
    """Run a fire-and-forget generator, absorbing its failures.

    Duplicate deliveries must not crash the run when the server dies
    mid-service; their side effects (stored records, charged CPU) are
    the point, not their return value.  The kernel's :class:`Interrupt`
    subclasses ``Exception``, so cancellation must be re-raised
    explicitly — swallowing it here would detach fault-injection
    shutdown from every duplicate-delivery process.
    """
    try:
        yield from generator
    except Interrupt:
        raise
    except Exception:
        pass


class RPCRegistry:
    """Service discovery: how RP makes service addresses known.

    The paper notes service tasks must publish their RPC addresses
    before clients can connect (Sec 2.3.1); this registry is that
    mechanism.  ``lookup`` blocks until the named server registers.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._servers: dict[str, RPCServer] = {}
        self._waiters: dict[str, list[Event]] = {}

    def publish(self, server: RPCServer) -> None:
        self._servers[server.name] = server
        for event in self._waiters.pop(server.name, []):
            if not event.triggered:
                event.succeed(server)

    def lookup(self, name: str) -> Generator[Event, None, RPCServer]:
        """Wait until ``name`` is registered, then return its server."""
        server = self._servers.get(name)
        if server is not None:
            return server
        event = self.env.event()
        self._waiters.setdefault(name, []).append(event)
        server = yield event
        return server

    def try_lookup(self, name: str) -> RPCServer | None:
        return self._servers.get(name)

    def names(self) -> list[str]:
        return list(self._servers)
