"""SOMA monitoring clients: hardware (/proc), workflow (RP), TAU."""

from .hardware_monitor import HardwareMonitorModel, hardware_monitor_descriptions
from .rp_monitor import RPMonitorModel, rp_monitor_description, summarize_profile
from .tau import TAUWrappedModel, profiles_to_conduit

__all__ = [
    "HardwareMonitorModel",
    "RPMonitorModel",
    "TAUWrappedModel",
    "hardware_monitor_descriptions",
    "profiles_to_conduit",
    "rp_monitor_description",
    "summarize_profile",
]
