"""The SOMA hardware monitoring client (paper Sec 2.3.2, Listing 2).

One client per compute node, running on a reserved core for the whole
workflow: "Basic information about the state of the hardware, gathered
periodically by reading /proc/ is captured by SOMA client tasks, which
can be scheduled on reserved cores on each compute node".

Each sample: read the synthetic /proc, compute the interval CPU
utilization online (delta of cumulative jiffies), pay the CPU cost of
the read+serialize on the local node, and publish the Conduit tree to
the *hardware* namespace instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..rp.description import TaskDescription, TaskMode
from ..rp.model import ExecutionContext, ServiceModel, TaskResult
from ..sim.core import Interrupt
from ..soma.client import SomaClient
from ..soma.namespaces import HARDWARE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.node import Node
    from ..rp.session import Session
    from ..soma.service import SomaConfig

__all__ = ["HardwareMonitorModel", "hardware_monitor_descriptions"]

#: CPU seconds consumed per sample by the /proc read + serialization.
SAMPLE_CPU_COST = 0.04


class HardwareMonitorModel(ServiceModel):
    """Resident daemon sampling /proc on its node."""

    def __init__(
        self,
        session: "Session",
        config: "SomaConfig",
        stagger: float = 0.0,
    ) -> None:
        self.session = session
        self.config = config
        self.stagger = stagger
        self.samples = 0
        #: Online per-node utilization series: (time, cpu_util, gpu_util).
        self.utilization_series: list[tuple[float, float, float]] = []
        self.client: SomaClient | None = None

    def execute(self, ctx: ExecutionContext):
        env = ctx.env
        node = ctx.placements[0].node
        period = self.config.effective_hardware_frequency
        self.client = self.config.make_client(
            self.session, name=f"hwmon@{node.name}", node=node
        )
        procfs = self.session.cluster.procfs(node)
        prev = None
        prev_gpu_busy = 0.0
        prev_time = env.now
        try:
            # Stagger the first sample so a large machine's monitors do
            # not synchronize their publishes.
            if self.stagger > 0:
                yield env.timeout(self.stagger)
            while True:
                yield env.timeout(period)
                with self.session.telemetry.span(
                    "hwmon.sample", component="monitor", node=node.name
                ):
                    snap = procfs.read()
                    util = snap.utilization_since(prev)
                    dt = snap.timestamp - prev_time
                    gpu_util = 0.0
                    if dt > 0 and node.total_gpus > 0:
                        gpu_util = min(
                            1.0,
                            (snap.gpu_busy_seconds - prev_gpu_busy)
                            / (dt * node.total_gpus),
                        )
                    prev, prev_time = snap, snap.timestamp
                    prev_gpu_busy = snap.gpu_busy_seconds
                    self.samples += 1
                    self.utilization_series.append((env.now, util, gpu_util))
                    # The cost of reading /proc + building the Conduit
                    # tree is real CPU on this node (reserved core +
                    # mem traffic).
                    act = node.inject_jitter(cpu_seconds=SAMPLE_CPU_COST)
                    yield act.done
                    tree = snap.to_conduit()
                    base = f"PROC/{snap.hostname}/{snap.timestamp:.6f}"
                    tree[f"{base}/cpu_utilization"] = round(util, 4)
                    tree[f"{base}/gpu_utilization"] = round(gpu_util, 4)
                    yield from self.client.publish(HARDWARE, tree)
        except Interrupt:
            pass
        return TaskResult(
            exit_code=0,
            data={
                "samples": self.samples,
                "series": list(self.utilization_series),
            },
        )


def hardware_monitor_descriptions(
    session: "Session",
    config: "SomaConfig",
    nodes: "list[Node]",
) -> list[TaskDescription]:
    """One pinned monitor task per compute node (reserved core)."""
    descriptions = []
    period = config.effective_hardware_frequency
    for node in nodes:
        stagger = float(session.rng.uniform(0.0, period))
        model = HardwareMonitorModel(session, config, stagger=stagger)
        descriptions.append(
            TaskDescription(
                name=f"soma-hwmon-{node.name}",
                model=model,
                ranks=1,
                cores_per_rank=1,
                mode=TaskMode.MONITOR,
                multi_node=False,
                tags={"node": node.name},
                metadata={"monitor_model": model},
            )
        )
    return descriptions
