"""The TAU performance plugin for SOMA (paper Sec 2.3.2, Sec 3.1).

"Traditional sources of performance information, such as MPI counters
and application profiles, are captured by integrating the TAU
performance system with the application.  ...  While the plugin runs in
the application's address space, it creates a separate client object
and connects to the SOMA instances reserved for monitoring the
performance namespace."

:class:`TAUWrappedModel` is the simulated analogue of ``tau_exec``: it
wraps another task model, adds a small sampling overhead, and at task
end publishes the model's per-rank profiles — tagged with hostname and
task identifier, the two additions the paper made for heterogeneous
workflows — to the *performance* namespace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..conduit import Node as ConduitNode
from ..rp.model import ExecutionContext, RankProfile, TaskModel, TaskResult
from ..soma.namespaces import PERFORMANCE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..rp.session import Session
    from ..soma.service import SomaConfig

__all__ = ["TAUWrappedModel", "profiles_to_conduit"]

#: Fractional runtime overhead of tau_exec sampling (well under the
#: few-percent TAU reports for sampling mode).
SAMPLING_OVERHEAD = 0.015

#: Serialized bytes per (rank, region) profile entry.
BYTES_PER_ENTRY = 48.0


def profiles_to_conduit(
    task_uid: str, profiles: list[RankProfile]
) -> ConduitNode:
    """Per-rank TAU profile tree, tagged with hostname and task id.

    The hostname tag and task identifier "allow for properly attributing
    the TAU profile to the correct heterogeneous workflow tasks".
    """
    tree = ConduitNode()
    for profile in profiles:
        base = f"TAU/{task_uid}/{profile.hostname}/rank{profile.rank:05d}"
        for region, seconds in profile.seconds_by_region.items():
            tree[f"{base}/{region}"] = round(seconds, 6)
    return tree


class TAUWrappedModel(TaskModel):
    """``tau_exec``-style wrapper: run, sample, publish at exit."""

    def __init__(
        self,
        session: "Session",
        config: "SomaConfig",
        inner: TaskModel,
        sampling_overhead: float = SAMPLING_OVERHEAD,
    ) -> None:
        self.session = session
        self.config = config
        self.inner = inner
        self.sampling_overhead = sampling_overhead
        self.published_profiles = 0

    def execute(self, ctx: ExecutionContext):
        env = ctx.env
        start = env.now
        result: TaskResult = yield from self.inner.execute(ctx)
        elapsed = env.now - start
        # Sampling overhead: the signal-handler cost tau_exec adds.
        if self.sampling_overhead > 0 and elapsed > 0:
            yield env.timeout(elapsed * self.sampling_overhead)
        # Publish the profiles from the application's address space —
        # the client stub needs no resources of its own (Sec 2.2.1),
        # so no node is attached (no extra jitter charged).
        if result.rank_profiles:
            client = self.config.make_client(
                self.session, name=f"tau@{ctx.task.uid}", node=None
            )
            tree = profiles_to_conduit(ctx.task.uid, result.rank_profiles)
            ok = yield from client.publish(PERFORMANCE, tree)
            if ok:
                self.published_profiles += len(result.rank_profiles)
        return result
