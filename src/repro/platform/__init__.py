"""Simulated HPC platform (stands in for OLCF Summit).

Provides nodes with core/GPU maps and memory-bandwidth contention, a
shared tapered-fat-tree interconnect, a synthetic /proc per node, and a
FIFO batch system — everything the RADICAL-Pilot and SOMA layers above
need from the machine.
"""

from .batch import BatchError, BatchSystem, JobAllocation, JobRequest
from .cluster import Cluster
from .metering import EventCounter, StepIntegrator
from .network import Network, TransferStats
from .node import Allocation, AllocationError, Node, NodeFailure
from .procfs import ProcFS, ProcSnapshot
from .rateshare import Activity, ContentionDomain, FairShareChannel, RatePool
from .specs import SUMMIT, ClusterSpec, NetworkSpec, NodeSpec, summit_like

__all__ = [
    "Activity",
    "Allocation",
    "AllocationError",
    "BatchError",
    "BatchSystem",
    "Cluster",
    "ClusterSpec",
    "ContentionDomain",
    "EventCounter",
    "FairShareChannel",
    "JobAllocation",
    "JobRequest",
    "Network",
    "NetworkSpec",
    "Node",
    "NodeFailure",
    "NodeSpec",
    "ProcFS",
    "ProcSnapshot",
    "RatePool",
    "StepIntegrator",
    "SUMMIT",
    "summit_like",
    "TransferStats",
]
