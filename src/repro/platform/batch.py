"""Batch system: how a pilot job gets onto the machine.

RADICAL-Pilot submits one *pilot job* through PSI/J to the platform's
batch scheduler (Fig 1, step 1); once the job starts, the pilot owns a
set of whole nodes for its walltime.  We model a FIFO queue — strict
(backfilling-free) by default, sufficient because the paper's
experiments each run in a single allocation; ``backfill=True`` opts in
to a simple backfilling pass so a later request that fits the free pool
is granted even while the queue head waits.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Generator

from ..sim.core import Environment, Event, SimulationError
from .node import Node

__all__ = ["JobRequest", "JobAllocation", "BatchSystem", "BatchError"]


class BatchError(SimulationError):
    """Raised when a job request cannot ever be satisfied."""


@dataclass(frozen=True, slots=True)
class JobRequest:
    """A batch job request (the pilot description's resource part)."""

    nodes: int
    walltime: float
    name: str = "pilot"
    queue: str = "batch"


class JobAllocation:
    """A granted job: a set of whole nodes plus lifetime bookkeeping."""

    _ids = itertools.count()

    def __init__(
        self, env: Environment, request: JobRequest, nodes: list[Node]
    ) -> None:
        self.uid = f"job.{next(JobAllocation._ids):06d}"
        self.env = env
        self.request = request
        self.nodes = nodes
        self.granted_at = env.now
        self.released_at: float | None = None
        #: Fires when the allocation is released (or walltime expires).
        self.done: Event = env.event()

    @property
    def deadline(self) -> float:
        return self.granted_at + self.request.walltime

    @property
    def active(self) -> bool:
        return self.released_at is None

    def remaining_walltime(self) -> float:
        return max(0.0, self.deadline - self.env.now)


class BatchSystem:
    """FIFO allocation of whole nodes to jobs.

    With ``backfill=True``, requests behind a blocked head that fit the
    free pool are granted out of order (relative arrival order among the
    backfilled jobs is preserved; the head keeps its place).
    """

    def __init__(
        self, env: Environment, nodes: list[Node], backfill: bool = False
    ) -> None:
        self.env = env
        self._nodes = nodes
        self._free: deque[Node] = deque(nodes)
        self._pending: deque[tuple[JobRequest, Event]] = deque()
        self.backfill = backfill
        self.submitted = 0
        self.completed = 0
        self.backfilled = 0

    @property
    def free_nodes(self) -> int:
        return len(self._free)

    @property
    def total_nodes(self) -> int:
        return len(self._nodes)

    def submit(self, request: JobRequest) -> Generator[Event, None, JobAllocation]:
        """Submit and wait for the allocation (process generator)."""
        if request.nodes <= 0:
            raise BatchError("job must request at least one node")
        if request.nodes > len(self._nodes):
            raise BatchError(
                f"job wants {request.nodes} nodes, machine has "
                f"{len(self._nodes)}"
            )
        self.submitted += 1
        granted = self.env.event()
        self._pending.append((request, granted))
        self._try_grant()
        allocation: JobAllocation = yield granted
        return allocation

    def release(self, allocation: JobAllocation) -> None:
        """Return an allocation's nodes to the free pool."""
        if not allocation.active:
            return
        allocation.released_at = self.env.now
        self._free.extend(allocation.nodes)
        self.completed += 1
        if not allocation.done.triggered:
            allocation.done.succeed(allocation)
        self._try_grant()

    # -- internals ------------------------------------------------------

    def _try_grant(self) -> None:
        # FIFO head first: grant as long as the head of the queue fits.
        pending = self._pending
        while pending:
            request, granted = pending[0]
            if len(self._free) < request.nodes:
                break
            pending.popleft()
            self._grant(request, granted)
        if not self.backfill or not pending or not self._free:
            return
        # Backfill pass: grant any later request that fits what is left,
        # keeping the relative order of everything that stays queued.
        remaining: deque[tuple[JobRequest, Event]] = deque()
        while pending:
            request, granted = pending.popleft()
            # The first entry is always the non-fitting head, so every
            # grant here jumps at least one queued job.
            if len(self._free) >= request.nodes:
                self._grant(request, granted)
                self.backfilled += 1
            else:
                remaining.append((request, granted))
        self._pending = remaining

    def _grant(self, request: JobRequest, granted: Event) -> None:
        free = self._free
        nodes = [free.popleft() for _ in range(request.nodes)]
        allocation = JobAllocation(self.env, request, nodes)
        granted.succeed(allocation)
