"""The full simulated machine: nodes + network + batch system."""

from __future__ import annotations

from ..sim.core import Environment
from .batch import BatchSystem
from .network import Network
from .node import Node
from .procfs import ProcFS
from .specs import ClusterSpec

__all__ = ["Cluster"]


class Cluster:
    """A simulated HPC platform.

    One of these stands in for Summit in every experiment: it owns the
    node objects, the shared interconnect, and the batch queue that
    grants the pilot job its allocation.
    """

    def __init__(
        self, env: Environment, spec: ClusterSpec, backfill: bool = False
    ) -> None:
        self.env = env
        self.spec = spec
        self.nodes: list[Node] = [
            Node(env, index, spec.node) for index in range(spec.nodes)
        ]
        self.network = Network(env, spec.network, spec.nodes)
        self.batch = BatchSystem(env, self.nodes, backfill=backfill)
        self._procfs = {node.name: ProcFS(node) for node in self.nodes}

    def procfs(self, node: Node) -> ProcFS:
        """The /proc view of ``node``."""
        return self._procfs[node.name]

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    @property
    def total_cores(self) -> int:
        return sum(node.total_cores for node in self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(node.total_gpus for node in self.nodes)

    def utilization(self) -> float:
        """Instantaneous machine-wide CPU utilization (0..1)."""
        busy = sum(node.busy_cores.value for node in self.nodes)
        return min(1.0, busy / max(1, self.total_cores))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {self.spec.name} nodes={len(self.nodes)} "
            f"cores={self.total_cores} gpus={self.total_gpus}>"
        )
