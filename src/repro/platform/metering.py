"""Time-weighted meters for utilization accounting.

A :class:`StepIntegrator` tracks a step function (e.g. "busy cores on
node 7") and can report its time integral — exactly what a /proc-style
sampler needs to turn cumulative jiffies into interval utilization.
"""

from __future__ import annotations

from ..sim.core import Environment

__all__ = ["StepIntegrator", "EventCounter"]


class StepIntegrator:
    """Integrates a piecewise-constant signal over simulated time."""

    __slots__ = ("env", "value", "_integral", "_last_time", "_samples")

    def __init__(self, env: Environment, initial: float = 0.0) -> None:
        self.env = env
        self.value = float(initial)
        self._integral = 0.0
        self._last_time = env.now
        self._samples: list[tuple[float, float]] = [(env.now, float(initial))]

    def _advance(self) -> None:
        now = self.env.now
        if now > self._last_time:
            self._integral += self.value * (now - self._last_time)
            self._last_time = now

    def add(self, delta: float) -> None:
        """Shift the signal by ``delta`` at the current time."""
        self._advance()
        self.value += delta
        self._samples.append((self.env.now, self.value))

    def set(self, value: float) -> None:
        self._advance()
        self.value = float(value)
        self._samples.append((self.env.now, self.value))

    @property
    def integral(self) -> float:
        """Integral of the signal from t=0 to now."""
        self._advance()
        return self._integral

    def mean(self, since: float = 0.0) -> float:
        """Time-average of the signal from ``since`` to now."""
        self._advance()
        span = self._last_time - since
        if span <= 0:
            return self.value
        # Integrate the recorded history over [since, now].
        total = 0.0
        prev_t, prev_v = self._samples[0]
        for t, v in self._samples[1:]:
            lo, hi = max(prev_t, since), t
            if hi > lo:
                total += prev_v * (hi - lo)
            prev_t, prev_v = t, v
        if self._last_time > prev_t:
            lo = max(prev_t, since)
            total += prev_v * (self._last_time - lo)
        return total / span

    def history(self) -> list[tuple[float, float]]:
        """The recorded (time, value) transition list."""
        return list(self._samples)


class EventCounter:
    """Counts events and remembers their timestamps (bounded)."""

    __slots__ = ("env", "count", "timestamps", "_keep")

    def __init__(self, env: Environment, keep: int = 100000) -> None:
        self.env = env
        self.count = 0
        self.timestamps: list[float] = []
        self._keep = keep

    def hit(self) -> None:
        self.count += 1
        if len(self.timestamps) < self._keep:
            self.timestamps.append(self.env.now)

    def rate(self, window: float) -> float:
        """Events per second over the trailing ``window`` seconds."""
        if window <= 0:
            return 0.0
        cutoff = self.env.now - window
        recent = sum(1 for t in self.timestamps if t >= cutoff)
        return recent / window
