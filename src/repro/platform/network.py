"""Interconnect model: per-node injection caps over a tapered fabric.

Transfers share one fabric-wide :class:`FairShareChannel` whose
capacity is ``link_bandwidth * nodes ** taper_exponent`` (a tapered fat
tree); each transfer is additionally capped at the injection bandwidth
of a single node.  Message latency and per-message software overhead
are charged up front.

Everything that moves bytes — MPI halo exchanges inside application
tasks, SOMA client publishes, RP control traffic — goes through this
one object, so monitoring traffic and application traffic interfere
exactly as they would on a shared fabric.
"""

from __future__ import annotations

from typing import Generator

from ..sim.core import Environment, Event
from .metering import EventCounter
from .rateshare import FairShareChannel
from .specs import NetworkSpec

__all__ = ["Network", "TransferStats"]


class TransferStats:
    """Aggregate accounting of everything that crossed the fabric."""

    __slots__ = ("transfers", "bytes", "by_tag")

    def __init__(self) -> None:
        self.transfers = 0
        self.bytes = 0.0
        self.by_tag: dict[str, tuple[int, float]] = {}

    def record(self, tag: str, nbytes: float) -> None:
        self.transfers += 1
        self.bytes += nbytes
        count, total = self.by_tag.get(tag, (0, 0.0))
        self.by_tag[tag] = (count + 1, total + nbytes)


class Network:
    """Shared interconnect for a cluster."""

    def __init__(self, env: Environment, spec: NetworkSpec, nodes: int) -> None:
        self.env = env
        self.spec = spec
        self.nodes = nodes
        bisection = spec.link_bandwidth * max(1, nodes) ** spec.taper_exponent
        self.fabric = FairShareChannel(env, capacity=bisection)
        self.stats = TransferStats()
        self.messages = EventCounter(env, keep=0)

    @property
    def bisection_bandwidth(self) -> float:
        return self.fabric.capacity

    def transfer(
        self,
        nbytes: float,
        messages: int = 1,
        tag: str = "data",
    ) -> Generator[Event, None, float]:
        """Move ``nbytes`` (in ``messages`` messages) across the fabric.

        This is a process generator: ``yield from net.transfer(...)`` or
        ``env.process(net.transfer(...))``.  Returns the elapsed time.
        """
        start = self.env.now
        self.stats.record(tag, nbytes)
        self.messages.hit()
        overhead = self.spec.latency + self.spec.message_overhead * max(1, messages)
        if overhead > 0:
            yield self.env.timeout(overhead)
        if nbytes > 0:
            act = self.fabric.execute(
                work=float(nbytes),
                weight=1.0,
                tag=tag,
                rate_cap=self.spec.link_bandwidth,
            )
            yield act.done
        return self.env.now - start

    def estimate_time(self, nbytes: float, messages: int = 1) -> float:
        """Uncongested transfer-time estimate (for schedulers/models)."""
        overhead = self.spec.latency + self.spec.message_overhead * max(1, messages)
        return overhead + nbytes / self.spec.link_bandwidth

    def pressure(self) -> float:
        """Current fabric demand relative to capacity."""
        active = len(self.fabric.active)
        if active == 0:
            return 0.0
        return min(
            1.0, active * self.spec.link_bandwidth / self.fabric.capacity
        )
