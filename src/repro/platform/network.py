"""Interconnect model: per-node injection caps over a tapered fabric.

Transfers share one fabric-wide :class:`FairShareChannel` whose
capacity is ``link_bandwidth * nodes ** taper_exponent`` (a tapered fat
tree); each transfer is additionally capped at the injection bandwidth
of a single node.  Message latency and per-message software overhead
are charged up front.

Everything that moves bytes — MPI halo exchanges inside application
tasks, SOMA client publishes, RP control traffic — goes through this
one object, so monitoring traffic and application traffic interfere
exactly as they would on a shared fabric.
Fault-injection hooks
---------------------
The fabric carries two pieces of fault state consulted by upper layers:

* **rack partitions** — node indices are grouped into racks of
  ``rack_size``; :meth:`Network.sever` blocks traffic between two racks
  until :meth:`Network.heal`.  Transfers that declare their endpoints
  (``src``/``dst``) park until the path heals; endpoint-less transfers
  (e.g. intra-task MPI) are unaffected.
* **message faults** — ``message_faults`` is an attachment point for a
  :class:`repro.faults.MessageFaults` gate; the RPC layer consults it
  to drop, delay or duplicate individual calls.  The platform layer
  never imports it, so the dependency points strictly upward.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..sim.core import Environment, Event
from .metering import EventCounter
from .node import Node
from .rateshare import FairShareChannel
from .specs import NetworkSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import MessageFaults

__all__ = ["Network", "TransferStats"]

#: Default nodes per rack (a Summit cabinet holds 18 nodes).
DEFAULT_RACK_SIZE = 18


class TransferStats:
    """Aggregate accounting of everything that crossed the fabric."""

    __slots__ = ("transfers", "bytes", "by_tag")

    def __init__(self) -> None:
        self.transfers = 0
        self.bytes = 0.0
        self.by_tag: dict[str, tuple[int, float]] = {}

    def record(self, tag: str, nbytes: float) -> None:
        self.transfers += 1
        self.bytes += nbytes
        count, total = self.by_tag.get(tag, (0, 0.0))
        self.by_tag[tag] = (count + 1, total + nbytes)


class Network:
    """Shared interconnect for a cluster."""

    def __init__(
        self,
        env: Environment,
        spec: NetworkSpec,
        nodes: int,
        rack_size: int = DEFAULT_RACK_SIZE,
    ) -> None:
        self.env = env
        self.spec = spec
        self.nodes = nodes
        bisection = spec.link_bandwidth * max(1, nodes) ** spec.taper_exponent
        self.fabric = FairShareChannel(env, capacity=bisection)
        self.stats = TransferStats()
        self.messages = EventCounter(env, keep=0)
        #: Nodes per rack for the partition model (mutable: small test
        #: clusters set 1 so every node is its own rack).
        self.rack_size = rack_size
        self._severed: set[frozenset[int]] = set()
        self._heal_waiters: list[Event] = []
        #: Transfers that had to park behind a severed rack pair.
        self.blocked_transfers = 0
        #: Attachment point for a fault-injection message gate; the RPC
        #: layer consults it, the platform layer never touches it.
        self.message_faults: "MessageFaults | None" = None

    # -- partitions (fault injection) ----------------------------------

    def rack_of(self, node: Node) -> int:
        """The rack index ``node`` lives in."""
        return node.index // max(1, self.rack_size)

    def sever(self, rack_a: int, rack_b: int) -> None:
        """Block all endpoint-declared traffic between two racks."""
        if rack_a == rack_b:
            raise ValueError("cannot partition a rack from itself")
        self._severed.add(frozenset((rack_a, rack_b)))

    def heal(self, rack_a: int | None = None, rack_b: int | None = None) -> None:
        """Heal one severed rack pair (or all of them) and wake waiters."""
        if rack_a is None:
            self._severed.clear()
        else:
            self._severed.discard(frozenset((rack_a, rack_b)))
        waiters, self._heal_waiters = self._heal_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    @property
    def partitioned(self) -> bool:
        return bool(self._severed)

    def path_blocked(self, src: Node | None, dst: Node | None) -> bool:
        """True if ``src`` -> ``dst`` currently crosses a severed pair."""
        if not self._severed or src is None or dst is None:
            return False
        return frozenset((self.rack_of(src), self.rack_of(dst))) in self._severed

    def await_path(
        self, src: Node, dst: Node
    ) -> Generator[Event, None, None]:
        """Park until the ``src`` -> ``dst`` path is connected again."""
        while self.path_blocked(src, dst):
            event = self.env.event()
            self._heal_waiters.append(event)
            yield event

    @property
    def bisection_bandwidth(self) -> float:
        return self.fabric.capacity

    def transfer(
        self,
        nbytes: float,
        messages: int = 1,
        tag: str = "data",
        src: Node | None = None,
        dst: Node | None = None,
    ) -> Generator[Event, None, float]:
        """Move ``nbytes`` (in ``messages`` messages) across the fabric.

        This is a process generator: ``yield from net.transfer(...)`` or
        ``env.process(net.transfer(...))``.  Returns the elapsed time.
        Declaring ``src``/``dst`` makes the transfer partition-aware: it
        parks until the rack pair is connected (callers bound the wait
        with their own timeout).
        """
        start = self.env.now
        if self.path_blocked(src, dst):
            self.blocked_transfers += 1
            yield from self.await_path(src, dst)  # type: ignore[arg-type]
        self.stats.record(tag, nbytes)
        self.messages.hit()
        overhead = self.spec.latency + self.spec.message_overhead * max(1, messages)
        if overhead > 0:
            yield self.env.timeout(overhead)
        if nbytes > 0:
            act = self.fabric.execute(
                work=float(nbytes),
                weight=1.0,
                tag=tag,
                rate_cap=self.spec.link_bandwidth,
            )
            yield act.done
        return self.env.now - start

    def estimate_time(self, nbytes: float, messages: int = 1) -> float:
        """Uncongested transfer-time estimate (for schedulers/models)."""
        overhead = self.spec.latency + self.spec.message_overhead * max(1, messages)
        return overhead + nbytes / self.spec.link_bandwidth

    def pressure(self) -> float:
        """Current fabric demand relative to capacity."""
        active = len(self.fabric.active)
        if active == 0:
            return 0.0
        return min(
            1.0, active * self.spec.link_bandwidth / self.fabric.capacity
        )
