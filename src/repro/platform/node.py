"""A simulated compute node.

Carries all the state the paper's experiments observe: a core map and a
GPU map (what the RP agent scheduler allocates), a memory-bandwidth
contention domain (what makes co-located memory-bound ranks slow each
other down), and busy-time meters (what the synthetic /proc exposes to
the SOMA hardware monitor).
"""

from __future__ import annotations

import itertools
from typing import Any

from ..sim.core import Environment, SimulationError
from .metering import StepIntegrator
from .rateshare import Activity, ContentionDomain
from .specs import NodeSpec

__all__ = ["Node", "Allocation", "AllocationError", "NodeFailure"]


class AllocationError(SimulationError):
    """Raised when an allocation request cannot be satisfied."""


class NodeFailure(SimulationError):
    """Raised into computations running on a node when it fails."""


class Allocation:
    """A claim on cores (and optionally GPUs) of one node."""

    _ids = itertools.count()

    __slots__ = ("node", "cores", "gpus", "owner", "uid", "released")

    def __init__(
        self, node: "Node", cores: list[int], gpus: list[int], owner: str
    ) -> None:
        self.uid = next(Allocation._ids)
        self.node = node
        self.cores = cores
        self.gpus = gpus
        self.owner = owner
        self.released = False

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def release(self) -> None:
        self.node.free(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Allocation {self.owner} node={self.node.name} "
            f"cores={len(self.cores)} gpus={len(self.gpus)}>"
        )


class Node:
    """One compute node: resource maps + contention + accounting."""

    def __init__(self, env: Environment, index: int, spec: NodeSpec) -> None:
        self.env = env
        self.index = index
        self.spec = spec
        self.name = f"cn{index:04d}"
        #: core slot -> owner uid or None (only usable cores are mapped).
        self._core_owner: list[str | None] = [None] * spec.usable_cores
        self._gpu_owner: list[str | None] = [None] * spec.gpus
        #: Memory-bandwidth contention domain for CPU compute.
        self.domain = ContentionDomain(env, capacity=spec.memory_bandwidth)
        #: Meters feeding the synthetic /proc.
        self.busy_cores = StepIntegrator(env)
        self.busy_gpus = StepIntegrator(env)
        self.allocated_cores = StepIntegrator(env)
        self.used_memory_mib = StepIntegrator(env)
        #: False once the node has failed (failure injection).
        self.alive = True
        #: Count of processes "running" (tasks + monitors), for /proc.
        self.num_processes = StepIntegrator(env)
        self.boot_time = env.now

    # -- allocation -------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.spec.usable_cores

    @property
    def total_gpus(self) -> int:
        return self.spec.gpus

    @property
    def free_cores(self) -> int:
        return sum(1 for owner in self._core_owner if owner is None)

    @property
    def free_gpus(self) -> int:
        return sum(1 for owner in self._gpu_owner if owner is None)

    def allocate(
        self, cores: int, gpus: int = 0, owner: str = "anonymous"
    ) -> Allocation:
        """Claim ``cores`` cores and ``gpus`` GPUs, or raise."""
        if not self.alive:
            raise AllocationError(f"{self.name} is down")
        if cores < 0 or gpus < 0:
            raise ValueError("resource counts must be non-negative")
        free_core_slots = [
            i for i, o in enumerate(self._core_owner) if o is None
        ]
        free_gpu_slots = [i for i, o in enumerate(self._gpu_owner) if o is None]
        if len(free_core_slots) < cores:
            raise AllocationError(
                f"{self.name}: need {cores} cores, only "
                f"{len(free_core_slots)} free"
            )
        if len(free_gpu_slots) < gpus:
            raise AllocationError(
                f"{self.name}: need {gpus} GPUs, only "
                f"{len(free_gpu_slots)} free"
            )
        core_slots = free_core_slots[:cores]
        gpu_slots = free_gpu_slots[:gpus]
        for slot in core_slots:
            self._core_owner[slot] = owner
        for slot in gpu_slots:
            self._gpu_owner[slot] = owner
        self.allocated_cores.add(cores)
        return Allocation(self, core_slots, gpu_slots, owner)

    def free(self, allocation: Allocation) -> None:
        if allocation.released:
            return
        for slot in allocation.cores:
            self._core_owner[slot] = None
        for slot in allocation.gpus:
            self._gpu_owner[slot] = None
        self.allocated_cores.add(-len(allocation.cores))
        allocation.released = True

    def owners(self) -> set[str]:
        return {o for o in self._core_owner if o is not None} | {
            o for o in self._gpu_owner if o is not None
        }

    # -- execution ----------------------------------------------------------

    def run_compute(
        self,
        cores: int,
        work: float,
        mem_intensity: float = 0.0,
        demand_per_core: float = 1.0,
        cpu_busy: bool = True,
        tag: str = "",
        payload: Any = None,
    ) -> Activity:
        """Run ``work`` units of per-rank CPU work on ``cores`` cores.

        The returned activity's rate reacts to memory-bandwidth pressure
        from everything else on the node.  ``work`` is the critical-path
        work of the slowest rank; all ranks progress together.
        """
        if not self.alive:
            raise NodeFailure(f"{self.name} is down")
        act = self.domain.execute(
            work=work,
            weight=self.spec.core_speed,
            demand=cores * demand_per_core,
            mem_intensity=mem_intensity,
            tag=tag,
            payload=payload,
        )
        if cpu_busy and cores > 0:
            self.busy_cores.add(cores)
            self.num_processes.add(1)

            def _ended(_act: Any, cores: int = cores) -> None:
                # On node failure the meters were already zeroed.
                if self.alive:
                    self.busy_cores.add(-cores)
                    self.num_processes.add(-1)

            act.on_end.append(_ended)
        return act

    def run_gpu_compute(self, gpus: int, work: float, tag: str = "") -> Activity:
        """Run GPU work: exclusive devices, no cross-GPU contention.

        Modeled as a contention-free activity at ``gpu_speed`` per GPU
        group (the work value is the critical path of the slowest GPU).
        """
        if not self.alive:
            raise NodeFailure(f"{self.name} is down")
        act = self.domain.execute(
            work=work,
            weight=self.spec.gpu_speed,
            demand=0.0,
            mem_intensity=0.0,
            tag=tag or "gpu",
        )
        if gpus > 0:
            self.busy_gpus.add(gpus)

            def _ended(_act: Any, gpus: int = gpus) -> None:
                if self.alive:
                    self.busy_gpus.add(-gpus)

            act.on_end.append(_ended)
        return act

    def inject_jitter(self, cpu_seconds: float, mem_demand: float = 0.5) -> Activity:
        """Short OS-noise burst (monitor sampling, serialization, ...).

        Steals one core-equivalent for ``cpu_seconds`` and exerts a
        small memory-bandwidth demand, perturbing co-resident ranks —
        the paper's monitoring-overhead mechanism at the node level.
        """
        return self.run_compute(
            cores=1,
            work=cpu_seconds * self.spec.core_speed,
            mem_intensity=0.3,
            demand_per_core=mem_demand,
            cpu_busy=True,
            tag="jitter",
        )

    # -- memory ---------------------------------------------------------------

    def reserve_memory(self, mib: float) -> None:
        if self.used_memory_mib.value + mib > self.spec.memory_mib:
            raise AllocationError(
                f"{self.name}: out of memory "
                f"({self.used_memory_mib.value + mib} > {self.spec.memory_mib})"
            )
        self.used_memory_mib.add(mib)

    def release_memory(self, mib: float) -> None:
        self.used_memory_mib.add(-mib)

    @property
    def available_memory_mib(self) -> float:
        return self.spec.memory_mib - self.used_memory_mib.value

    # -- observation ------------------------------------------------------------

    def fail(self) -> None:
        """Fail the node: every resident computation dies.

        Tasks with ranks here observe :class:`NodeFailure` from their
        activities and end up FAILED; the scheduler stops considering
        the node for new placements.
        """
        if not self.alive:
            return
        self.alive = False
        self.busy_cores.set(0)
        self.busy_gpus.set(0)
        self.num_processes.set(0)
        self.domain.fail_all(NodeFailure(f"{self.name} failed"))

    def set_speed_factor(self, factor: float) -> None:
        """Slow the node down (or restore it): fault injection hook.

        Every resident computation — application ranks, monitor
        sampling, RPC service work — runs at ``factor`` of nominal
        speed until the factor is reset to 1.0.
        """
        self.domain.set_speed_factor(factor)

    @property
    def speed_factor(self) -> float:
        return self.domain.speed_factor

    def cpu_utilization(self) -> float:
        """Instantaneous fraction of usable cores that are busy."""
        return min(1.0, self.busy_cores.value / max(1, self.total_cores))

    def gpu_utilization(self) -> float:
        return min(1.0, self.busy_gpus.value / max(1, self.total_gpus))

    def uptime(self) -> float:
        return self.env.now - self.boot_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.name} cores={self.free_cores}/{self.total_cores} "
            f"gpus={self.free_gpus}/{self.total_gpus}>"
        )
