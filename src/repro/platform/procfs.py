"""Synthetic /proc filesystem for simulated nodes.

The SOMA hardware monitoring client of the paper periodically reads
``/proc`` (Listing 2): uptime, process counts, available RAM, and the
per-CPU jiffy counters in ``/proc/stat``.  This module synthesizes the
same counters from the node's meters, so the monitor observes exactly
what a real /proc reader would: *cumulative* values from which interval
utilization has to be computed by differencing.
"""

from __future__ import annotations

from ..conduit import Node as ConduitNode
from .node import Node

__all__ = ["ProcFS", "ProcSnapshot"]

#: Jiffies per second, as on a stock Linux kernel.
USER_HZ = 100.0


class ProcSnapshot:
    """One read of the synthetic /proc on a node."""

    __slots__ = (
        "hostname",
        "timestamp",
        "uptime",
        "num_processes",
        "available_ram_mib",
        "cpu_total_jiffies",
        "cpu_busy_jiffies",
        "gpu_busy_seconds",
        "ncores",
    )

    def __init__(
        self,
        hostname: str,
        timestamp: float,
        uptime: float,
        num_processes: int,
        available_ram_mib: float,
        cpu_total_jiffies: float,
        cpu_busy_jiffies: float,
        gpu_busy_seconds: float,
        ncores: int,
    ) -> None:
        self.hostname = hostname
        self.timestamp = timestamp
        self.uptime = uptime
        self.num_processes = num_processes
        self.available_ram_mib = available_ram_mib
        self.cpu_total_jiffies = cpu_total_jiffies
        self.cpu_busy_jiffies = cpu_busy_jiffies
        self.gpu_busy_seconds = gpu_busy_seconds
        self.ncores = ncores

    def utilization_since(self, prev: "ProcSnapshot | None") -> float:
        """CPU utilization between ``prev`` and this snapshot (0..1).

        Mirrors what the paper's hardware client computes online: the
        delta of busy jiffies over the delta of total jiffies.
        """
        if prev is None:
            if self.cpu_total_jiffies <= 0:
                return 0.0
            return min(1.0, self.cpu_busy_jiffies / self.cpu_total_jiffies)
        d_total = self.cpu_total_jiffies - prev.cpu_total_jiffies
        d_busy = self.cpu_busy_jiffies - prev.cpu_busy_jiffies
        if d_total <= 0:
            return 0.0
        return max(0.0, min(1.0, d_busy / d_total))

    def to_conduit(self) -> ConduitNode:
        """Render as the Conduit tree of Listing 2."""
        root = ConduitNode()
        base = f"PROC/{self.hostname}/{self.timestamp:.6f}"
        root[f"{base}/Uptime"] = round(self.uptime, 3)
        root[f"{base}/Num Processes"] = self.num_processes
        root[f"{base}/Available RAM"] = round(self.available_ram_mib, 1)
        root[f"{base}/stat/cpu"] = [
            round(self.cpu_busy_jiffies, 1),
            round(self.cpu_total_jiffies - self.cpu_busy_jiffies, 1),
        ]
        root[f"{base}/stat/ncores"] = self.ncores
        root[f"{base}/gpu/busy_seconds"] = round(self.gpu_busy_seconds, 3)
        return root


class ProcFS:
    """The /proc view of one node."""

    def __init__(self, node: Node) -> None:
        self.node = node

    def read(self) -> ProcSnapshot:
        """Take a snapshot; costs no simulated time by itself.

        The *CPU cost* of reading /proc is charged separately by the
        hardware monitor via :meth:`Node.inject_jitter`, matching the
        paper's separation of data access from measurement overhead.
        """
        node = self.node
        uptime = node.uptime()
        total_jiffies = uptime * node.total_cores * USER_HZ
        busy_jiffies = node.busy_cores.integral * USER_HZ
        return ProcSnapshot(
            hostname=node.name,
            timestamp=node.env.now,
            uptime=uptime,
            num_processes=int(node.num_processes.value),
            available_ram_mib=node.available_memory_mib,
            cpu_total_jiffies=total_jiffies,
            cpu_busy_jiffies=busy_jiffies,
            gpu_busy_seconds=node.busy_gpus.integral,
            ncores=node.total_cores,
        )
