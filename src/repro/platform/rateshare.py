"""Progress-based execution of activities whose rate can change.

This is the numerical heart of the platform model.  An activity has a
fixed amount of *work*; its instantaneous rate depends on the set of
co-resident activities (memory-bandwidth contention on a node, link
sharing on the network).  Whenever membership changes, every activity's
remaining work is advanced at the old rate and its completion event is
re-scheduled at the new rate.

Two sharing disciplines are provided:

* :class:`FairShareChannel` — capacity split equally among active
  activities (network links).
* :class:`ContentionDomain` — each activity runs at
  ``1 / ((1 - m) + m * max(1, D))`` of nominal speed, where ``m`` is the
  activity's memory intensity and ``D`` the total relative bandwidth
  demand on the domain (compute nodes).  This reproduces the classic
  roofline-style slowdown of co-scheduled memory-bound ranks.

Cost model: a membership change settles and re-rates every co-resident
activity — that part is inherent to fair sharing — but the aggregate
terms (total weight, total demand) are computed once per change instead
of once per activity, and the pool re-arms a *single* tombstoned
completion timer at the earliest ETA instead of spawning one timer
process per activity.  A change therefore costs O(n) arithmetic and
O(log n) heap work, where the previous implementation cost O(n^2)
arithmetic plus n process spawns.
"""

from __future__ import annotations

import itertools
import math
from typing import Any

from ..sim.core import Environment, Event, Timeout

__all__ = ["Activity", "RatePool", "FairShareChannel", "ContentionDomain"]


class Activity:
    """One unit of rate-controlled work inside a :class:`RatePool`.

    Attributes
    ----------
    done:
        Event that fires when all work has been performed.  Its value is
        the activity itself.
    """

    _ids = itertools.count()

    __slots__ = (
        "pool",
        "work",
        "remaining",
        "weight",
        "demand",
        "mem_intensity",
        "rate",
        "rate_cap",
        "done",
        "started_at",
        "finished_at",
        "_last_update",
        "tag",
        "payload",
        "uid",
        "on_end",
        "_ended",
    )

    def __init__(
        self,
        pool: "RatePool",
        work: float,
        weight: float = 1.0,
        demand: float = 0.0,
        mem_intensity: float = 0.0,
        tag: str = "",
        payload: Any = None,
        rate_cap: float = math.inf,
    ) -> None:
        if work < 0:
            raise ValueError(f"negative work {work}")
        self.uid = next(Activity._ids)
        self.pool = pool
        self.work = float(work)
        self.remaining = float(work)
        self.weight = weight
        self.demand = demand
        self.mem_intensity = mem_intensity
        self.rate = 0.0
        self.rate_cap = rate_cap
        self.done: Event = pool.env.event()
        self.started_at = pool.env.now
        self.finished_at: float | None = None
        self._last_update = pool.env.now
        self.tag = tag
        self.payload = payload
        #: Callbacks invoked exactly once when the activity ends for
        #: any reason (completion, cancellation, node failure).
        self.on_end: list = []
        self._ended = False

    @property
    def progress(self) -> float:
        """Fraction of work completed so far (0..1), as of 'now'."""
        if self.work == 0:
            return 1.0
        remaining = self.remaining
        if self.finished_at is None and self.rate > 0:
            elapsed = self.pool.env.now - self._last_update
            remaining = max(0.0, remaining - self.rate * elapsed)
        return 1.0 - remaining / self.work

    def cancel(self) -> None:
        """Abort the activity; ``done`` never fires."""
        self.pool._remove(self, fire=False)

    def _run_on_end(self) -> None:
        if self._ended:
            return
        self._ended = True
        for callback in self.on_end:
            callback(self)


class RatePool:
    """Base class: a set of activities whose rates are recomputed jointly."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: Insertion-ordered set of in-flight activities (dict keys).
        self._active: dict[Activity, None] = {}
        #: Cumulative work delivered by this pool (for accounting).
        self.delivered = 0.0
        #: Global rate multiplier (fault injection: a slowed node or a
        #: degraded link runs every activity at a fraction of nominal).
        self.speed_factor = 1.0
        #: Running aggregates, maintained incrementally on membership
        #: change and recomputed exactly at every reschedule.
        self._total_weight = 0.0
        self._total_demand = 0.0
        #: The pool's single pending completion timer, if any.
        self._timer: Timeout | None = None
        #: Number of rate recomputations (perf observability).
        self.reschedules = 0

    # -- public API -----------------------------------------------------

    @property
    def active(self) -> list["Activity"]:
        """The in-flight activities, oldest first."""
        return list(self._active)

    def execute(
        self,
        work: float,
        weight: float = 1.0,
        demand: float = 0.0,
        mem_intensity: float = 0.0,
        tag: str = "",
        payload: Any = None,
        rate_cap: float = math.inf,
    ) -> Activity:
        """Start an activity; returns it (wait on ``activity.done``)."""
        act = Activity(
            self, work, weight, demand, mem_intensity, tag, payload, rate_cap
        )
        self._settle()
        self._active[act] = None
        self._total_weight += act.weight
        self._total_demand += act.demand
        if act.remaining <= 0:
            self._finish(act)
        self._reschedule()
        return act

    @property
    def load(self) -> float:
        """Total demand currently placed on the pool."""
        return self._total_demand

    def set_speed_factor(self, factor: float) -> None:
        """Change the pool-wide rate multiplier, re-pacing in-flight work.

        Used by fault injection to slow a node (or a link) down and to
        restore it: remaining work is advanced at the old rate first, so
        the change is progress-preserving and fully deterministic.
        """
        if factor <= 0:
            raise ValueError(f"speed factor must be positive, got {factor}")
        self._settle()
        self.speed_factor = float(factor)
        self._reschedule()

    def rate_of(self, act: Activity) -> float:
        """Current instantaneous rate of ``act`` — overridden by pools."""
        raise NotImplementedError

    # -- internals --------------------------------------------------------

    def _settle(self) -> None:
        """Advance every active activity's remaining work to 'now'."""
        now = self.env.now
        for act in self._active:
            elapsed = now - act._last_update
            if elapsed > 0 and act.rate > 0:
                done_work = min(act.remaining, act.rate * elapsed)
                act.remaining -= done_work
                self.delivered += done_work
            act._last_update = now

    def _refresh_aggregates(self) -> None:
        """Recompute the running sums exactly (kills float drift)."""
        total_weight = 0.0
        total_demand = 0.0
        for act in self._active:
            total_weight += act.weight
            total_demand += act.demand
        self._total_weight = total_weight
        self._total_demand = total_demand

    def _reschedule(self) -> None:
        """Recompute all rates once and re-arm the pool's single timer."""
        self.reschedules += 1
        self._refresh_aggregates()
        now = self.env.now
        finished: list[Activity] = []
        next_eta = math.inf
        for act in self._active:
            act.rate = self.rate_of(act)
            if act.remaining <= 1e-12:
                finished.append(act)
                continue
            if act.rate <= 0:
                continue  # stalled: no timer until conditions change
            eta = act.remaining / act.rate
            if now + eta <= now:
                # Remaining work is below float resolution of the
                # clock: it can never make representable progress.
                finished.append(act)
                continue
            if eta < next_eta:
                next_eta = eta
        if finished:
            for act in finished:
                self._finish(act)
            # Departures change rates for the survivors.
            self._settle()
            self._reschedule()
        else:
            self._arm_timer(next_eta)

    def _arm_timer(self, eta: float) -> None:
        """Point the pool's single completion timer at ``eta`` from now.

        The superseded timer (if any) is tombstoned in the event heap
        rather than removed — O(1), and the kernel skips it when popped.
        """
        if self._timer is not None:
            self._timer.cancel_scheduled()
            self._timer = None
        if eta is not math.inf:
            timer = Timeout(self.env, eta)
            timer.callbacks.append(self._on_timer)
            self._timer = timer

    def _on_timer(self, _event: Event) -> None:
        """The earliest ETA elapsed: settle, complete, re-arm."""
        self._timer = None
        self._settle()
        finished = [
            act
            for act in self._active
            if act.remaining <= 1e-9 * max(1.0, act.work)
        ]
        for act in finished:
            act.remaining = 0.0
            self._finish(act)
        # Float drift may leave a sliver of work on the nearest
        # activity; _reschedule re-arms for the remainder (and treats
        # slivers below clock resolution as done).
        self._settle()
        self._reschedule()

    def _finish(self, act: Activity) -> None:
        if act.finished_at is not None:
            return
        act.finished_at = self.env.now
        if act in self._active:
            del self._active[act]
            self._total_weight -= act.weight
            self._total_demand -= act.demand
        act._run_on_end()
        if not act.done.triggered:
            act.done.succeed(act)

    def fail_all(self, exc: BaseException) -> None:
        """Abort every active activity with ``exc`` (node failure).

        Waiters see the exception; activities nobody awaited yet fail
        silently (pre-defused), so a crash cannot take down the whole
        simulation from an unobserved event.
        """
        self._settle()
        victims = list(self._active)
        self._active.clear()
        self._total_weight = 0.0
        self._total_demand = 0.0
        self._arm_timer(math.inf)
        for act in victims:
            act.finished_at = self.env.now
            act._run_on_end()
            if not act.done.triggered:
                act.done.fail(exc)
                act.done.defuse()

    def _remove(self, act: Activity, fire: bool) -> None:
        self._settle()
        if act in self._active:
            del self._active[act]
            self._total_weight -= act.weight
            self._total_demand -= act.demand
        if act.finished_at is None:
            act.finished_at = self.env.now
        act._run_on_end()
        if fire and not act.done.triggered:
            act.done.succeed(act)
        self._reschedule()


class FairShareChannel(RatePool):
    """Capacity split equally among active activities, weighted.

    Used for network links: ``rate_i = capacity * w_i / sum(w)``.
    """

    def __init__(self, env: Environment, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        super().__init__(env)
        self.capacity = capacity

    def rate_of(self, act: Activity) -> float:
        total_weight = self._total_weight
        if total_weight <= 0:
            return 0.0
        return min(
            act.rate_cap,
            self.speed_factor * self.capacity * act.weight / total_weight,
        )

    def utilization(self) -> float:
        """1.0 while any transfer is in flight, else 0.0."""
        return 1.0 if self._active else 0.0


class ContentionDomain(RatePool):
    """Memory-bandwidth contention on one node.

    Each activity represents a group of ranks; ``demand`` is its total
    relative bandwidth demand (ranks × per-rank demand), and
    ``mem_intensity`` the fraction of its critical path that is
    memory-bound.  When the sum of demands exceeds the capacity, the
    memory-bound fraction stretches proportionally:

    ``slowdown = (1 - m) + m * max(1, D / capacity)``
    """

    def __init__(self, env: Environment, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        super().__init__(env)
        self.capacity = capacity

    def pressure(self) -> float:
        """Total demand relative to capacity (1.0 = saturated)."""
        return self.load / self.capacity

    def rate_of(self, act: Activity) -> float:
        overload = max(1.0, self._total_demand / self.capacity)
        slowdown = (1.0 - act.mem_intensity) + act.mem_intensity * overload
        return self.speed_factor * act.weight / slowdown

    def slowdown_of(self, act: Activity) -> float:
        overload = max(1.0, self._total_demand / self.capacity)
        return (1.0 - act.mem_intensity) + act.mem_intensity * overload


def effective_time(work: float, rate: float) -> float:
    """Helper: time to complete ``work`` at constant ``rate``."""
    if rate <= 0:
        return math.inf
    return work / rate
