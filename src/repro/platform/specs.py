"""Hardware specifications for simulated platforms.

The experiments in the paper all ran on OLCF Summit; the constants here
follow the public system documentation the paper cites: 2 × POWER9 with
44 physical cores of which 2 are reserved for the OS (42 usable), 6
V100 GPUs, 512 GB DDR4 per node, dual-rail EDR InfiniBand in a
non-blocking (but in practice tapered) fat tree.

Absolute speeds are expressed in abstract "work units per second"; the
workload models are calibrated in the same units, so only ratios
matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["NodeSpec", "NetworkSpec", "ClusterSpec", "SUMMIT", "summit_like"]


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static description of one compute node."""

    #: Physical cores present on the node.
    physical_cores: int = 44
    #: Cores reserved for the operating system (not schedulable).
    os_reserved_cores: int = 2
    #: GPUs per node.
    gpus: int = 6
    #: Memory in MiB.
    memory_mib: int = 512 * 1024
    #: Work units per second delivered by one core at full speed.
    core_speed: float = 1.0
    #: Work units per second delivered by one GPU at full speed.
    gpu_speed: float = 40.0
    #: Aggregate memory bandwidth, in units of "core-demand": a value of
    #: ``N`` means N cores each demanding 1.0 saturate the memory bus.
    #: STREAM-like saturation well below the full core count, as on
    #: POWER9: ~18 memory-bound ranks saturate the two sockets.
    memory_bandwidth: float = 18.0

    @property
    def usable_cores(self) -> int:
        """Cores available to the pilot (physical minus OS-reserved)."""
        return self.physical_cores - self.os_reserved_cores


@dataclass(frozen=True, slots=True)
class NetworkSpec:
    """Interconnect description.

    The fabric is modeled as per-node injection links feeding a shared
    core whose usable bisection tapers with node count:
    ``bisection = link_bandwidth * nodes ** taper_exponent``.
    """

    #: One-way small-message latency in seconds.
    latency: float = 1.5e-6
    #: Per-node injection bandwidth in bytes/second (dual-rail EDR).
    link_bandwidth: float = 23e9
    #: Exponent of the bisection taper (1.0 = full bisection).
    taper_exponent: float = 0.82
    #: Per-hop software/protocol overhead per message, seconds.
    message_overhead: float = 5e-6


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """A cluster: homogeneous nodes plus an interconnect."""

    name: str = "summit"
    nodes: int = 32
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: Seconds for the batch system to start a granted job on its nodes.
    job_launch_overhead: float = 15.0

    def with_nodes(self, nodes: int) -> "ClusterSpec":
        return replace(self, nodes=nodes)


#: The Summit-like reference platform used by all paper experiments.
SUMMIT = ClusterSpec()


def summit_like(nodes: int, name: str = "summit") -> ClusterSpec:
    """A Summit-flavoured cluster spec with ``nodes`` compute nodes."""
    return ClusterSpec(name=name, nodes=nodes)
