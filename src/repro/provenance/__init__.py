"""repro.provenance — the whole-run happens-before + dataflow graph.

Telemetry (PR 5) gives one causal span tree per task; this package
stitches those trees, plus the cross-task interactions the capture
layer observes (store reads/writes, RPC request/response pairs, raptor
dispatch, scheduler grants), into one run-wide event DAG.  On top of it:
``python -m repro why <task>`` prints root-cause chains, the critical-
path analysis attributes end-to-end makespan to typed *edges* rather
than spans, and the validators assert graph invariants the same way the
runtime sanitizers do.

Capture rides the telemetry hub under the identical zero-perturbation
contract — host-memory bookkeeping off ``env.now`` only — enforced
differentially in ``tests/telemetry/test_zero_perturbation.py``.
"""

from .builder import (
    ProvenanceCapture,
    build_graph,
    default_provenance,
    set_default_provenance,
)
from .critical_path import (
    attribution_total,
    critical_path,
    edge_attribution,
    render_critical_path,
)
from .graph import EDGE_KINDS, EVENT_KINDS, ProvEdge, ProvEvent, ProvGraph
from .query import (
    chain_components,
    last_constraint,
    render_why,
    resolve_target,
    why_chain,
)
from .validate import (
    GraphViolation,
    assert_valid,
    report_violations,
    validate_graph,
)

__all__ = [
    "EDGE_KINDS",
    "EVENT_KINDS",
    "GraphViolation",
    "ProvEdge",
    "ProvEvent",
    "ProvGraph",
    "ProvenanceCapture",
    "assert_valid",
    "attribution_total",
    "build_graph",
    "chain_components",
    "critical_path",
    "default_provenance",
    "edge_attribution",
    "last_constraint",
    "render_critical_path",
    "render_why",
    "report_violations",
    "resolve_target",
    "set_default_provenance",
    "validate_graph",
    "why_chain",
]
