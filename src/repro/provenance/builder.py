"""Capture hooks and the run-graph builder.

:class:`ProvenanceCapture` rides the telemetry hub under the same hard
zero-perturbation contract: every ``note_*`` method is a host-memory
append keyed off ``env.now`` — no kernel events, no processes, no
timeouts, no randomness — so the simulated event stream is byte-
identical with capture on or off (the differential battery in
``tests/telemetry/test_zero_perturbation.py`` enforces it).

The instrumented sites are the cross-task interaction points the span
trees alone cannot see:

* :meth:`note_rpc_send` / :meth:`note_rpc_serve` pair a client's
  request with the server-side arrival and rank grant (RPC queueing);
* :meth:`watch_store` taps a :class:`~repro.soma.storage.NamespaceStore`
  so every append and every query becomes a write/read event, giving
  store-mediated dataflow edges via the per-source index;
* :meth:`note_grant` marks the agent scheduler placing a task
  (wait-on-grant / launch edges);
* :meth:`note_raptor_submit` / :meth:`note_raptor_dispatch` pair a
  function call's submission with its dispatch to a resident worker.

:func:`build_graph` then stitches the hub's span trees and the capture
notes into one :class:`~repro.provenance.graph.ProvGraph` after the run
finished — graph construction is pure post-processing and never touches
the simulation.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable

from .graph import ProvEvent, ProvGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..soma.storage import NamespaceStore, PublishedRecord
    from ..telemetry.spans import Span, SpanContext, Telemetry

__all__ = [
    "ProvenanceCapture",
    "build_graph",
    "default_provenance",
    "set_default_provenance",
]

#: Process-wide default for provenance capture on new Telemetry hubs,
#: mirroring ``set_default_telemetry`` / ``REPRO_TELEMETRY``.
_DEFAULT_PROVENANCE: bool | None = None


def set_default_provenance(enabled: bool | None) -> bool | None:
    """Set the process-wide capture default; returns the previous value."""
    global _DEFAULT_PROVENANCE
    previous, _DEFAULT_PROVENANCE = _DEFAULT_PROVENANCE, enabled
    return previous


def default_provenance() -> bool:
    """Effective default: :func:`set_default_provenance` > ``REPRO_PROVENANCE``."""
    if _DEFAULT_PROVENANCE is not None:
        return _DEFAULT_PROVENANCE
    return os.environ.get("REPRO_PROVENANCE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


class ProvenanceCapture:
    """Host-memory event notebook attached to one telemetry hub.

    Context attribution reuses the hub's ambient machinery: a note taken
    while a span is active is assigned to that span's program order, so
    cross-task edges land between the right per-task trees.  ``close()``
    freezes the notebook — post-run analysis reads (collectors walking
    the stores) no longer append, keeping goldens independent of how
    much offline analysis ran before the graph was built.
    """

    __slots__ = (
        "telemetry",
        "closed",
        "rpc_sends",
        "rpc_serves",
        "store_writes",
        "store_reads",
        "grants",
        "raptor_submits",
        "raptor_dispatches",
        "_nstores",
    )

    def __init__(self, telemetry: "Telemetry") -> None:
        self.telemetry = telemetry
        self.closed = False
        #: (request uid, method, client name, t, attempt span id).
        self.rpc_sends: list[tuple[str, str, str, float, int | None]] = []
        #: (request uid, server name, arrival t, grant t, serve span id).
        self.rpc_serves: list[tuple[str, str, float, float, int | None]] = []
        #: (store id, store name, record t, source, nbytes, span id).
        self.store_writes: list[
            tuple[int, str, float, str, float, int | None]
        ] = []
        #: (store id, store name, op, source filter, t, span id,
        #:  matched write key, record count).
        self.store_reads: list[
            tuple[int, str, str, str | None, float, int | None, tuple | None, int]
        ] = []
        #: (task uid, t, placed nodes).
        self.grants: list[tuple[str, float, tuple[str, ...]]] = []
        #: (call uid, t, submitting span id).
        self.raptor_submits: list[tuple[Any, float, int | None]] = []
        #: (call uid, worker uid, t).
        self.raptor_dispatches: list[tuple[Any, int, float]] = []
        self._nstores = 0

    # -- context helpers ----------------------------------------------

    def _now(self) -> float:
        return self.telemetry.env.now

    def _ctx_id(self) -> int | None:
        ctx = self.telemetry.current()
        return ctx.span_id if ctx is not None else None

    def close(self) -> None:
        self.closed = True

    def counters(self) -> dict[str, int]:
        """Note counts (host-side bookkeeping, never sim state)."""
        return {
            "rpc_sends": len(self.rpc_sends),
            "rpc_serves": len(self.rpc_serves),
            "store_writes": len(self.store_writes),
            "store_reads": len(self.store_reads),
            "grants": len(self.grants),
            "raptor_submits": len(self.raptor_submits),
            "raptor_dispatches": len(self.raptor_dispatches),
        }

    # -- RPC pairing ---------------------------------------------------

    def note_rpc_send(
        self, uid: str, method: str, client: str, t: float, span: "Span | None"
    ) -> None:
        if self.closed:
            return
        span_id = span.span_id if span is not None else None
        self.rpc_sends.append((uid, method, client, t, span_id))

    def note_rpc_serve(
        self, uid: str, server: str, arrival: float, granted: float
    ) -> None:
        if self.closed:
            return
        self.rpc_serves.append((uid, server, arrival, granted, self._ctx_id()))

    # -- store dataflow ------------------------------------------------

    def watch_store(self, store: "NamespaceStore", name: str | None = None) -> None:
        """Install write/read taps on a namespace store.

        ``name`` disambiguates sharded deployments where many stores
        share one namespace (``s01.hardware`` vs ``s02.hardware``); the
        assigned store id keys write/read matching so records from
        different instances never cross-match.
        """
        sid = self._nstores
        self._nstores += 1
        label = name if name is not None else store.namespace

        def write_tap(record: "PublishedRecord") -> None:
            self._note_store_write(sid, label, record)

        def read_tap(
            op: str, source: str | None, records: "list[PublishedRecord]"
        ) -> None:
            self._note_store_read(sid, label, op, source, records)

        store.write_tap = write_tap
        store.read_tap = read_tap

    def _note_store_write(
        self, sid: int, name: str, record: "PublishedRecord"
    ) -> None:
        if self.closed:
            return
        self.store_writes.append(
            (sid, name, record.time, record.source, record.nbytes, self._ctx_id())
        )

    def _note_store_read(
        self,
        sid: int,
        name: str,
        op: str,
        source: str | None,
        records: "list[PublishedRecord]",
    ) -> None:
        if self.closed:
            return
        matched = None
        if records:
            last = records[-1]
            matched = (sid, last.time, last.source)
        self.store_reads.append(
            (sid, name, op, source, self._now(), self._ctx_id(), matched, len(records))
        )

    # -- scheduler / raptor -------------------------------------------

    def note_grant(self, uid: str, t: float, nodes: Iterable[str]) -> None:
        if self.closed:
            return
        self.grants.append((uid, t, tuple(nodes)))

    def note_raptor_submit(
        self, uid: Any, t: float, ctx: "SpanContext | None"
    ) -> None:
        if self.closed:
            return
        self.raptor_submits.append((uid, t, ctx.span_id if ctx is not None else None))

    def note_raptor_dispatch(self, uid: Any, worker_uid: int, t: float) -> None:
        if self.closed:
            return
        self.raptor_dispatches.append((uid, worker_uid, t))


#: Edge kinds that get fault-window annotations when they overlap one.
_FAULT_ANNOTATED_KINDS = frozenset(
    (
        "span",
        "program",
        "rpc.wire",
        "rpc.queue",
        "wait-on-grant",
        "launch",
        "raptor.queue",
        "raptor.dispatch",
        "wait-on-store",
    )
)


def build_graph(
    result: Any = None,
    *,
    hub: "Telemetry | None" = None,
    capture: ProvenanceCapture | None = None,
    plan: Any = None,
    close: bool = True,
) -> ProvGraph:
    """Stitch one finished run into a :class:`ProvGraph`.

    ``result`` is a :class:`~repro.experiments.harness.WorkflowResult`;
    ``hub``/``capture``/``plan`` override its telemetry hub, capture
    notebook, and fault plan (a bare hub with no capture still yields
    the span-skeleton graph).  ``close=True`` freezes the capture so
    later offline store reads stop appending notes.
    """
    if hub is None:
        if result is None:
            raise ValueError("build_graph needs a result or an explicit hub")
        hub = result.session.telemetry
    if not hub.enabled:
        raise ValueError("provenance needs an enabled telemetry hub")
    if capture is None:
        capture = hub.provenance
    if plan is None and result is not None and result.injector is not None:
        plan = result.injector.plan
    finished = float(result.finished_at if result is not None else hub.env.now)

    g = ProvGraph()
    root = g.add_event("run.start", 0.0, "run", component="run")
    end = g.add_event("run.end", finished, "run", component="run")
    g.root, g.end = root, end

    # 1. Span interval events, one start/end pair per span.
    starts: dict[int, ProvEvent] = {}
    ends: dict[int, ProvEvent] = {}
    raptor_calls: dict[str, int] = {}
    sched_spans: dict[str, int] = {}
    exec_spans: dict[str, int] = {}
    for span in hub.spans:
        label = f"{span.component}:{span.name}"
        uid = span.attributes.get("uid")
        s = g.add_event(
            "span.start",
            span.start,
            label,
            ref=str(span.span_id),
            component=span.component,
        )
        end_t = span.end if span.end is not None else finished
        e = g.add_event(
            "span.end",
            end_t,
            label,
            ref=str(span.span_id),
            component=span.component,
            open=span.end is None,
        )
        g.add_edge(s, e, "span", name=span.name)
        starts[span.span_id] = s
        ends[span.span_id] = e
        g.span_events[span.span_id] = (s, e)
        if isinstance(uid, str):
            if span.name == f"task:{uid}":
                g.task_events[uid] = (s, e)
            elif span.name == "agent.schedule":
                sched_spans[uid] = span.span_id
            elif span.name == "agent.execute":
                exec_spans[uid] = span.span_id
        if span.name.startswith("raptor.call:"):
            raptor_calls[span.name.split(":", 1)[1]] = span.span_id

    # 2. Program-order anchors per container (a span, or the run root).
    # Each anchor is (t, rank, seq, event, entry_kind): child span starts
    # and capture events assigned to the container, sorted by time with
    # a deterministic tie-break, then chained sequentially.
    anchors: dict[int | None, list[tuple[float, int, int, ProvEvent, str]]] = {}

    def anchor(
        container: int | None, event: ProvEvent, entry_kind: str, rank: int
    ) -> None:
        if container is not None and container not in starts:
            container = None
        anchors.setdefault(container, []).append(
            (event.t, rank, event.eid, event, entry_kind)
        )

    for span in hub.spans:
        anchor(span.parent_id, starts[span.span_id], "program", 0)

    # 3. Capture events.
    sends_by_uid: dict[str, ProvEvent] = {}
    if capture is not None:
        for uid, method, client, t, span_id in capture.rpc_sends:
            ev = g.add_event(
                "rpc.send", t, f"rpc.send:{method}", ref=uid, component="rpc",
                client=client,
            )
            sends_by_uid[uid] = ev
            anchor(span_id, ev, "program", 1)
        for uid, server, arrival, granted, serve_id in capture.rpc_serves:
            grant_ev = g.add_event(
                "rpc.grant", granted, f"rpc.grant:{server}", ref=uid,
                component="rpc", queue_time=granted - arrival,
            )
            serve = starts.get(serve_id) if serve_id is not None else None
            if serve is not None:
                g.add_edge(serve, grant_ev, "rpc.queue")
                g.add_edge(grant_ev, ends[serve_id], "program")
                send_ev = sends_by_uid.get(uid)
                if send_ev is not None and send_ev.t <= serve.t:
                    g.add_edge(send_ev, serve, "rpc.wire")
            else:  # pragma: no cover - defensive (serve span always set)
                g.add_edge(root, grant_ev, "run")
        writes_by_key: dict[tuple, ProvEvent] = {}
        for sid, name, t, source, nbytes, span_id in capture.store_writes:
            ev = g.add_event(
                "store.write", t, f"store.write:{name}",
                ref=f"{name}/{source}", component="soma-service", nbytes=nbytes,
            )
            writes_by_key[(sid, t, source)] = ev
            anchor(span_id, ev, "program", 1)
        for sid, name, op, source, t, span_id, matched, count in capture.store_reads:
            ev = g.add_event(
                "store.read", t, f"store.read:{name}",
                ref=f"{name}/{source or '*'}", component="soma-service",
                op=op, records=count,
            )
            anchor(span_id, ev, "program", 1)
            write_ev = writes_by_key.get(matched) if matched is not None else None
            if write_ev is not None and write_ev.t <= t:
                g.add_edge(write_ev, ev, "wait-on-store", records=count)
        for uid, t, nodes in capture.grants:
            ev = g.add_event(
                "sched.grant", t, f"grant:{uid}", ref=uid,
                component="rp-agent", nodes=",".join(nodes),
            )
            sched_id = sched_spans.get(uid)
            if sched_id is not None and starts[sched_id].t <= t:
                g.add_edge(starts[sched_id], ev, "wait-on-grant")
                if t <= ends[sched_id].t:
                    g.add_edge(ev, ends[sched_id], "program")
            else:
                g.add_edge(root, ev, "run")
            exec_id = exec_spans.get(uid)
            if exec_id is not None and t <= starts[exec_id].t:
                g.add_edge(ev, starts[exec_id], "launch")
        submits_by_uid: dict[Any, ProvEvent] = {}
        for uid, t, span_id in capture.raptor_submits:
            ev = g.add_event(
                "raptor.submit", t, f"raptor.submit:{uid}", ref=str(uid),
                component="raptor",
            )
            submits_by_uid[uid] = ev
            anchor(span_id, ev, "program", 1)
        for uid, worker_uid, t in capture.raptor_dispatches:
            ev = g.add_event(
                "raptor.dispatch", t, f"raptor.dispatch:{uid}", ref=str(uid),
                component="raptor", worker=worker_uid,
            )
            submit_ev = submits_by_uid.get(uid)
            if submit_ev is not None and submit_ev.t <= t:
                g.add_edge(submit_ev, ev, "raptor.queue")
            else:
                g.add_edge(root, ev, "run")
            call_id = raptor_calls.get(str(uid))
            if call_id is not None and t <= starts[call_id].t:
                g.add_edge(ev, starts[call_id], "raptor.dispatch")

    # 4. Chain each container's anchors in program order.  A container's
    # closing edge is skipped when the last anchor outlives it (e.g. a
    # duplicate RPC served after the originating attempt failed).
    for container, entries in anchors.items():
        entries.sort(key=lambda entry: entry[:3])
        if container is None:
            prev: ProvEvent = root
            close_ev: ProvEvent = end
        else:
            prev = starts[container]
            close_ev = ends[container]
        for _t, _rank, _seq, event, entry_kind in entries:
            g.add_edge(prev, event, entry_kind)
            prev = event
        if prev.t <= close_ev.t:
            g.add_edge(prev, close_ev, "program" if container is not None else "run")

    # 5. Join edges: child completion constrains parent completion when
    # the child actually finished first; root spans join the run end.
    for span in hub.spans:
        child_end = ends[span.span_id]
        if span.parent_id is not None and span.parent_id in ends:
            parent_end = ends[span.parent_id]
            if child_end.t <= parent_end.t:
                g.add_edge(child_end, parent_end, "join")
        elif span.parent_id is None:
            g.add_edge(child_end, end, "run")

    # 6. Fault windows from the plan, annotated onto overlapping edges.
    windows: list[tuple[str, float, float]] = []
    if plan is not None:
        for fe in plan.timeline():
            if fe.time > finished:
                continue
            t0 = fe.time
            t1 = finished if fe.duration is None else min(finished, t0 + fe.duration)
            fs = g.add_event(
                "fault.start", t0, f"fault:{fe.kind}", ref=fe.kind,
                component="faults", seq=fe.seq,
            )
            fend = g.add_event(
                "fault.end", t1, f"fault:{fe.kind}", ref=fe.kind,
                component="faults", seq=fe.seq,
            )
            g.add_edge(root, fs, "run")
            g.add_edge(fs, fend, "fault.window")
            g.add_edge(fend, end, "run")
            windows.append((fe.kind, t0, t1))
    if windows:
        for edge in g.edges:
            if edge.kind not in _FAULT_ANNOTATED_KINDS or edge.duration <= 0:
                continue
            overlapping = [
                f"{kind}@[{t0:g},{t1:g})"
                for kind, t0, t1 in windows
                if t0 < edge.t_dst and t1 > edge.t_src
            ]
            if overlapping:
                edge.attrs["faults"] = overlapping

    if close and capture is not None:
        capture.close()
    return g
