"""Critical-path analysis: makespan attributed to typed edges.

The critical path is the most-constraining chain of the run-end event
(:func:`~repro.provenance.query.why_chain` walked from ``run.end``),
reversed into root-to-end order.  Because every event on the chain is
entered by exactly one walked edge and edge durations telescope —
``sum(t_dst - t_src) == t_end - t_root`` — the attribution table is
*exact*: every simulated second of the run lands on exactly one edge
kind, so "38% of the makespan was wait-on-grant" is an identity, not an
estimate.
"""

from __future__ import annotations

from .graph import ProvEdge, ProvGraph
from .query import why_chain

__all__ = [
    "attribution_total",
    "critical_path",
    "edge_attribution",
    "render_critical_path",
]


def critical_path(graph: ProvGraph) -> list[ProvEdge]:
    """The run's backbone chain, root-most edge first."""
    if graph.end is None:
        return []
    return list(reversed(why_chain(graph, graph.end)))


def edge_attribution(path: list[ProvEdge]) -> dict[str, float]:
    """Seconds of makespan per edge kind, largest share first."""
    totals: dict[str, float] = {}
    for edge in path:
        totals[edge.kind] = totals.get(edge.kind, 0.0) + edge.duration
    return dict(
        sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    )


def attribution_total(path: list[ProvEdge]) -> float:
    """Telescoping sum of the path's edge durations (== makespan)."""
    return sum(edge.duration for edge in path)


def render_critical_path(
    graph: ProvGraph, path: list[ProvEdge], top: int = 12
) -> str:
    """The critical-path table: kind shares, then the costliest edges."""
    total = attribution_total(path)
    span = (graph.end.t - graph.root.t) if graph.end and graph.root else 0.0
    lines = [
        f"critical path: {len(path)} edge(s), {total:.2f}s attributed "
        f"of {span:.2f}s end-to-end"
    ]
    lines.append("")
    lines.append(f"{'edge kind':<16} {'edges':>6} {'seconds':>12} {'share':>8}")
    shares = edge_attribution(path)
    counts: dict[str, int] = {}
    for edge in path:
        counts[edge.kind] = counts.get(edge.kind, 0) + 1
    for kind, seconds in shares.items():
        pct = 100.0 * seconds / total if total else 0.0
        lines.append(
            f"{kind:<16} {counts[kind]:>6} {seconds:>12.2f} {pct:>7.1f}%"
        )
    lines.append("")
    lines.append(f"top {top} edge(s) by time:")
    costly = sorted(path, key=lambda e: (-e.duration, e.t_src))[:top]
    for edge in costly:
        src = graph.event(edge.src)
        dst = graph.event(edge.dst)
        note = ""
        faults = edge.attrs.get("faults")
        if faults:
            note = "  !! during " + ", ".join(faults)
        lines.append(
            f"  {edge.t_src:>10.2f} -> {edge.t_dst:<10.2f} "
            f"{edge.duration:>9.2f}s  {edge.kind:<14} "
            f"{src.label} -> {dst.label}{note}"
        )
    return "\n".join(lines)
