"""The run-wide happens-before + dataflow DAG.

Nodes are timestamped *events*, not intervals: every telemetry span
contributes a ``span.start`` and a ``span.end`` event, and every
cross-component interaction the capture layer observed (RPC send and
rank-grant, store write and read, scheduler grant, raptor dispatch,
fault window open/close) contributes one event at the simulated time it
happened.  Edges are typed happens-before constraints; the invariant
every edge satisfies — pinned by the validators and the Hypothesis
battery — is ``src.t <= dst.t`` in simulated time.

The event formulation is what PROBE's ``hb_graph`` uses and it is what
makes critical-path attribution exact: walking backward from ``run.end``
along most-constraining in-edges yields a chain whose edge durations
telescope to precisely the end-to-end makespan, so every second of the
run is attributed to exactly one typed edge.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["EDGE_KINDS", "EVENT_KINDS", "ProvEdge", "ProvEvent", "ProvGraph"]

#: Every event kind the builder emits.
EVENT_KINDS: tuple[str, ...] = (
    "run.start",
    "run.end",
    "span.start",
    "span.end",
    "rpc.send",
    "rpc.grant",
    "store.write",
    "store.read",
    "sched.grant",
    "raptor.submit",
    "raptor.dispatch",
    "fault.start",
    "fault.end",
)

#: The edge taxonomy (DESIGN.md section 3f).  "Wait" kinds carry the
#: time a consumer spent blocked on a producer; structural kinds
#: (run/span/program/join) stitch the per-task trees into one DAG.
EDGE_KINDS: tuple[str, ...] = (
    "run",            # run.start -> trace roots / fault events -> run.end
    "span",           # span.start -> span.end (the interval itself)
    "program",        # sequential program order within one span
    "join",           # child span.end -> parent span.end
    "rpc.wire",       # client rpc.send -> server rpc.serve start
    "rpc.queue",      # rpc.serve start -> rank grant (ingest queueing)
    "wait-on-grant",  # agent.schedule start -> scheduler grant
    "launch",         # scheduler grant -> agent.execute start
    "raptor.queue",   # raptor.submit -> raptor.dispatch (backlog wait)
    "raptor.dispatch",  # raptor.dispatch -> raptor.call start
    "wait-on-store",  # store.write -> store.read (dataflow)
    "fault.window",   # fault.start -> fault.end
)


@dataclass(slots=True)
class ProvEvent:
    """One timestamped node of the happens-before graph."""

    eid: int
    kind: str
    t: float
    label: str
    #: Stable external identity: task/request uid, span id, store name.
    ref: str = ""
    #: Telemetry component track the event belongs to ("" if none).
    component: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProvEvent #{self.eid} {self.kind} {self.label!r} t={self.t:g}>"


@dataclass(slots=True)
class ProvEdge:
    """One typed happens-before constraint between two events."""

    src: int
    dst: int
    kind: str
    t_src: float
    t_dst: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_dst - self.t_src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProvEdge {self.kind} #{self.src}->#{self.dst} "
            f"[{self.t_src:g}, {self.t_dst:g}]>"
        )


class ProvGraph:
    """Event DAG with per-node in/out edge indexes.

    Build-only structure: events and edges are appended by the builder
    and never removed, so the indexes are plain lists of edge positions
    and iteration order is creation order (deterministic per run).
    """

    def __init__(self) -> None:
        self.events: list[ProvEvent] = []
        self.edges: list[ProvEdge] = []
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self.root: ProvEvent | None = None
        self.end: ProvEvent | None = None
        #: task uid -> (span.start event, span.end event) of its root span.
        self.task_events: dict[str, tuple[ProvEvent, ProvEvent]] = {}
        #: span_id -> (span.start event, span.end event).
        self.span_events: dict[int, tuple[ProvEvent, ProvEvent]] = {}

    def __len__(self) -> int:
        return len(self.events)

    def add_event(
        self,
        kind: str,
        t: float,
        label: str,
        ref: str = "",
        component: str = "",
        **attrs: Any,
    ) -> ProvEvent:
        event = ProvEvent(
            eid=len(self.events),
            kind=kind,
            t=t,
            label=label,
            ref=ref,
            component=component,
            attrs=attrs,
        )
        self.events.append(event)
        return event

    def add_edge(
        self, src: ProvEvent, dst: ProvEvent, kind: str, **attrs: Any
    ) -> ProvEdge:
        edge = ProvEdge(
            src=src.eid,
            dst=dst.eid,
            kind=kind,
            t_src=src.t,
            t_dst=dst.t,
            attrs=attrs,
        )
        index = len(self.edges)
        self.edges.append(edge)
        self._out.setdefault(src.eid, []).append(index)
        self._in.setdefault(dst.eid, []).append(index)
        return edge

    # -- navigation ----------------------------------------------------

    def in_edges(self, event: ProvEvent | int) -> list[ProvEdge]:
        eid = event.eid if isinstance(event, ProvEvent) else event
        return [self.edges[i] for i in self._in.get(eid, ())]

    def out_edges(self, event: ProvEvent | int) -> list[ProvEdge]:
        eid = event.eid if isinstance(event, ProvEvent) else event
        return [self.edges[i] for i in self._out.get(eid, ())]

    def event(self, eid: int) -> ProvEvent:
        return self.events[eid]

    def by_kind(self, kind: str) -> Iterator[ProvEvent]:
        return (e for e in self.events if e.kind == kind)

    def find(self, ref: str, kind: str | None = None) -> ProvEvent | None:
        """First event carrying ``ref`` (optionally of one kind)."""
        for event in self.events:
            if event.ref == ref and (kind is None or event.kind == kind):
                return event
        return None

    # -- summaries -----------------------------------------------------

    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def edge_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for edge in self.edges:
            counts[edge.kind] = counts.get(edge.kind, 0) + 1
        return dict(sorted(counts.items()))

    # -- whole-graph algorithms ---------------------------------------

    def topo_order(self) -> list[int] | None:
        """Kahn topological order of event ids; None if cyclic."""
        indegree = [0] * len(self.events)
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = deque(
            event.eid for event in self.events if indegree[event.eid] == 0
        )
        order: list[int] = []
        while ready:
            eid = ready.popleft()
            order.append(eid)
            for index in self._out.get(eid, ()):
                dst = self.edges[index].dst
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    ready.append(dst)
        if len(order) != len(self.events):
            return None
        return order

    def reachable_from(self, event: ProvEvent | int) -> set[int]:
        """Event ids reachable from ``event`` along forward edges."""
        start = event.eid if isinstance(event, ProvEvent) else event
        seen = {start}
        frontier = deque((start,))
        while frontier:
            eid = frontier.popleft()
            for index in self._out.get(eid, ()):
                dst = self.edges[index].dst
                if dst not in seen:
                    seen.add(dst)
                    frontier.append(dst)
        return seen
