"""Root-cause queries over the happens-before graph.

The core primitive is the *most-constraining predecessor* walk: from
any event, follow the incoming edge whose source happened latest (ties
broken toward the most informative edge kind).  That edge is the reason
the event did not happen earlier, so iterating the walk back to the run
root yields a causal chain — "this task finished late because its
launch waited on a grant because the scheduler pass stalled because..."
— in which every hop is a typed, timestamped constraint.
"""

from __future__ import annotations

from .graph import ProvEdge, ProvEvent, ProvGraph

__all__ = [
    "chain_components",
    "last_constraint",
    "render_why",
    "resolve_target",
    "why_chain",
]

#: Tie-break preference among edges whose sources are simultaneous:
#: prefer the edge that *names a reason* (a wait) over structural glue.
KIND_PRIORITY: dict[str, int] = {
    "wait-on-store": 11,
    "rpc.queue": 10,
    "wait-on-grant": 10,
    "raptor.queue": 10,
    "rpc.wire": 9,
    "launch": 8,
    "raptor.dispatch": 8,
    "span": 6,
    "join": 5,
    "program": 4,
    "fault.window": 2,
    "run": 1,
}


def last_constraint(graph: ProvGraph, event: ProvEvent) -> ProvEdge | None:
    """The incoming edge that held ``event`` back the longest."""
    best: ProvEdge | None = None
    best_key: tuple[float, int, int] | None = None
    for edge in graph.in_edges(event):
        key = (edge.t_src, KIND_PRIORITY.get(edge.kind, 0), -edge.src)
        if best_key is None or key > best_key:
            best, best_key = edge, key
    return best


def why_chain(
    graph: ProvGraph, target: ProvEvent, max_hops: int = 100000
) -> list[ProvEdge]:
    """Most-constraining chain from ``target`` back toward the root.

    Returned target-first (``chain[0].dst == target.eid``); the walk
    stops at the unique in-degree-zero event (the run root on a valid
    graph) or after ``max_hops`` on a malformed one.
    """
    chain: list[ProvEdge] = []
    event = target
    while len(chain) < max_hops:
        edge = last_constraint(graph, event)
        if edge is None:
            break
        chain.append(edge)
        event = graph.event(edge.src)
    return chain


def resolve_target(graph: ProvGraph, token: str) -> ProvEvent | None:
    """Map a CLI token to the event whose lateness to explain.

    ``"run"`` resolves to the run end; a task uid to its root span's
    end; a numeric token to that span id's end; anything else to the
    end of the first span whose label contains the token.
    """
    if token == "run":
        return graph.end
    if token in graph.task_events:
        return graph.task_events[token][1]
    if token.isdigit() and int(token) in graph.span_events:
        return graph.span_events[int(token)][1]
    for span_id in sorted(graph.span_events):
        start, end = graph.span_events[span_id]
        if token in start.label:
            return end
    return None


def chain_components(graph: ProvGraph, chain: list[ProvEdge]) -> list[str]:
    """Component tracks crossed, root-most first, first-touch order."""
    seen: dict[str, None] = {}
    for edge in reversed(chain):
        for eid in (edge.src, edge.dst):
            component = graph.event(eid).component
            if component and component not in ("run", "faults"):
                seen.setdefault(component, None)
    return list(seen)


def render_why(
    graph: ProvGraph, target: ProvEvent, chain: list[ProvEdge], top: int = 30
) -> str:
    """Human-readable root-cause chain, root first, target last.

    Long chains keep the ``top`` hops that cost the most time plus every
    hop carrying a fault annotation; elided stretches collapse into one
    ``...`` line so the output stays a screenful.
    """
    total = target.t - (graph.root.t if graph.root is not None else 0.0)
    lines = [
        f"why {target.label} (t={target.t:.2f}, "
        f"{len(chain)} hop(s), {total:.2f}s end-to-end)"
    ]
    if not chain:
        return lines[0]
    by_cost = sorted(
        range(len(chain)), key=lambda i: chain[i].duration, reverse=True
    )
    keep = set(by_cost[:top])
    for i, edge in enumerate(chain):
        if edge.attrs.get("faults"):
            keep.add(i)
    elided = 0
    elided_time = 0.0

    def flush_elision() -> None:
        nonlocal elided, elided_time
        if elided:
            lines.append(
                f"  ... {elided} quiet hop(s), {elided_time:.2f}s ..."
            )
            elided, elided_time = 0, 0.0

    for i in range(len(chain) - 1, -1, -1):
        edge = chain[i]
        if i not in keep:
            elided += 1
            elided_time += edge.duration
            continue
        flush_elision()
        src = graph.event(edge.src)
        dst = graph.event(edge.dst)
        note = ""
        faults = edge.attrs.get("faults")
        if faults:
            note = "  !! during " + ", ".join(faults)
        lines.append(
            f"  {edge.t_src:>10.2f} -> {edge.t_dst:<10.2f} "
            f"{edge.duration:>9.2f}s  {edge.kind:<14} "
            f"{src.label} -> {dst.label}{note}"
        )
    flush_elision()
    components = chain_components(graph, chain)
    if components:
        lines.append("components crossed: " + " -> ".join(components))
    return "\n".join(lines)
