"""Graph-invariant validators, registered alongside the sanitizers.

A valid run graph satisfies four structural invariants:

* **happens-before** — every edge has ``src.t <= dst.t``;
* **acyclic** — the graph admits a topological order;
* **single-root** — exactly one event (the run root) has no in-edges;
* **reachable** — every event, and in particular every task node, is
  reachable from the run root along forward edges.

Violations are facts about the *instrumentation*, not the workload —
they mean a capture hook recorded an edge that cannot exist — so
:func:`report_violations` mirrors them into the kernel sanitizer's
spontaneous-finding registry, where the test suite's zero-findings
guard treats them exactly like an event leak or a shared-dict race.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.sanitizer import SanitizerFinding, record_spontaneous_finding
from .graph import ProvGraph

__all__ = [
    "GraphViolation",
    "assert_valid",
    "report_violations",
    "validate_graph",
]


@dataclass(frozen=True, slots=True)
class GraphViolation:
    """One broken graph invariant."""

    #: "happens-before" | "acyclic" | "single-root" | "reachable"
    rule: str
    detail: str

    def format(self) -> str:
        return f"{self.rule}: {self.detail}"


def validate_graph(graph: ProvGraph) -> list[GraphViolation]:
    """Check every invariant; returns the violations (empty = valid)."""
    violations: list[GraphViolation] = []

    bad_hb = [edge for edge in graph.edges if edge.t_src > edge.t_dst]
    if bad_hb:
        worst = max(bad_hb, key=lambda e: e.t_src - e.t_dst)
        violations.append(
            GraphViolation(
                "happens-before",
                f"{len(bad_hb)} edge(s) run backward in sim time; worst: "
                f"{worst.kind} {graph.event(worst.src).label} "
                f"(t={worst.t_src:g}) -> {graph.event(worst.dst).label} "
                f"(t={worst.t_dst:g})",
            )
        )

    if graph.topo_order() is None:
        violations.append(
            GraphViolation("acyclic", "graph contains at least one cycle")
        )

    rootless = [
        event for event in graph.events if not graph.in_edges(event)
    ]
    expected_root = [graph.root] if graph.root is not None else []
    if rootless != expected_root:
        labels = ", ".join(e.label for e in rootless[:5]) or "(none)"
        violations.append(
            GraphViolation(
                "single-root",
                f"{len(rootless)} event(s) have no in-edges "
                f"(expected only the run root): {labels}",
            )
        )

    if graph.root is not None:
        reachable = graph.reachable_from(graph.root)
        orphans = [e for e in graph.events if e.eid not in reachable]
        if orphans:
            labels = ", ".join(e.label for e in orphans[:5])
            violations.append(
                GraphViolation(
                    "reachable",
                    f"{len(orphans)} event(s) unreachable from the run "
                    f"root: {labels}",
                )
            )
        lost_tasks = [
            uid
            for uid, (start, _end) in sorted(graph.task_events.items())
            if start.eid not in reachable
        ]
        if lost_tasks:
            violations.append(
                GraphViolation(
                    "reachable",
                    f"{len(lost_tasks)} task node(s) unreachable from the "
                    f"run root: {', '.join(lost_tasks[:5])}",
                )
            )
    return violations


def assert_valid(graph: ProvGraph) -> None:
    """Raise ``ValueError`` listing every violated invariant."""
    violations = validate_graph(graph)
    if violations:
        lines = [f"{len(violations)} provenance-graph violation(s):"]
        lines.extend(f"  - {v.format()}" for v in violations)
        raise ValueError("\n".join(lines))


def report_violations(
    graph: ProvGraph, violations: list[GraphViolation]
) -> None:
    """Mirror violations into the sanitizer's spontaneous registry."""
    now = graph.end.t if graph.end is not None else 0.0
    for violation in violations:
        record_spontaneous_finding(
            SanitizerFinding(
                kind=f"provenance-{violation.rule}",
                process=None,
                site=None,
                detail=violation.detail,
                time=now,
            )
        )
