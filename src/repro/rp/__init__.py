"""Simulated RADICAL-Pilot: pilots, tasks, client and agent.

The development vehicle of the paper: a pilot-paradigm runtime that
acquires HPC resources as a batch job and schedules heterogeneous tasks
onto them without further batch-queue round trips.  The SOMA service
and its monitoring clients run *inside* this runtime as first-class
service tasks (see :mod:`repro.soma.integration`).
"""

from .client import Client, PilotManager, TaskManager
from .config import DEFAULT_RP_CONFIG, RPConfig
from .description import PilotDescription, TaskDescription, TaskMode
from .model import (
    ComputeModel,
    ExecutionContext,
    FailingModel,
    FixedDurationModel,
    RankProfile,
    ServiceModel,
    TaskModel,
    TaskResult,
)
from .pilot import Pilot
from .profiler import ProfileRecord, ProfileStore
from .raptor import FunctionCall, RaptorMaster, RaptorWorkerModel
from .session import Session
from .states import (
    EXECUTING_EVENTS,
    InvalidTransition,
    PilotState,
    TASK_FINAL_STATES,
    TASK_STATE_ORDER,
    TaskState,
)
from .task import Task, TaskEvent

__all__ = [
    "Client",
    "ComputeModel",
    "DEFAULT_RP_CONFIG",
    "EXECUTING_EVENTS",
    "ExecutionContext",
    "FailingModel",
    "FixedDurationModel",
    "FunctionCall",
    "InvalidTransition",
    "Pilot",
    "PilotDescription",
    "PilotManager",
    "PilotState",
    "ProfileRecord",
    "ProfileStore",
    "RankProfile",
    "RaptorMaster",
    "RaptorWorkerModel",
    "RPConfig",
    "ServiceModel",
    "Session",
    "Task",
    "TASK_FINAL_STATES",
    "TASK_STATE_ORDER",
    "TaskDescription",
    "TaskEvent",
    "TaskManager",
    "TaskMode",
    "TaskModel",
    "TaskResult",
    "TaskState",
]
