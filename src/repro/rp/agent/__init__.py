"""Agent-side RP components: scheduler, executor, updater."""

from .agent import Agent
from .executor import AgentExecutor
from .scheduler import AgentScheduler, Placement
from .updater import Updater

__all__ = ["Agent", "AgentExecutor", "AgentScheduler", "Placement", "Updater"]
