"""The RP Agent: bootstraps on the allocation and runs tasks.

The agent executes on the pilot's agent node (Fig 1).  On bootstrap it
partitions the allocation into agent / service / compute nodes, starts
its scheduler and executor, and then accepts tasks.  At workflow end,
``shutdown`` stops resident service tasks "through an appropriate
control command from RP" (paper Sec 2.3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...sim.core import Event
from ..pilot import Pilot
from ..states import PilotState, TaskState
from ..task import Task
from .executor import AgentExecutor
from .scheduler import AgentScheduler
from .updater import Updater

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...platform.batch import JobAllocation
    from ..session import Session

__all__ = ["Agent"]


class Agent:
    """One agent per pilot."""

    def __init__(self, session: "Session", pilot: Pilot) -> None:
        self.session = session
        self.env = session.env
        self.pilot = pilot
        self.updater = Updater(session)
        self.scheduler: AgentScheduler | None = None
        self.executor: AgentExecutor | None = None
        self._tasks: dict[str, Task] = {}
        self.shutdown_at: float | None = None

    # -- lifecycle --------------------------------------------------------

    def bootstrap(
        self, job: "JobAllocation"
    ) -> Generator[Event, None, None]:
        """Bring the agent up on the granted allocation."""
        pilot = self.pilot
        description = pilot.description
        nodes = job.nodes
        # Partition: agent nodes first, then SOMA service nodes, then
        # application compute nodes — matching the paper's layouts.
        a, s = description.agent_nodes, description.service_nodes
        pilot.agent_nodes = nodes[:a]
        pilot.service_nodes = nodes[a : a + s]
        pilot.compute_nodes = nodes[a + s :]
        pilot.bootstrap_started_at = self.env.now
        with self.session.telemetry.span(
            "agent.bootstrap", component="rp-agent", uid=pilot.uid
        ):
            self.session.tracer.record(
                "rp.pilot", pilot.uid, event="bootstrap_start"
            )
            # Bootstrap burns real time and shows up as the light-blue band
            # across all cores in Fig 8.
            yield self.env.timeout(
                self.session.jitter(self.session.config.agent_bootstrap_time)
            )
            self.scheduler = AgentScheduler(self)
            self.executor = AgentExecutor(self)
            pilot.bootstrap_finished_at = self.env.now
            pilot.advance(PilotState.PMGR_ACTIVE)
            self.session.tracer.record(
                "rp.pilot", pilot.uid, event="bootstrap_done"
            )

    def submit(self, task: Task) -> None:
        """Accept a task from the client (already in agent scope)."""
        if self.scheduler is None:
            raise RuntimeError("agent not bootstrapped")
        self._tasks[task.uid] = task
        self.scheduler.submit(task)

    def cancel(self, task: Task) -> None:
        """Cancel one task wherever it currently is.

        Already-final tasks are left alone; running tasks are
        interrupted (-> CANCELED); waiting tasks are finalized directly
        and swept out of the scheduler's queue on its next pass.
        """
        if task.is_final:
            return
        if self.executor is not None and self.executor.cancel(task.uid):
            return
        task.advance(TaskState.CANCELED)
        self.session.tracer.record(
            "rp.state", task.uid, state=TaskState.CANCELED
        )

    def shutdown(self) -> None:
        """Stop services and the scheduling/executing machinery."""
        if self.shutdown_at is not None:
            return
        self.shutdown_at = self.env.now
        self.session.tracer.record("rp.pilot", self.pilot.uid, event="shutdown")
        if self.executor is not None:
            self.executor.stop()
        if self.scheduler is not None:
            self.scheduler.stop()
        if not self.pilot.is_final:
            self.pilot.advance(PilotState.DONE)

    # -- introspection ------------------------------------------------------

    @property
    def tasks(self) -> dict[str, Task]:
        return self._tasks

    def application_tasks(self) -> list[Task]:
        return [t for t in self._tasks.values() if t.is_application]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Agent of {self.pilot.uid} tasks={len(self._tasks)}>"
