"""The agent executor: launches placed tasks on their resources.

"The Agent's Executor places each task on the assigned resources, sets
up their execution environment, and launches each task for execution"
(paper Fig 1, step 8).  The executor emits the timestamped events of
Listing 1 — launch_start, exec_start, rank_start, rank_stop, exec_stop,
launch_stop — around the task model's actual execution, then releases
the resources and finalizes the task state.

Service tasks (mode=service/monitor) stay resident: their model parks
until the agent interrupts them at workflow shutdown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...platform.node import NodeFailure
from ...sim.core import Event, Interrupt, Process
from ...sim.stores import Store
from ..description import TaskMode
from ..model import ExecutionContext, TaskResult
from ..states import TaskState
from .scheduler import Placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .agent import Agent

__all__ = ["AgentExecutor"]


class AgentExecutor:
    """Concurrent task launcher."""

    def __init__(self, agent: "Agent") -> None:
        self.agent = agent
        self.session = agent.session
        self.env = agent.session.env
        self._inbox: Store = Store(self.env)
        # Task-process tables are written by the executor loop and read
        # by cancel()/stop() from other processes; opted in to the
        # kernel's write-between-yields race detection under sanitize.
        self._procs: "dict[str, Process]" = self.env.shared_dict(
            "rp.executor.procs"
        )
        self._service_procs: "dict[str, Process]" = self.env.shared_dict(
            "rp.executor.service_procs"
        )
        self._stopped = False
        self.launched = 0
        self.completed = 0
        self.failed = 0
        self._proc = self.env.process(self._run(), name="agent-executor")

    def submit(self, placement: Placement) -> None:
        self._inbox.put(placement)

    def stop(self) -> None:
        """Shut down: interrupt resident service tasks."""
        self._stopped = True
        for uid, proc in list(self._service_procs.items()):
            if proc.is_alive:
                proc.interrupt("service-shutdown")
        if self._proc.is_alive:
            self._proc.interrupt("executor-stop")

    def cancel(self, uid: str) -> bool:
        """Interrupt a running task; returns True if it was running."""
        proc = self._procs.get(uid)
        if proc is not None and proc.is_alive:
            proc.interrupt("task-cancel")
            return True
        return False

    @property
    def num_resident_services(self) -> int:
        return sum(1 for p in self._service_procs.values() if p.is_alive)

    # -- internals ---------------------------------------------------------

    def _run(self) -> Generator[Event, object, None]:
        try:
            while True:
                placement: Placement = yield self._inbox.get()
                proc = self.env.process(
                    self._execute(placement),
                    name=f"exec-{placement.task.uid}",
                )
                self._procs[placement.task.uid] = proc
                if placement.task.description.mode in (
                    TaskMode.SERVICE,
                    TaskMode.MONITOR,
                ):
                    self._service_procs[placement.task.uid] = proc
        except Interrupt:
            return

    def _execute(self, placement: Placement) -> Generator[Event, object, None]:
        task = placement.task
        tel = self.session.telemetry
        with tel.span(
            "agent.execute",
            component="rp-agent",
            parent=tel.binding(task.uid),
            uid=task.uid,
        ):
            yield from self._execute_inner(placement)

    def _execute_inner(
        self, placement: Placement
    ) -> Generator[Event, object, None]:
        cfg = self.session.config
        task = placement.task
        updater = self.agent.updater
        node_names = ",".join(n.name for n in placement.nodes)
        interrupted = False
        try:
            # A node that died between placement and launch fails the
            # task up front instead of launching ranks into the void.
            dead = [n.name for n in placement.nodes if not n.alive]
            if dead:
                raise NodeFailure(f"placement includes dead node(s) {dead}")
            yield from updater.advance(
                task, TaskState.AGENT_EXECUTING, node=node_names
            )
            yield from updater.record_event(task, "launch_start", node=node_names)
            launch = cfg.launch_overhead + (
                cfg.launch_per_rank_cost * task.description.ranks
            )
            yield self.env.timeout(self.session.jitter(launch))
            yield from updater.record_event(task, "exec_start", node=node_names)
            yield from updater.record_event(task, "rank_start", node=node_names)
            self.launched += 1

            ctx = ExecutionContext(
                env=self.env,
                task=task,
                placements=placement.allocations,
                network=self.session.cluster.network,
                rng=self.session.rng,
                session=self.session,
            )
            model = task.description.model
            if model is None:
                result = TaskResult(exit_code=0)
            else:
                result = yield from model.execute(ctx)
            task.result = result

            yield from updater.record_event(task, "rank_stop", node=node_names)
            yield from updater.record_event(task, "exec_stop", node=node_names)
            yield self.env.timeout(self.session.jitter(cfg.teardown_overhead))
            yield from updater.record_event(task, "launch_stop", node=node_names)

            yield from updater.advance(
                task, TaskState.AGENT_STAGING_OUTPUT, node=node_names
            )
            if cfg.staging_time > 0:
                yield self.env.timeout(cfg.staging_time)

            # Resources must be free before the final state fires, so
            # anyone woken by task.completed sees them released.
            self._release(placement)

            if result.exit_code == 0:
                yield from updater.advance(task, TaskState.DONE, node=node_names)
                self.completed += 1
            else:
                yield from updater.advance(
                    task,
                    TaskState.FAILED,
                    node=node_names,
                    exit_code=result.exit_code,
                )
                self.failed += 1
        except Interrupt:
            # Service shutdown (expected) or task cancel.
            interrupted = True
            if not task.is_final:
                final = (
                    TaskState.DONE
                    if task.description.mode
                    in (TaskMode.SERVICE, TaskMode.MONITOR)
                    else TaskState.CANCELED
                )
                task.advance(final)
                self.session.tracer.record("rp.state", task.uid, state=final)
        except Exception as exc:  # model bug -> task failure, not crash
            task.exception = exc
            if not task.is_final:
                task.advance(TaskState.FAILED, error=repr(exc))
                self.session.tracer.record(
                    "rp.state", task.uid, state=TaskState.FAILED
                )
            self.failed += 1
        finally:
            self._release(placement, notify=not interrupted or not self._stopped)

    def _release(self, placement: Placement, notify: bool = True) -> None:
        """Release a placement exactly once and wake the scheduler."""
        if all(a.released for a in placement.allocations):
            return
        placement.release()
        self.session.tracer.record(
            "rp.free",
            placement.task.uid,
            nodes=[n.name for n in placement.nodes],
        )
        if notify:
            self.agent.scheduler.notify_released()
