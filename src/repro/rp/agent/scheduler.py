"""The agent scheduler: continuous placement of tasks onto node slots.

"The Agent's scheduler assigns tasks to suitable portions of the
available resources and then queues those tasks to an Executor"
(paper Fig 1, steps 6-7).  Placement is first-fit over the pilot's
nodes; MPI tasks may span nodes, single-node tasks may not.  Service
and monitor tasks are pinned according to their tags, and application
tasks may only touch SOMA service nodes when the pilot runs in the
"shared" configuration (Figs 10/11).

The scheduler is a single sequential loop, so its per-decision cost —
``schedule_base_cost + schedule_per_node_cost × nodes scanned`` —
bounds the agent's task throughput exactly as in the real system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...platform.node import Allocation, Node
from ...sim.core import Event, Interrupt
from ...sim.stores import Store
from ..description import TaskMode
from ..states import TaskState
from ..task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .agent import Agent

__all__ = ["AgentScheduler", "Placement"]


class Placement:
    """Where a task landed: one allocation per node used."""

    __slots__ = ("task", "allocations")

    def __init__(self, task: Task, allocations: list[Allocation]) -> None:
        self.task = task
        self.allocations = allocations

    @property
    def nodes(self) -> list[Node]:
        return [a.node for a in self.allocations]

    def release(self) -> None:
        for allocation in self.allocations:
            allocation.release()


class AgentScheduler:
    """First-fit continuous scheduler over the pilot's nodes."""

    def __init__(self, agent: "Agent") -> None:
        self.agent = agent
        self.session = agent.session
        self.env = agent.session.env
        self._inbox: Store = Store(self.env)
        #: Tasks that did not fit yet, in arrival order.
        self._waiting: list[Task] = []
        self._wake: Event | None = None
        self._release_pending = False
        self._stopped = False
        #: Rotating scan start so placements distribute over the
        #: machine instead of piling onto low-index nodes.
        self._rr_index = 0
        #: Optional adaptive node ordering (utilization-aware
        #: placement, Sec 4.2); overrides the rotation when set.
        self._node_ranker = None
        self.scheduled_count = 0
        #: Open "agent.schedule" telemetry spans by task uid — one per
        #: admitted task, closed at exactly one of the three exits of
        #: :meth:`_schedule_pass` (placed / unschedulable / canceled).
        self._spans: dict[str, object] = {}
        self._proc = self.env.process(self._run(), name="agent-scheduler")

    # -- interface to the rest of the agent ------------------------------

    def submit(self, task: Task) -> None:
        """Queue a task for placement."""
        self._inbox.put(task)

    def notify_released(self) -> None:
        """Executor signal: resources were freed, retry the wait list."""
        self._release_pending = True
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def set_node_ranker(self, ranker) -> None:
        """Install a callable ordering eligible nodes per placement.

        Used by :class:`repro.adaptive.UtilizationAwarePlacement`; pass
        ``None`` to restore the default rotating first-fit.
        """
        self._node_ranker = ranker

    def stop(self) -> None:
        self._stopped = True
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        if self._proc.is_alive:
            self._proc.interrupt("scheduler-stop")

    @property
    def num_waiting(self) -> int:
        return len(self._waiting) + len(self._inbox)

    # -- main loop ----------------------------------------------------------

    def _run(self) -> Generator[Event, object, None]:
        cfg = self.session.config
        try:
            while not self._stopped:
                # Drain newly arrived tasks into the wait list.
                if not self._waiting:
                    task = yield self._inbox.get()
                    yield from self._admit(task)
                while len(self._inbox):
                    task = yield self._inbox.get()
                    yield from self._admit(task)

                self._release_pending = False
                progressed = yield from self._schedule_pass()

                if self._stopped:
                    break
                if self._release_pending:
                    # Resources were freed while we were sweeping; a
                    # waiting task may fit now, so sweep again.
                    continue
                if not progressed and not len(self._inbox):
                    # Nothing fits: sleep until the executor frees
                    # resources or a new task arrives.
                    self._wake = self.env.event()
                    arrival = self._inbox.get()
                    from ...sim.events import AnyOf

                    fired = yield AnyOf(self.env, [self._wake, arrival])
                    if arrival in fired:
                        yield from self._admit(arrival.value)
                    elif not arrival.triggered:
                        # Withdraw the unused get so the item is not lost.
                        arrival.cancel()
                    self._wake = None
        except Interrupt:
            return

    @staticmethod
    def _admission_priority(task: Task) -> int:
        """Services before monitors before application tasks — "the
        SOMA service task needs to be scheduled before any application
        tasks" (paper Sec 2.3.1)."""
        if task.description.mode == TaskMode.SERVICE:
            return -100
        if task.description.mode == TaskMode.MONITOR:
            return -50
        return task.description.priority

    def _end_schedule_span(self, task: Task, **attributes) -> None:
        span = self._spans.pop(task.uid, None)
        if span is not None:
            self.session.telemetry.end_span(span, **attributes)

    def _admit(self, task: Task) -> Generator[Event, None, None]:
        """Accept a task into the wait list (AGENT_SCHEDULING)."""
        tel = self.session.telemetry
        span = tel.start_span(
            "agent.schedule",
            component="rp-agent",
            parent=tel.binding(task.uid),
            uid=task.uid,
        )
        if span is not None:
            self._spans[task.uid] = span
        yield from self.agent.updater.advance(task, TaskState.AGENT_SCHEDULING)
        priority = self._admission_priority(task)
        index = len(self._waiting)
        while index > 0 and self._admission_priority(
            self._waiting[index - 1]
        ) > priority:
            index -= 1
        self._waiting.insert(index, task)

    def _schedule_pass(self) -> Generator[Event, None, bool]:
        """One first-fit sweep over the wait list."""
        cfg = self.session.config
        progressed = False
        index = 0
        failures = 0
        while index < len(self._waiting):
            task = self._waiting[index]
            if task.is_final:  # canceled while waiting
                self._waiting.pop(index)
                self._end_schedule_span(task, outcome="canceled")
                continue
            eligible = self._eligible_nodes(task)
            if not self._can_ever_fit(task, eligible):
                # No amount of waiting will help: fail the task.
                self._waiting.pop(index)
                yield from self.agent.updater.advance(
                    task, TaskState.FAILED, reason="unschedulable"
                )
                self._end_schedule_span(task, outcome="unschedulable")
                continue
            allocations, scanned = self._try_place(task, eligible)
            # The decision cost covers the nodes actually scanned,
            # whether or not placement succeeded.
            cost = cfg.schedule_base_cost + cfg.schedule_per_node_cost * scanned
            yield self.env.timeout(self.session.jitter(cost))
            if allocations is None:
                index += 1
                failures += 1
                if failures >= cfg.schedule_lookahead:
                    # Bounded backfill lookahead, as in RP's continuous
                    # scheduler: stop sweeping once the queue head is
                    # clearly blocked.
                    break
                continue
            failures = 0
            self._waiting.pop(index)
            placement = Placement(task, allocations)
            task.nodelist = [n.name for n in placement.nodes]
            yield from self.agent.updater.advance(
                task,
                TaskState.AGENT_EXECUTING_PENDING,
                node=",".join(task.nodelist),
            )
            for allocation in allocations:
                self.session.tracer.record(
                    "rp.alloc",
                    task.uid,
                    node=allocation.node.name,
                    cores=list(allocation.cores),
                    gpus=list(allocation.gpus),
                )
            self.scheduled_count += 1
            prov = getattr(self.session.telemetry, "provenance", None)
            if prov is not None:
                prov.note_grant(task.uid, self.env.now, task.nodelist)
            self._end_schedule_span(
                task, outcome="placed", nodes=",".join(task.nodelist)
            )
            self.agent.executor.submit(placement)
            progressed = True
        return progressed

    # -- placement ---------------------------------------------------------------

    def _eligible_nodes(self, task: Task) -> list[Node]:
        nodes = self._eligible_nodes_raw(task)
        return [n for n in nodes if n.alive]

    def _eligible_nodes_raw(self, task: Task) -> list[Node]:
        description = task.description
        pilot = self.agent.pilot
        pinned = description.tags.get("node")
        if pinned:
            return [n for n in pilot.nodes if n.name == pinned]
        colocate = description.tags.get("colocate")
        if colocate == "agent":
            return list(pilot.agent_nodes)
        if description.mode == TaskMode.SERVICE:
            # Infrastructure services (SOMA) live on the service/agent
            # nodes; compute-pool services (RAPTOR workers) ask for the
            # compute nodes explicitly.
            if description.tags.get("pool") == "compute":
                return list(pilot.compute_nodes)
            return (
                list(pilot.service_nodes)
                if pilot.service_nodes
                else list(pilot.agent_nodes)
            )
        if description.mode == TaskMode.MONITOR:
            return list(pilot.agent_nodes)
        # Application tasks: compute nodes, plus service nodes when the
        # pilot is configured to share them.
        nodes = list(pilot.compute_nodes)
        if pilot.description.share_service_nodes:
            nodes = nodes + list(pilot.service_nodes)
        return nodes

    def _can_ever_fit(self, task: Task, eligible: list[Node]) -> bool:
        """Capacity check against *total* (not free) resources."""
        description = task.description
        if not eligible:
            return False
        if not description.multi_node or description.gpus_per_rank > 0:
            return any(
                node.total_cores >= description.total_cores
                and node.total_gpus >= description.total_gpus
                for node in eligible
            )
        slots = sum(
            node.total_cores // description.cores_per_rank for node in eligible
        )
        return slots >= description.ranks

    def _try_place(
        self, task: Task, eligible: list[Node]
    ) -> tuple[list[Allocation] | None, int]:
        """Attempt placement; returns (allocations | None, nodes scanned)."""
        description = task.description
        cpr = description.cores_per_rank
        gpr = description.gpus_per_rank

        if len(eligible) > 1 and not description.tags:
            if self._node_ranker is not None:
                # Adaptive ordering (e.g. least-utilized node first).
                eligible = list(self._node_ranker(eligible))
            else:
                # Rotate the scan start for untagged application tasks.
                start = self._rr_index % len(eligible)
                eligible = eligible[start:] + eligible[:start]
                self._rr_index += 1

        if not description.multi_node or gpr > 0:
            # Single-node placement (all DDMD tasks, monitors, services
            # with GPUs).  First node with enough cores and GPUs wins.
            for scanned, node in enumerate(eligible, start=1):
                if (
                    node.free_cores >= description.total_cores
                    and node.free_gpus >= description.total_gpus
                ):
                    return [
                        node.allocate(
                            description.total_cores,
                            description.total_gpus,
                            owner=task.uid,
                        )
                    ], scanned
            return None, len(eligible)

        # Multi-node placement.  Service tasks are balanced across
        # their nodes (jsrun-style round-robin distribution) so every
        # service node keeps free cores/GPUs for opportunistic sharing;
        # application MPI tasks use first-fit, taking whole rank slots
        # per node until all ranks are placed.
        remaining = description.ranks
        plan: list[tuple[Node, int]] = []
        if description.mode == TaskMode.SERVICE and len(eligible) > 1:
            per_node = -(-description.ranks // len(eligible))  # ceil
            for node in eligible:
                slots = min(per_node, node.free_cores // cpr, remaining)
                if slots > 0:
                    plan.append((node, slots))
                    remaining -= slots
                if remaining == 0:
                    break
        if remaining > 0:
            plan_ff: list[tuple[Node, int]] = []
            taken = {node: take for node, take in plan}
            for node in eligible:
                slots = node.free_cores // cpr - taken.get(node, 0)
                if slots <= 0:
                    continue
                take = min(slots, remaining)
                plan_ff.append((node, take))
                remaining -= take
                if remaining == 0:
                    break
            plan = plan + plan_ff
        if remaining > 0:
            return None, len(eligible)
        return [
            node.allocate(take * cpr, 0, owner=task.uid) for node, take in plan
        ], len(eligible)
