"""The agent updater: serialized state transitions + profile writes.

Every state transition of every task flows through this component, is
written to the RP profile store (under its I/O lock), and is mirrored
into the tracer.  Because the RP monitoring client re-reads those same
profile files, frequent monitoring contends with this writer — the
mechanism behind the frequent-monitoring overhead in Fig 11.

Persistence is best-effort under faults: if the profile store is
unavailable (injected outage), the write is retried under a small
:class:`~repro.faults.RetryPolicy` and then *dropped* — the in-memory
state transition has already been applied and traced, so the workflow
proceeds with a hole in its profile log rather than a stalled agent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...faults.retry import RetryPolicy
from ...messaging.protocol import RPCError
from ...sim.core import Event
from ..profiler import ProfileRecord
from ..task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session import Session

__all__ = ["Updater", "DEFAULT_UPDATER_RETRY"]

#: Fast, bounded retries: a state update must never hold up the agent
#: for long, and its backoff must not depend on RNG state (jitter=0).
DEFAULT_UPDATER_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay=0.05,
    multiplier=2.0,
    max_delay=1.0,
    jitter=0.0,
    deadline=5.0,
    timeout=None,
)


class Updater:
    """Applies and records state transitions for tasks."""

    def __init__(
        self,
        session: "Session",
        retry: RetryPolicy | None = DEFAULT_UPDATER_RETRY,
    ) -> None:
        self.session = session
        self.env = session.env
        self.retry = retry
        self.transitions = 0
        #: Profile records lost to an exhausted persistence retry.
        self.dropped_records = 0

    def advance(
        self, task: Task, state: str, node: str = "", **data
    ) -> Generator[Event, None, None]:
        """Transition ``task`` and persist the profile record."""
        task.advance(state, **data)
        self.transitions += 1
        self.session.tracer.record(
            "rp.state", task.uid, state=state, node=node
        )
        yield from self._persist(
            ProfileRecord(
                time=self.env.now,
                entity=task.uid,
                event="state",
                state=state,
                node=node,
            )
        )

    def record_event(
        self, task: Task, event: str, node: str = ""
    ) -> Generator[Event, None, None]:
        """Record a sub-state event (launch_start, rank_start, ...)."""
        task.record_event(event)
        self.session.tracer.record(
            "rp.event", task.uid, event=event, node=node
        )
        yield from self._persist(
            ProfileRecord(
                time=self.env.now,
                entity=task.uid,
                event=event,
                state=task.state,
                node=node,
            )
        )

    def _persist(self, record: ProfileRecord) -> Generator[Event, None, None]:
        """Write ``record`` with bounded retries, dropping on failure.

        The transition itself already happened (in memory + tracer);
        only the durable profile line is at stake here.
        """
        profiles = self.session.profiles
        if self.retry is None:
            yield from profiles.write_locked(record)
            return
        try:
            yield from self.retry.execute(
                self.env,
                lambda: profiles.write_locked(record),
                name=f"profile:{record.entity}",
            )
        except RPCError:
            self.dropped_records += 1
            self.session.tracer.record(
                "rp.profile_drop",
                record.entity,
                event=record.event,
                state=record.state,
            )
