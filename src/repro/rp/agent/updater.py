"""The agent updater: serialized state transitions + profile writes.

Every state transition of every task flows through this component, is
written to the RP profile store (under its I/O lock), and is mirrored
into the tracer.  Because the RP monitoring client re-reads those same
profile files, frequent monitoring contends with this writer — the
mechanism behind the frequent-monitoring overhead in Fig 11.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...sim.core import Event
from ..profiler import ProfileRecord
from ..states import TaskState
from ..task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session import Session

__all__ = ["Updater"]


class Updater:
    """Applies and records state transitions for tasks."""

    def __init__(self, session: "Session") -> None:
        self.session = session
        self.env = session.env
        self.transitions = 0

    def advance(
        self, task: Task, state: str, node: str = "", **data
    ) -> Generator[Event, None, None]:
        """Transition ``task`` and persist the profile record."""
        task.advance(state, **data)
        self.transitions += 1
        self.session.tracer.record(
            "rp.state", task.uid, state=state, node=node
        )
        yield from self.session.profiles.write_locked(
            ProfileRecord(
                time=self.env.now,
                entity=task.uid,
                event="state",
                state=state,
                node=node,
            )
        )

    def record_event(
        self, task: Task, event: str, node: str = ""
    ) -> Generator[Event, None, None]:
        """Record a sub-state event (launch_start, rank_start, ...)."""
        task.record_event(event)
        self.session.tracer.record(
            "rp.event", task.uid, event=event, node=node
        )
        yield from self.session.profiles.write_locked(
            ProfileRecord(
                time=self.env.now,
                entity=task.uid,
                event=event,
                state=task.state,
                node=node,
            )
        )
