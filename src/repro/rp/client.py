"""Client-side RP: PilotManager, TaskManager, and the Client facade.

The client may run on a login node or remotely; here it shares the
simulation with everything else.  It mirrors the RP flow of Fig 1:
the PilotManager queues the pilot job through the batch system, the
agent bootstraps and notifies the client, and the TaskManager moves
submitted tasks through its client-side states before handing them to
the agent scheduler.
"""

from __future__ import annotations

from typing import Generator, Iterable

from ..sim.core import Event
from ..sim.events import AllOf
from ..platform.batch import JobRequest
from .agent.agent import Agent
from .description import PilotDescription, TaskDescription
from .pilot import Pilot
from .profiler import ProfileRecord
from .session import Session
from .states import PilotState, TaskState
from .task import Task

__all__ = ["PilotManager", "TaskManager", "Client"]


def _record_client_transition(
    session: Session, task: Task, state: str, **data
) -> None:
    """Client-side transition: advance + profile append (no I/O lock —
    the client writes its own profile files on its own node)."""
    task.advance(state, **data)
    session.tracer.record("rp.state", task.uid, state=state, node="client")
    session.profiles.append(
        ProfileRecord(
            time=session.env.now,
            entity=task.uid,
            event="state",
            state=state,
            node="client",
        )
    )


class PilotManager:
    """Acquires resources by submitting pilot jobs (Fig 1, steps 1-3)."""

    def __init__(self, session: Session) -> None:
        self.session = session
        self.env = session.env
        self.pilots: dict[str, Pilot] = {}
        self.agents: dict[str, Agent] = {}

    def submit_pilot(
        self, description: PilotDescription
    ) -> Generator[Event, None, Pilot]:
        """Submit and wait until the pilot is active (agent ready)."""
        session = self.session
        pilot = Pilot(self.env, session.new_uid("pilot"), description)
        self.pilots[pilot.uid] = pilot
        with session.telemetry.span(
            f"pilot:{pilot.uid}", component="rp-client", uid=pilot.uid
        ):
            pilot.advance(PilotState.PMGR_LAUNCHING_PENDING)
            pilot.advance(PilotState.PMGR_LAUNCHING)
            session.tracer.record("rp.pilot", pilot.uid, event="submit")

            job = yield from session.cluster.batch.submit(
                JobRequest(
                    nodes=description.total_nodes,
                    walltime=description.walltime,
                    name=pilot.uid,
                )
            )
            pilot.job = job
            pilot.advance(PilotState.PMGR_ACTIVE_PENDING)
            # Batch launcher overhead before the bootstrapper runs.
            yield self.env.timeout(session.cluster.spec.job_launch_overhead)

            agent = Agent(session, pilot)
            self.agents[pilot.uid] = agent
            yield from agent.bootstrap(job)
        return pilot

    def agent_of(self, pilot: Pilot) -> Agent:
        return self.agents[pilot.uid]

    def cancel_pilot(self, pilot: Pilot) -> None:
        """Shut the pilot down and release its allocation."""
        agent = self.agents.get(pilot.uid)
        if agent is not None:
            agent.shutdown()
        if pilot.job is not None:
            self.session.cluster.batch.release(pilot.job)


class TaskManager:
    """Client-side task intake (Fig 1, steps 4-6)."""

    def __init__(self, session: Session) -> None:
        self.session = session
        self.env = session.env
        self.tasks: dict[str, Task] = {}
        self._pilot: Pilot | None = None
        self._agent: Agent | None = None

    def add_pilot(self, pilot: Pilot, agent: Agent) -> None:
        self._pilot = pilot
        self._agent = agent

    def submit_tasks(
        self, descriptions: Iterable[TaskDescription]
    ) -> list[Task]:
        """Create tasks and start moving them toward the agent."""
        if self._agent is None:
            raise RuntimeError("no pilot attached to this TaskManager")
        tel = self.session.telemetry
        tasks: list[Task] = []
        for description in descriptions:
            task = Task(
                self.env, self.session.new_uid("task"), description
            )
            task.submitted_at = self.env.now
            self.tasks[task.uid] = task
            tasks.append(task)
            # Root span of the task's causal tree; every later phase
            # (feed, scheduling, execution, publishes) joins it via the
            # uid binding.  Closed by a host-only completion callback —
            # appending to an Event's callback list schedules nothing.
            span = tel.start_span(
                f"task:{task.uid}",
                component="rp-client",
                uid=task.uid,
                mode=str(description.mode),
            )
            if span is not None:
                tel.bind(task.uid, span)

                def _close(_event, task=task, span=span) -> None:
                    tel.end_span(span, state=str(task.state))
                    tel.unbind(task.uid)

                task.completed.callbacks.append(_close)
            self.env.process(
                self._feed(task), name=f"tmgr-feed-{task.uid}"
            )
        return tasks

    def _feed(self, task: Task) -> Generator[Event, None, None]:
        """Move one task through the client states to the agent."""
        cfg = self.session.config
        session = self.session
        with session.telemetry.span(
            "tmgr.feed",
            component="rp-client",
            parent=session.telemetry.binding(task.uid),
            uid=task.uid,
        ):
            _record_client_transition(session, task, TaskState.TMGR_SCHEDULING)
            # Service/monitor tasks bypass input staging so they reach the
            # agent before any application task submitted alongside them.
            if cfg.tmgr_latency > 0 and task.is_application:
                yield self.env.timeout(session.jitter(cfg.tmgr_latency))
            _record_client_transition(session, task, TaskState.TMGR_STAGING_INPUT)
            _record_client_transition(
                session, task, TaskState.AGENT_SCHEDULING_PENDING
            )
            if cfg.client_agent_latency > 0:
                yield self.env.timeout(cfg.client_agent_latency)
            if task.is_final:
                return  # canceled while still client-side
            assert self._agent is not None
            self._agent.submit(task)

    def wait_tasks(
        self, tasks: Iterable[Task]
    ) -> Generator[Event, None, list[Task]]:
        """Block until every task reaches a final state."""
        tasks = list(tasks)
        pending = [t.completed for t in tasks if not t.is_final]
        if pending:
            yield AllOf(self.env, pending)
        return tasks

    def cancel_tasks(self, tasks: Iterable[Task]) -> None:
        """Cancel tasks (running -> interrupted, waiting -> CANCELED).

        Tasks still in client-side states are finalized here; the
        ``_feed`` pipeline drops finalized tasks before they reach the
        agent.
        """
        for task in tasks:
            if task.is_final:
                continue
            if self._agent is not None and task.uid in self._agent.tasks:
                self._agent.cancel(task)
            else:
                task.advance(TaskState.CANCELED)
                self.session.tracer.record(
                    "rp.state", task.uid, state=TaskState.CANCELED
                )


class Client:
    """The user-facing RP facade, as the paper's run scripts use it."""

    def __init__(self, session: Session) -> None:
        self.session = session
        self.env = session.env
        self.pilot_manager = PilotManager(session)
        self.task_manager = TaskManager(session)
        self.pilot: Pilot | None = None

    def submit_pilot(
        self, description: PilotDescription
    ) -> Generator[Event, None, Pilot]:
        pilot = yield from self.pilot_manager.submit_pilot(description)
        self.pilot = pilot
        self.task_manager.add_pilot(
            pilot, self.pilot_manager.agent_of(pilot)
        )
        return pilot

    @property
    def agent(self) -> Agent:
        if self.pilot is None:
            raise RuntimeError("no active pilot")
        return self.pilot_manager.agent_of(self.pilot)

    def submit_tasks(
        self, descriptions: Iterable[TaskDescription]
    ) -> list[Task]:
        return self.task_manager.submit_tasks(descriptions)

    def wait_tasks(
        self, tasks: Iterable[Task]
    ) -> Generator[Event, None, list[Task]]:
        result = yield from self.task_manager.wait_tasks(tasks)
        return result

    def cancel_tasks(self, tasks: Iterable[Task]) -> None:
        self.task_manager.cancel_tasks(tasks)

    def close(self) -> None:
        """End the workflow: stop services, release the allocation."""
        if self.pilot is not None:
            self.pilot_manager.cancel_pilot(self.pilot)
