"""Timing and policy constants of the simulated RADICAL-Pilot.

All constants that shape RP's own overhead live here so experiments
(and ablation benches) can vary them.  Defaults are calibrated against
the published RP performance characterization on Summit [Merzky et al.,
TPDS 2021]: agent bootstrap tens of seconds, per-task scheduling and
launch overheads well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["RPConfig", "DEFAULT_RP_CONFIG"]


@dataclass(frozen=True, slots=True)
class RPConfig:
    """Tunable behaviour of the RP runtime model."""

    #: Seconds for the agent to bootstrap once the job starts (the
    #: light-blue band at the bottom of Fig 8).
    agent_bootstrap_time: float = 25.0
    #: Client-side task management latency per task (TMGR + staging).
    tmgr_latency: float = 0.05
    #: One-way latency between client and agent (they may be on the
    #: same node or continents apart; default: same allocation).
    client_agent_latency: float = 0.01
    #: Fixed cost of one scheduling decision (agent scheduler).
    schedule_base_cost: float = 0.02
    #: Additional scheduling cost per node scanned during placement.
    schedule_per_node_cost: float = 1e-4
    #: Consecutive placement failures tolerated per sweep before the
    #: scheduler waits for a release (bounded backfill lookahead).
    schedule_lookahead: int = 16
    #: Time for the launch method (jsrun-like) to start a task's ranks
    #: (launch_start .. exec_start).
    launch_overhead: float = 0.35
    #: Per-rank spawn cost added to the launch overhead.
    launch_per_rank_cost: float = 0.004
    #: Time to tear a task down (exec_stop .. launch_stop).
    teardown_overhead: float = 0.07
    #: Output staging time per task (AGENT_STAGING_OUTPUT).
    staging_time: float = 0.02
    #: Profile write latency per record (holds the profile I/O lock).
    profile_write_time: float = 1.0e-4
    #: Profile read: base seconds per read request.
    profile_read_base: float = 4e-3
    #: Profile read: seconds per record scanned (the RP monitor
    #: re-parses the files each sample, like the real client).
    profile_read_per_record: float = 6.0e-4
    #: Cap on records parsed per read (bounded trailing window).
    profile_read_max_records: int = 8000
    #: Whether the scheduler may place app tasks on SOMA service nodes
    #: (the "shared" configuration of Figs 10/11).
    share_service_nodes: bool = False
    #: Jitter fraction applied to launch/teardown overheads (uniform
    #: +/-); models the non-determinism the paper attributes to RP.
    overhead_jitter: float = 0.25

    def with_updates(self, **kwargs) -> "RPConfig":
        return replace(self, **kwargs)


DEFAULT_RP_CONFIG = RPConfig()
