"""Descriptions: what users submit to RADICAL-Pilot.

A :class:`TaskDescription` specifies the executable (here: a
:class:`~repro.rp.model.TaskModel`), its resource geometry (ranks ×
cores per rank, GPUs per rank) and scheduling hints.  A
:class:`PilotDescription` specifies the node allocation.  Mirrors RP's
public API surface as used in the paper's run scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import TaskModel

__all__ = ["TaskDescription", "PilotDescription", "TaskMode"]


class TaskMode:
    """Execution modes a task can request."""

    EXECUTABLE = "executable"
    #: Long-running service scheduled before any application task.
    SERVICE = "service"
    #: Monitoring daemon: scheduled after services, before app tasks.
    MONITOR = "monitor"
    #: Python function task (executed through the RAPTOR subsystem).
    FUNCTION = "function"


@dataclass(slots=True)
class TaskDescription:
    """Resource and execution requirements of one task."""

    #: Human-readable name; uids are assigned by the session.
    name: str = "task"
    #: What to run: a TaskModel instance (the simulated executable).
    model: "TaskModel | None" = None
    #: Number of MPI ranks (processes).
    ranks: int = 1
    #: Physical cores per rank.
    cores_per_rank: int = 1
    #: GPUs per rank (may be fractional in RP; integers here).
    gpus_per_rank: int = 0
    #: Execution mode (executable / service / monitor / function).
    mode: str = TaskMode.EXECUTABLE
    #: If True the ranks may be spread over multiple nodes (MPI).
    multi_node: bool = True
    #: Memory per rank in MiB (0 = don't track).
    memory_per_rank_mib: float = 0.0
    #: Scheduling priority (lower = sooner); services get -100.
    priority: int = 0
    #: Named tags (e.g. {'colocate': 'agent_node'}).
    tags: dict[str, str] = field(default_factory=dict)
    #: Free-form metadata passed through to results.
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Pre-exec hook names (e.g. starting a SOMA client wrapper).
    pre_exec: list[str] = field(default_factory=list)
    post_exec: list[str] = field(default_factory=list)

    @property
    def total_cores(self) -> int:
        return self.ranks * self.cores_per_rank

    @property
    def total_gpus(self) -> int:
        return self.ranks * self.gpus_per_rank

    def validate(self) -> None:
        if self.ranks <= 0:
            raise ValueError(f"{self.name}: ranks must be positive")
        if self.cores_per_rank <= 0:
            raise ValueError(f"{self.name}: cores_per_rank must be positive")
        if self.gpus_per_rank < 0:
            raise ValueError(f"{self.name}: gpus_per_rank must be >= 0")
        if self.mode not in (
            TaskMode.EXECUTABLE,
            TaskMode.SERVICE,
            TaskMode.MONITOR,
            TaskMode.FUNCTION,
        ):
            raise ValueError(f"{self.name}: unknown mode {self.mode!r}")


@dataclass(slots=True)
class PilotDescription:
    """Resource request for one pilot job."""

    #: Compute nodes for application tasks.
    nodes: int = 1
    #: Extra nodes reserved for RP agent + monitoring infrastructure
    #: (the paper allocates one extra node for the RP agent and SOMA
    #: service, plus optionally more SOMA-only nodes).
    agent_nodes: int = 1
    #: Additional nodes dedicated to the SOMA service ranks.
    service_nodes: int = 0
    #: Whether RP may schedule app tasks on free cores/GPUs of the
    #: service nodes ("shared" vs "exclusive" in the paper).
    share_service_nodes: bool = False
    #: Walltime in (simulated) seconds.
    walltime: float = 24 * 3600.0
    #: Queue name (cosmetic).
    queue: str = "batch"
    project: str = "CSC000"

    @property
    def total_nodes(self) -> int:
        return self.nodes + self.agent_nodes + self.service_nodes

    def validate(self) -> None:
        if self.nodes <= 0:
            raise ValueError("pilot needs at least one compute node")
        if self.agent_nodes < 0 or self.service_nodes < 0:
            raise ValueError("node counts must be non-negative")
        if self.walltime <= 0:
            raise ValueError("walltime must be positive")
