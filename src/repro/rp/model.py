"""The executable contract: what the agent's executor actually runs.

A :class:`TaskModel` is the simulated analogue of a task's executable.
The executor calls :meth:`TaskModel.execute` with an
:class:`ExecutionContext` describing where the task was placed; the
model is a process generator that performs compute/communication on
those resources and returns a :class:`TaskResult`.

Workload packages (:mod:`repro.workloads`) provide the OpenFOAM and
DeepDriveMD models; a few generic models live here for tests, examples
and services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from ..sim.core import Environment, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..platform.network import Network
    from ..platform.node import Allocation, Node
    from .task import Task

__all__ = [
    "ExecutionContext",
    "TaskResult",
    "RankProfile",
    "TaskModel",
    "FixedDurationModel",
    "ComputeModel",
    "ServiceModel",
    "FailingModel",
]


@dataclass(slots=True)
class RankProfile:
    """Per-rank time decomposition, i.e. what TAU would report.

    Values are seconds spent in each region by that rank; the TAU
    monitoring plugin turns these into the performance namespace.
    """

    rank: int
    hostname: str
    seconds_by_region: dict[str, float] = field(default_factory=dict)

    def total(self) -> float:
        return sum(self.seconds_by_region.values())


@dataclass(slots=True)
class TaskResult:
    """What a task model returns to the executor."""

    exit_code: int = 0
    #: Per-rank TAU-style profiles (empty unless the model fills them).
    rank_profiles: list[RankProfile] = field(default_factory=list)
    #: Model-specific outputs (figure-of-merit etc.).
    data: dict[str, Any] = field(default_factory=dict)


class ExecutionContext:
    """Everything a task model may touch while executing."""

    def __init__(
        self,
        env: Environment,
        task: "Task",
        placements: "list[Allocation]",
        network: "Network",
        rng: "np.random.Generator",
        session: "object | None" = None,
    ) -> None:
        self.env = env
        self.task = task
        #: One allocation per node the task landed on.
        self.placements = placements
        self.network = network
        self.rng = rng
        self.session = session

    def stable_rng(self) -> "np.random.Generator":
        """Per-task stable noise stream (common random numbers): the
        same task name + session seed always yields the same draws,
        making cross-configuration comparisons paired."""
        if self.session is None:
            return self.rng
        return self.session.stable_rng(self.task.description.name)

    @property
    def nodes(self) -> "list[Node]":
        return [p.node for p in self.placements]

    @property
    def hostnames(self) -> list[str]:
        return [p.node.name for p in self.placements]

    @property
    def num_nodes(self) -> int:
        return len(self.placements)

    def ranks_on(self, placement: "Allocation") -> int:
        """Number of ranks running inside ``placement``."""
        cpr = max(1, self.task.description.cores_per_rank)
        return placement.num_cores // cpr

    def rank_map(self) -> list[tuple[int, "Allocation"]]:
        """(global_rank, placement) for every rank, in placement order."""
        out: list[tuple[int, "Allocation"]] = []
        rank = 0
        for placement in self.placements:
            for _ in range(self.ranks_on(placement)):
                out.append((rank, placement))
                rank += 1
        return out


class TaskModel:
    """Base class for simulated executables."""

    def execute(
        self, ctx: ExecutionContext
    ) -> Generator[Event, Any, TaskResult]:
        """Run the task (process generator). Must be overridden."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator


class FixedDurationModel(TaskModel):
    """Sleeps for a fixed duration; the simplest possible executable."""

    def __init__(self, duration: float, cpu_busy: bool = True) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.duration = duration
        self.cpu_busy = cpu_busy

    def execute(self, ctx: ExecutionContext):
        if self.cpu_busy:
            acts = [
                p.node.run_compute(
                    cores=p.num_cores,
                    work=self.duration * p.node.spec.core_speed,
                    mem_intensity=0.0,
                    tag=ctx.task.uid,
                )
                for p in ctx.placements
            ]
            for act in acts:
                yield act.done
        else:
            yield ctx.env.timeout(self.duration)
        return TaskResult(exit_code=0)


class ComputeModel(TaskModel):
    """Contention-sensitive compute: ``work`` units per rank.

    Duration depends on what else runs on the nodes, via the node's
    memory-bandwidth contention domain.
    """

    def __init__(
        self,
        work_per_rank: float,
        mem_intensity: float = 0.5,
        demand_per_core: float = 1.0,
    ) -> None:
        self.work_per_rank = work_per_rank
        self.mem_intensity = mem_intensity
        self.demand_per_core = demand_per_core

    def execute(self, ctx: ExecutionContext):
        acts = [
            p.node.run_compute(
                cores=p.num_cores,
                work=self.work_per_rank,
                mem_intensity=self.mem_intensity,
                demand_per_core=self.demand_per_core,
                tag=ctx.task.uid,
            )
            for p in ctx.placements
        ]
        try:
            for act in acts:
                yield act.done
        except Interrupt:
            # Cancellation: stop the remaining ranks immediately.
            for act in acts:
                if act.finished_at is None:
                    act.cancel()
            raise
        return TaskResult(exit_code=0)


class ServiceModel(TaskModel):
    """A long-running service: runs until interrupted by the agent.

    Subclasses override :meth:`setup` to bring the service up (e.g.
    start RPC servers) and :meth:`teardown` for shutdown.
    """

    def setup(self, ctx: ExecutionContext) -> Generator[Event, Any, None]:
        """Bring the service up (may yield)."""
        return
        yield  # pragma: no cover

    def teardown(self, ctx: ExecutionContext) -> None:
        """Synchronous cleanup when the service is stopped."""

    def execute(self, ctx: ExecutionContext):
        yield from self.setup(ctx)
        try:
            # Park on an event that never fires; the agent interrupts
            # us at workflow end.  (No queue entry, so a drained event
            # queue still ends the simulation cleanly.)
            yield ctx.env.event()
        except Interrupt:
            pass
        finally:
            self.teardown(ctx)
        return TaskResult(exit_code=0)


class FailingModel(TaskModel):
    """Fails after ``delay`` seconds — for failure-injection tests."""

    def __init__(self, delay: float = 1.0, exit_code: int = 1) -> None:
        self.delay = delay
        self.exit_code = exit_code

    def execute(self, ctx: ExecutionContext):
        yield ctx.env.timeout(self.delay)
        return TaskResult(exit_code=self.exit_code)
