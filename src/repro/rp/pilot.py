"""The Pilot entity: a placeholder for acquired computing resources."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.core import Environment, Event
from .description import PilotDescription
from .states import (
    PILOT_FINAL_STATES,
    InvalidTransition,
    PilotState,
    is_valid_transition,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.batch import JobAllocation
    from ..platform.node import Node

__all__ = ["Pilot"]


class Pilot:
    """A pilot job: whole nodes acquired through the batch system.

    Node roles (paper Sec 3.1/3.2): *agent* nodes host the RP client,
    agent and the SOMA service + RP monitoring client; *service* nodes
    host extra SOMA service ranks; *compute* nodes run application
    tasks (and one hardware-monitor client each).
    """

    def __init__(
        self, env: Environment, uid: str, description: PilotDescription
    ) -> None:
        description.validate()
        self.env = env
        self.uid = uid
        self.description = description
        self.state = PilotState.NEW
        self.state_history: list[tuple[float, str]] = [(env.now, PilotState.NEW)]
        self.job: "JobAllocation | None" = None
        #: Node-role partition, filled at activation.
        self.agent_nodes: "list[Node]" = []
        self.service_nodes: "list[Node]" = []
        self.compute_nodes: "list[Node]" = []
        #: Fires when the pilot becomes active (agent bootstrapped).
        self.active: Event = env.event()
        #: Fires when the pilot reaches a final state.
        self.completed: Event = env.event()
        self.bootstrap_started_at: float | None = None
        self.bootstrap_finished_at: float | None = None

    @property
    def nodes(self) -> "list[Node]":
        """All nodes of the allocation, agent nodes first."""
        return self.agent_nodes + self.service_nodes + self.compute_nodes

    @property
    def agent_node(self) -> "Node":
        if not self.agent_nodes:
            raise RuntimeError(f"{self.uid}: pilot not yet active")
        return self.agent_nodes[0]

    def advance(self, new_state: str) -> None:
        if not is_valid_transition(self.state, new_state, kind="pilot"):
            raise InvalidTransition(
                f"{self.uid}: illegal transition {self.state} -> {new_state}"
            )
        self.state = new_state
        self.state_history.append((self.env.now, new_state))
        if new_state == PilotState.PMGR_ACTIVE and not self.active.triggered:
            self.active.succeed(self)
        if new_state in PILOT_FINAL_STATES and not self.completed.triggered:
            self.completed.succeed(self)

    @property
    def is_final(self) -> bool:
        return self.state in PILOT_FINAL_STATES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pilot {self.uid} {self.state} nodes={len(self.nodes)}>"
