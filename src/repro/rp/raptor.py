"""RAPTOR: RP's master/worker subsystem for function tasks.

The paper notes RP "utilizes a dedicated subsystem called RAPTOR to
execute Python functions at a very large scale" (Sec 2.1).  The
experiments do not exercise RAPTOR, but a faithful RP substrate should
carry it: a *master* task fans function calls out to resident *worker*
tasks, amortizing per-task launch overhead — the property that makes
function tasks cheap compared to executable tasks.

Workers are resident service-mode tasks holding cores; the master
dispatches :class:`FunctionCall` items to the first free worker.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from ..sim.core import Event, Interrupt
from ..sim.stores import Store
from .description import TaskDescription, TaskMode
from .model import ExecutionContext, ServiceModel, TaskResult

__all__ = ["FunctionCall", "RaptorWorkerModel", "RaptorMaster"]

_call_ids = itertools.count()
_worker_ids = itertools.count()


def reset_ids() -> None:
    """Restart uid minting (per-run, for in-process repeatability).

    Call/worker uids reach telemetry and trace payloads; the
    experiment harness resets them per workflow so repeated runs in
    one process stay byte-identical.
    """
    global _call_ids, _worker_ids
    _call_ids = itertools.count()
    _worker_ids = itertools.count()


@dataclass(slots=True)
class FunctionCall:
    """One function invocation dispatched through RAPTOR."""

    #: Simulated function: duration model (seconds of CPU per core).
    duration: float
    cores: int = 1
    mem_intensity: float = 0.1
    #: Optional Python callable evaluated at completion (pure, instant).
    fn: Callable[[], Any] | None = None
    uid: int = field(default_factory=lambda: next(_call_ids))
    #: Result plumbing, filled by the worker.
    result: Any = None
    done: Event | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    #: Telemetry baggage (a SpanContext) stamped at submit time.
    ctx: Any = None


class RaptorWorkerModel(ServiceModel):
    """A resident worker executing function calls on its cores."""

    def __init__(self, master: "RaptorMaster") -> None:
        self.master = master
        #: Minted worker uid — inbox routing must not key on id():
        #: CPython addresses vary run to run, which would make any
        #: iteration or trace of the inbox table nondeterministic.
        self.uid = next(_worker_ids)

    def execute(self, ctx: ExecutionContext):
        inbox: Store = Store(ctx.env)
        self.master._worker_inboxes[self.uid] = inbox
        self.master._register_worker(self)
        try:
            while True:
                call: FunctionCall = yield inbox.get()
                tel = ctx.env._telemetry
                span = None
                if tel is not None:
                    # The call envelope carries the submitter's context
                    # across the master/worker hand-off.
                    span = tel.start_span(
                        f"raptor.call:{call.uid}",
                        component="raptor",
                        parent=call.ctx,
                        activate=True,
                        worker=self.uid,
                    )
                try:
                    placement = ctx.placements[0]
                    act = placement.node.run_compute(
                        cores=min(call.cores, placement.num_cores),
                        work=call.duration * placement.node.spec.core_speed,
                        mem_intensity=call.mem_intensity,
                        tag=f"raptor-call-{call.uid}",
                    )
                    yield act.done
                    call.finished_at = ctx.env.now
                    if call.fn is not None:
                        call.result = call.fn()
                    self.master._call_finished(self, call)
                finally:
                    if tel is not None:
                        tel.end_span(span)
        except Interrupt:
            pass
        return TaskResult(exit_code=0)


class RaptorMaster:
    """Dispatches function calls to resident workers, FIFO."""

    def __init__(self, env) -> None:
        self.env = env
        self._workers: list[RaptorWorkerModel] = []
        self._free: deque[RaptorWorkerModel] = deque()
        self._worker_inboxes: dict[int, Store] = {}
        self._backlog: deque[FunctionCall] = deque()
        self.dispatched = 0
        self.completed = 0

    # -- worker construction -------------------------------------------

    def worker_description(
        self, cores: int = 4, name: str = "raptor-worker"
    ) -> TaskDescription:
        """A task description for one worker of this master."""
        return TaskDescription(
            name=name,
            model=RaptorWorkerModel(self),
            ranks=1,
            cores_per_rank=cores,
            mode=TaskMode.SERVICE,
            multi_node=False,
            tags={"pool": "compute"},
        )

    def _register_worker(self, worker: RaptorWorkerModel) -> None:
        self._workers.append(worker)
        self._free.append(worker)
        self._pump()

    # -- call submission ----------------------------------------------------

    def submit(self, call: FunctionCall) -> Event:
        """Queue a function call; returns its completion event."""
        call.done = self.env.event()
        call.submitted_at = self.env.now
        tel = self.env._telemetry
        if tel is not None and call.ctx is None:
            call.ctx = tel.current()
        if tel is not None and tel.provenance is not None:
            tel.provenance.note_raptor_submit(call.uid, self.env.now, call.ctx)
        self._backlog.append(call)
        self._pump()
        return call.done

    def map(
        self, calls: list[FunctionCall]
    ) -> Generator[Event, None, list[FunctionCall]]:
        """Submit many calls and wait for all (process generator)."""
        from ..sim.events import AllOf

        events = [self.submit(c) for c in calls]
        yield AllOf(self.env, events)
        return calls

    # -- dispatch ---------------------------------------------------------------

    def _pump(self) -> None:
        tel = self.env._telemetry
        prov = tel.provenance if tel is not None else None
        while self._backlog and self._free:
            call = self._backlog.popleft()
            worker = self._free.popleft()
            self._worker_inboxes[worker.uid].put(call)
            self.dispatched += 1
            if prov is not None:
                prov.note_raptor_dispatch(call.uid, worker.uid, self.env.now)

    def _call_finished(self, worker: RaptorWorkerModel, call: FunctionCall) -> None:
        self.completed += 1
        self._free.append(worker)
        if call.done is not None and not call.done.triggered:
            call.done.succeed(call)
        self._pump()

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def backlog(self) -> int:
        return len(self._backlog)
