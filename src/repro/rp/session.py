"""The RP Session: shared context for one workflow run.

Owns the simulation environment, the simulated cluster, uid generation,
the profile store, the RPC registry for service discovery, the tracer,
and the run's random stream.  Every other RP component receives the
session and reaches shared state through it — mirroring how RP threads
a Session through its component tree.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..messaging.queues import QueueRegistry
from ..messaging.rpc import RPCRegistry
from ..platform.cluster import Cluster
from ..platform.specs import ClusterSpec, summit_like
from ..sim.core import Environment
from ..sim.trace import Tracer
from ..telemetry.bridge import install_tracer_sink
from ..telemetry.spans import Telemetry
from .config import DEFAULT_RP_CONFIG, RPConfig
from .profiler import ProfileStore

__all__ = ["Session"]


class Session:
    """One RP session == one workflow run on one simulated machine."""

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment | None = None,
        cluster: Cluster | None = None,
        cluster_spec: ClusterSpec | None = None,
        config: RPConfig | None = None,
        seed: int = 42,
        trace: bool = True,
        telemetry: bool | None = None,
    ) -> None:
        self.uid = f"session.{next(Session._ids):04d}"
        self.seed = seed
        self.env = env or Environment()
        if cluster is None:
            cluster = Cluster(self.env, cluster_spec or summit_like(8))
        self.cluster = cluster
        self.config = config or DEFAULT_RP_CONFIG
        self.rng = np.random.default_rng(seed)
        self.tracer = Tracer(self.env, enabled=trace)
        # Always present; when disabled every operation is a no-op and
        # the kernel never sees it (env._telemetry stays None).
        self.telemetry = Telemetry(self.env, enabled=telemetry)
        if self.telemetry.enabled:
            install_tracer_sink(self.telemetry, self.tracer)
        self.profiles = ProfileStore(
            self.env,
            write_time=self.config.profile_write_time,
            read_time_per_record=self.config.profile_read_per_record,
            read_time_base=self.config.profile_read_base,
            read_max_records=self.config.profile_read_max_records,
        )
        self.queues = QueueRegistry(self.env)
        self.rpc_registry = RPCRegistry(self.env)
        self._uid_counters: dict[str, itertools.count] = {}
        self.closed = False

    def new_uid(self, prefix: str) -> str:
        """Monotonic uids per prefix: task.000000, pilot.0000, ..."""
        counter = self._uid_counters.get(prefix)
        if counter is None:
            counter = itertools.count()
            self._uid_counters[prefix] = counter
        width = 6 if prefix == "task" else 4
        return f"{prefix}.{next(counter):0{width}d}"

    def stable_rng(self, tag: str) -> np.random.Generator:
        """A generator seeded from (session seed, tag).

        Task models draw their run-to-run noise from a stable stream
        keyed by the task's name, so two runs of the same workload
        under different monitoring configurations see *identical* task
        durations (common random numbers) and config comparisons are
        paired rather than noise-dominated.
        """
        import zlib

        digest = zlib.crc32(f"{self.seed}:{tag}".encode())
        return np.random.default_rng(digest)

    def jitter(self, nominal: float) -> float:
        """Apply the configured uniform jitter to an overhead value."""
        j = self.config.overhead_jitter
        if j <= 0 or nominal <= 0:
            return nominal
        return float(nominal * self.rng.uniform(1.0 - j, 1.0 + j))

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Session {self.uid} t={self.env.now:.1f}>"
