"""RP state machines: tasks, pilots, services.

"RP's components function as a state machine — the lifecycle of each
component, including application tasks, proceeds through a set of
predictable states" (paper Sec 2.3.2).  The workflow namespace is built
from exactly these states and the timestamped events inside them, so
the model here matches RADICAL-Pilot's published state names.
"""

from __future__ import annotations

__all__ = [
    "TaskState",
    "PilotState",
    "TASK_STATE_ORDER",
    "TASK_FINAL_STATES",
    "PILOT_FINAL_STATES",
    "EXECUTING_EVENTS",
    "is_valid_transition",
    "InvalidTransition",
]


class InvalidTransition(RuntimeError):
    """Raised when a component is driven through an illegal transition."""


class TaskState:
    """Task lifecycle states (subset of RP's, in causal order)."""

    NEW = "NEW"
    TMGR_SCHEDULING = "TMGR_SCHEDULING"
    TMGR_STAGING_INPUT = "TMGR_STAGING_INPUT"
    AGENT_SCHEDULING_PENDING = "AGENT_SCHEDULING_PENDING"
    AGENT_SCHEDULING = "AGENT_SCHEDULING"
    AGENT_EXECUTING_PENDING = "AGENT_EXECUTING_PENDING"
    AGENT_EXECUTING = "AGENT_EXECUTING"
    AGENT_STAGING_OUTPUT = "AGENT_STAGING_OUTPUT"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"


#: Causal order of non-final task states.
TASK_STATE_ORDER: list[str] = [
    TaskState.NEW,
    TaskState.TMGR_SCHEDULING,
    TaskState.TMGR_STAGING_INPUT,
    TaskState.AGENT_SCHEDULING_PENDING,
    TaskState.AGENT_SCHEDULING,
    TaskState.AGENT_EXECUTING_PENDING,
    TaskState.AGENT_EXECUTING,
    TaskState.AGENT_STAGING_OUTPUT,
]

TASK_FINAL_STATES = frozenset(
    {TaskState.DONE, TaskState.FAILED, TaskState.CANCELED}
)

#: The timestamped events inside EXECUTING (paper Listing 1).
EXECUTING_EVENTS: list[str] = [
    "launch_start",
    "exec_start",
    "rank_start",
    "rank_stop",
    "exec_stop",
    "launch_stop",
]


class PilotState:
    """Pilot lifecycle states."""

    NEW = "NEW"
    PMGR_LAUNCHING_PENDING = "PMGR_LAUNCHING_PENDING"
    PMGR_LAUNCHING = "PMGR_LAUNCHING"
    PMGR_ACTIVE_PENDING = "PMGR_ACTIVE_PENDING"
    PMGR_ACTIVE = "PMGR_ACTIVE"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"


PILOT_STATE_ORDER: list[str] = [
    PilotState.NEW,
    PilotState.PMGR_LAUNCHING_PENDING,
    PilotState.PMGR_LAUNCHING,
    PilotState.PMGR_ACTIVE_PENDING,
    PilotState.PMGR_ACTIVE,
]

PILOT_FINAL_STATES = frozenset(
    {PilotState.DONE, PilotState.FAILED, PilotState.CANCELED}
)

_TASK_INDEX = {state: i for i, state in enumerate(TASK_STATE_ORDER)}
_PILOT_INDEX = {state: i for i, state in enumerate(PILOT_STATE_ORDER)}


def is_valid_transition(current: str, new: str, kind: str = "task") -> bool:
    """True if ``current -> new`` is legal.

    Legal moves are strictly forward along the causal order, or from
    any non-final state into a final state.  Final states are sticky.
    """
    index = _TASK_INDEX if kind == "task" else _PILOT_INDEX
    finals = TASK_FINAL_STATES if kind == "task" else PILOT_FINAL_STATES
    if current in finals:
        return False
    if new in finals:
        return True
    if current not in index or new not in index:
        return False
    return index[new] > index[current]
