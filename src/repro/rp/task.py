"""The Task entity: one unit of work, with its full event history."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim.core import Environment, Event
from .description import TaskDescription, TaskMode
from .states import (
    TASK_FINAL_STATES,
    InvalidTransition,
    TaskState,
    is_valid_transition,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import TaskResult

__all__ = ["Task", "TaskEvent"]


class TaskEvent:
    """One timestamped event in a task's life (profile record)."""

    __slots__ = ("time", "name", "state", "data")

    def __init__(
        self, time: float, name: str, state: str, data: dict[str, Any] | None = None
    ) -> None:
        self.time = time
        self.name = name
        self.state = state
        self.data = data or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskEvent({self.time:.4f}, {self.name!r}, {self.state!r})"


class Task:
    """A task under RP management."""

    def __init__(
        self, env: Environment, uid: str, description: TaskDescription
    ) -> None:
        description.validate()
        self.env = env
        self.uid = uid
        self.description = description
        self.state = TaskState.NEW
        self.events: list[TaskEvent] = [
            TaskEvent(env.now, "state", TaskState.NEW)
        ]
        #: Node names the task's ranks landed on (set by the scheduler).
        self.nodelist: list[str] = []
        #: Fires when the task reaches a final state.
        self.completed: Event = env.event()
        self.result: "TaskResult | None" = None
        self.exception: BaseException | None = None
        #: Wall-clock bookkeeping for analysis.
        self.submitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None

    # -- state machine -------------------------------------------------

    def advance(self, new_state: str, **data: Any) -> None:
        """Move to ``new_state``, recording a timestamped event."""
        if not is_valid_transition(self.state, new_state, kind="task"):
            raise InvalidTransition(
                f"{self.uid}: illegal transition {self.state} -> {new_state}"
            )
        self.state = new_state
        self.events.append(TaskEvent(self.env.now, "state", new_state, data))
        if new_state == TaskState.AGENT_EXECUTING:
            self.started_at = self.env.now
        if new_state in TASK_FINAL_STATES:
            self.finished_at = self.env.now
            if not self.completed.triggered:
                self.completed.succeed(self)

    def record_event(self, name: str, **data: Any) -> None:
        """Record a sub-state event (launch_start, rank_start, ...)."""
        self.events.append(TaskEvent(self.env.now, name, self.state, data))

    # -- classification --------------------------------------------------

    @property
    def is_final(self) -> bool:
        return self.state in TASK_FINAL_STATES

    @property
    def is_service(self) -> bool:
        return self.description.mode == TaskMode.SERVICE

    @property
    def is_monitor(self) -> bool:
        return self.description.mode == TaskMode.MONITOR

    @property
    def is_application(self) -> bool:
        return self.description.mode in (TaskMode.EXECUTABLE, TaskMode.FUNCTION)

    # -- analysis helpers ---------------------------------------------------

    def time_of(self, event_name: str) -> float | None:
        """Timestamp of the first event with ``event_name``, if any."""
        for event in self.events:
            if event.name == event_name or (
                event.name == "state" and event.state == event_name
            ):
                return event.time
        return None

    def duration(self, start_event: str, stop_event: str) -> float | None:
        """Seconds between two recorded events, if both exist."""
        start = self.time_of(start_event)
        stop = self.time_of(stop_event)
        if start is None or stop is None:
            return None
        return stop - start

    @property
    def execution_time(self) -> float | None:
        """launch_start .. launch_stop, the paper's task execution time."""
        return self.duration("launch_start", "launch_stop")

    def state_durations(self) -> dict[str, float]:
        """Seconds spent in each state (final state gets 0)."""
        durations: dict[str, float] = {}
        state_events = [e for e in self.events if e.name == "state"]
        for current, following in zip(state_events, state_events[1:]):
            durations[current.state] = durations.get(current.state, 0.0) + (
                following.time - current.time
            )
        if state_events:
            last = state_events[-1]
            durations.setdefault(last.state, 0.0)
        return durations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.uid} {self.state}>"
