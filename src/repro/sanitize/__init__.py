"""Determinism and lifecycle tooling for the DES stack.

Two halves of one guarantee:

* :mod:`repro.sanitize.simlint` — static analysis (``python -m repro
  lint``): AST rules that flag wall-clock reads, unseeded randomness,
  hash/id ordering, interrupt swallowing, and event/resource lifecycle
  bugs before they run.  ``--flow`` upgrades it with the CFG/dataflow
  engine in :mod:`repro.sanitize.flow` (interprocedural determinism
  taint, path-sensitive lifecycle/interrupt proofs, SL100+).
* :mod:`repro.sim.sanitizer` — runtime sanitizers
  (``Environment(sanitize=True)`` or ``REPRO_SANITIZE=1``): event-leak,
  deadlock, resource-leak, and shared-dict race detection riding the
  kernel's counter hooks.  Re-exported here so tooling has one import
  point.

See DESIGN.md §3c for the rule table and the mapping from determinism
to the paper's measurement-validity argument.
"""

from ..sim.sanitizer import (
    KernelSanitizer,
    SanitizerError,
    SanitizerFinding,
    SharedDict,
    drain_spontaneous_findings,
)
from .flow import (
    build_cfg,
    build_program,
    compute_summaries,
    flow_findings,
    solve_forward,
)
from .simlint import RULES, Finding, Report, Rule, lint_paths, lint_source

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "Report",
    "lint_source",
    "lint_paths",
    "build_cfg",
    "solve_forward",
    "build_program",
    "compute_summaries",
    "flow_findings",
    "KernelSanitizer",
    "SanitizerError",
    "SanitizerFinding",
    "SharedDict",
    "drain_spontaneous_findings",
]
