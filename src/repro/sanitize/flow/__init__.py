"""Flow-sensitive static analysis: CFG, dataflow solver, taint, rules.

The package lowers Python functions to control-flow graphs with
``yield`` as a first-class scheduling-point node, runs worklist
dataflow over them, and composes per-function summaries into
interprocedural determinism-taint analysis.  The SL100+ lint family in
:mod:`.rules` is built on this core; :mod:`repro.sanitize.simlint`
activates it behind ``--flow``.
"""

from .cfg import CFG, Node, build_cfg, stmt_has_yield
from .rules import FLOW_RULE_IDS, REPLACED_BY_FLOW, flow_findings
from .solver import solve_forward
from .summaries import FunctionInfo, Program, build_program, compute_summaries
from .taint import FunctionTaint, Summary, Taint

__all__ = [
    "CFG",
    "Node",
    "build_cfg",
    "stmt_has_yield",
    "solve_forward",
    "FunctionInfo",
    "Program",
    "build_program",
    "compute_summaries",
    "FunctionTaint",
    "Summary",
    "Taint",
    "FLOW_RULE_IDS",
    "REPLACED_BY_FLOW",
    "flow_findings",
]
