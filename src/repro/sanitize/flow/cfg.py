"""Intraprocedural control-flow graphs over Python ``ast``.

simlint's original rules are path-blind: they look at *what* a function
mentions, not *where* control can actually go.  The flow rules (SL100+)
need real paths — "is there an execution on which this ``request()`` is
never released?" — so this module lowers one function body to a small
CFG the worklist solver (:mod:`.solver`) can iterate.

Design notes
------------

* **One node per simple statement.**  Compound statements contribute
  synthetic nodes: ``cond`` for ``if``/``while`` tests, ``loop`` for
  ``for`` headers, ``except`` for handler entries, ``final`` for
  ``finally`` entries, ``with``/``withexit`` for context enter/exit.
* **``yield`` is a first-class node kind.**  Every yield is a kernel
  scheduling point: the process parks, arbitrary simulated time passes,
  and the kernel may *throw* (``Interrupt``) instead of resuming — so a
  yield node gets an exception edge to the innermost handler (or the
  abnormal ``raise`` exit) in addition to its normal successor.
* **``finally``/``with`` cleanup blocks are built once** and every
  abrupt exit (return / break / continue / raise / yield-interrupt)
  is threaded *through* them.  Because the block is shared, its exit
  fans out to the union of continuations — paths merge at cleanups.
  That loses pairing precision (a classic CFG trade-off) but is sound
  for the may-analyses built on top: no real path is missing.
* **Exception edges are deliberately selective.**  Arbitrary statements
  get an ``exc`` edge only while a ``try``/``except`` is active (the
  handler path is then analyzable); yields and explicit ``raise``
  always get one.  Giving *every* statement an implicit edge to the
  abnormal exit would make "released on all paths" unprovable for any
  non-trivial function and drown the lifecycle rule in noise.

Node labels are stable strings (``kind@line``) so tests can assert a
whole edge set against a hand-drawn graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Node", "CFG", "build_cfg", "stmt_has_yield"]

#: Statement/synthetic node kinds a CFG can contain.
KINDS = (
    "entry", "exit", "raise", "stmt", "yield", "cond", "loop",
    "except", "final", "with", "withexit",
)


def _iter_same_function(node: ast.AST):
    """Child walk that does not descend into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def stmt_has_yield(stmt: ast.stmt) -> bool:
    """True if this (simple) statement suspends the generator."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False  # a nested def's yields suspend *that* function
    if isinstance(stmt, (ast.Yield, ast.YieldFrom)):
        return True
    return any(
        isinstance(child, (ast.Yield, ast.YieldFrom))
        for child in _iter_same_function(stmt)
    )


@dataclass(slots=True)
class Node:
    """One CFG vertex: a simple statement or a synthetic control point."""

    index: int
    kind: str
    line: int = 0
    stmt: ast.AST | None = None

    @property
    def label(self) -> str:
        if self.kind in ("entry", "exit", "raise"):
            return self.kind
        return f"{self.kind}@{self.line}"


@dataclass(slots=True)
class CFG:
    """Control-flow graph of one function body."""

    name: str
    nodes: list[Node]
    succ: dict[int, list[tuple[int, str]]]
    pred: dict[int, list[tuple[int, str]]]
    entry: int
    exit: int
    raise_exit: int

    def edges(self) -> set[tuple[str, str, str]]:
        """``{(src_label, dst_label, kind)}`` — for hand-drawn assertions."""
        out = set()
        for src, targets in self.succ.items():
            for dst, kind in targets:
                out.add((self.nodes[src].label, self.nodes[dst].label, kind))
        return out

    def node(self, index: int) -> Node:
        return self.nodes[index]


@dataclass(slots=True)
class _Cleanup:
    """A finally/with-exit block jumps must thread through."""

    entry: int
    frontier: list[tuple[int, str]]


@dataclass(slots=True)
class _Loop:
    depth: int  # cleanup-stack depth at loop entry
    continue_target: int
    breaks: list[tuple[int, str]] = field(default_factory=list)


@dataclass(slots=True)
class _TryCtx:
    handlers: list[int]  # handler entry node indices
    depth: int  # cleanup-stack depth when the handlers became active


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.nodes: list[Node] = []
        self._edges: set[tuple[int, int, str]] = set()
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise")
        self.cleanups: list[_Cleanup] = []
        self.loops: list[_Loop] = []
        self.tries: list[_TryCtx] = []

    # -- plumbing ------------------------------------------------------

    def _new(self, kind: str, line: int = 0, stmt: ast.AST | None = None) -> int:
        node = Node(len(self.nodes), kind, line, stmt)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int, kind: str) -> None:
        self._edges.add((src, dst, kind))

    def _connect(self, frontier: Iterable[tuple[int, str]], target: int) -> None:
        for node, kind in frontier:
            self._edge(node, target, kind)

    def _thread(self, src: int, kind: str, depth: int) -> list[tuple[int, str]]:
        """Route a jump from ``src`` through cleanups below ``depth``.

        Returns the dangling frontier after the outermost threaded
        cleanup (or just ``src`` when none intervene).
        """
        frontier = [(src, kind)]
        for cleanup in reversed(self.cleanups[depth:]):
            for node, _k in frontier:
                self._edge(node, cleanup.entry, kind)
            frontier = [(node, kind) for node, _k in cleanup.frontier]
        return frontier

    def _route(self, src: int, kind: str, target: int, depth: int) -> None:
        for node, k in self._thread(src, kind, depth):
            self._edge(node, target, k)

    def _exc_edges(self, node: int, always: bool) -> None:
        """Exception edge policy (see module docstring)."""
        if self.tries:
            ctx = self.tries[-1]
            for handler in ctx.handlers:
                self._route(node, "exc", handler, ctx.depth)
        elif always:
            self._route(node, "exc", self.raise_exit, 0)

    # -- statement dispatch -------------------------------------------

    def build(self) -> CFG:
        frontier = self._stmts(self.func.body, [(self.entry, "next")])
        self._connect(frontier, self.exit)
        succ: dict[int, list[tuple[int, str]]] = {}
        pred: dict[int, list[tuple[int, str]]] = {}
        for src, dst, kind in sorted(self._edges):
            succ.setdefault(src, []).append((dst, kind))
            pred.setdefault(dst, []).append((src, kind))
        return CFG(
            self.func.name, self.nodes, succ, pred,
            self.entry, self.exit, self.raise_exit,
        )

    def _stmts(
        self, stmts: Iterable[ast.stmt], frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(
        self, stmt: ast.stmt, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier)
        if isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self._simple_node(stmt, frontier)
            self._route(node, "return", self.exit, 0)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._simple_node(stmt, frontier)
            if self.tries:
                ctx = self.tries[-1]
                for handler in ctx.handlers:
                    self._route(node, "raise", handler, ctx.depth)
            else:
                self._route(node, "raise", self.raise_exit, 0)
            return []
        if isinstance(stmt, ast.Break):
            node = self._simple_node(stmt, frontier)
            if self.loops:
                loop = self.loops[-1]
                loop.breaks.extend(self._thread(node, "break", loop.depth))
            return []
        if isinstance(stmt, ast.Continue):
            node = self._simple_node(stmt, frontier)
            if self.loops:
                loop = self.loops[-1]
                self._route(node, "continue", loop.continue_target, loop.depth)
            return []
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        # Everything else — Assign, Expr, Assert, Pass, nested defs, … —
        # is a single sequential node.
        node = self._simple_node(stmt, frontier)
        return [(node, "next")]

    def _simple_node(
        self, stmt: ast.stmt, frontier: list[tuple[int, str]]
    ) -> int:
        kind = "yield" if stmt_has_yield(stmt) else "stmt"
        node = self._new(kind, stmt.lineno, stmt)
        self._connect(frontier, node)
        # A parked generator can be thrown into (Interrupt); plain
        # statements only matter exception-wise inside an active try.
        self._exc_edges(node, always=(kind == "yield"))
        return node

    # -- compound statements ------------------------------------------

    def _if(self, stmt: ast.If, frontier) -> list[tuple[int, str]]:
        cond = self._new("cond", stmt.lineno, stmt)
        self._connect(frontier, cond)
        self._exc_edges(cond, always=False)
        out = self._stmts(stmt.body, [(cond, "true")])
        if stmt.orelse:
            out = out + self._stmts(stmt.orelse, [(cond, "false")])
        else:
            out = out + [(cond, "false")]
        return out

    def _while(self, stmt: ast.While, frontier) -> list[tuple[int, str]]:
        cond = self._new("cond", stmt.lineno, stmt)
        self._connect(frontier, cond)
        self._exc_edges(cond, always=False)
        loop = _Loop(len(self.cleanups), cond)
        self.loops.append(loop)
        body = self._stmts(stmt.body, [(cond, "true")])
        for node, _k in body:
            self._edge(node, cond, "back")
        self.loops.pop()
        out: list[tuple[int, str]] = []
        infinite = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        if not infinite:
            # `while x:`-style loops fall through when the test fails;
            # the else clause runs exactly then (skipped by break).
            if stmt.orelse:
                out.extend(self._stmts(stmt.orelse, [(cond, "false")]))
            else:
                out.append((cond, "false"))
        out.extend(loop.breaks)
        return out

    def _for(self, stmt, frontier) -> list[tuple[int, str]]:
        head = self._new("loop", stmt.lineno, stmt)
        self._connect(frontier, head)
        self._exc_edges(head, always=False)
        loop = _Loop(len(self.cleanups), head)
        self.loops.append(loop)
        body = self._stmts(stmt.body, [(head, "true")])
        for node, _k in body:
            self._edge(node, head, "back")
        self.loops.pop()
        out: list[tuple[int, str]] = []
        if stmt.orelse:
            out.extend(self._stmts(stmt.orelse, [(head, "false")]))
        else:
            out.append((head, "false"))
        out.extend(loop.breaks)
        return out

    def _try(self, stmt: ast.Try, frontier) -> list[tuple[int, str]]:
        cleanup: _Cleanup | None = None
        if stmt.finalbody:
            fentry = self._new("final", stmt.finalbody[0].lineno)
            # The block is built in the *outer* context: exceptions it
            # raises itself propagate past this try.
            ffrontier = self._stmts(stmt.finalbody, [(fentry, "next")])
            cleanup = _Cleanup(fentry, ffrontier)

        handler_nodes = [
            self._new("except", handler.lineno, handler)
            for handler in stmt.handlers
        ]
        if cleanup is not None:
            self.cleanups.append(cleanup)
        if handler_nodes:
            self.tries.append(_TryCtx(handler_nodes, len(self.cleanups)))
        body = self._stmts(stmt.body, frontier)
        if handler_nodes:
            self.tries.pop()
        if stmt.orelse:
            # else runs only on normal body completion, handlers inactive.
            body = self._stmts(stmt.orelse, body)

        out = list(body)
        for hnode, handler in zip(handler_nodes, stmt.handlers):
            # Handler bodies run with this try's handlers popped (an
            # exception inside a handler propagates outward) but with
            # the finally still pending.
            out.extend(self._stmts(handler.body, [(hnode, "next")]))

        if cleanup is not None:
            self.cleanups.pop()
            for node, kind in out:
                self._edge(node, cleanup.entry, kind)
            out = [(node, "next") for node, _k in cleanup.frontier]
        return out

    def _with(self, stmt, frontier) -> list[tuple[int, str]]:
        head = self._new("with", stmt.lineno, stmt)
        self._connect(frontier, head)
        self._exc_edges(head, always=False)
        wexit = self._new("withexit", stmt.lineno)
        cleanup = _Cleanup(wexit, [(wexit, "next")])
        self.cleanups.append(cleanup)
        body = self._stmts(stmt.body, [(head, "next")])
        self.cleanups.pop()
        for node, kind in body:
            self._edge(node, wexit, kind)
        return [(wexit, "next")]

    def _match(self, stmt, frontier) -> list[tuple[int, str]]:
        head = self._new("cond", stmt.lineno, stmt)
        self._connect(frontier, head)
        self._exc_edges(head, always=False)
        out: list[tuple[int, str]] = [(head, "false")]
        for case in stmt.cases:
            out.extend(self._stmts(case.body, [(head, "true")]))
        return out


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function body to its control-flow graph."""
    return _Builder(func).build()
