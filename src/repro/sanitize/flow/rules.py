"""Flow-sensitive rule family SL100+ on top of the CFG/solver/taint core.

Each checker receives a ``flag(rule_id, line, col, message)`` callback
and one :class:`~repro.sanitize.flow.summaries.FunctionInfo`; the
driver (:func:`flow_findings`) runs every checker over every function
of one file against a whole-:class:`Program` so the taint rule sees
across call boundaries.

Rules
-----

SL100 (``taint-to-sink``)
    A nondeterministic *source* value (wall-clock, unseeded RNG, OS
    entropy, ``id()``/``hash()``, set iteration order) reaches a
    *scheduling-relevant sink* (``.timeout``/``.succeed``/``.put``/
    ``.send``/``.request(priority=…)``/``heapq.heappush``), possibly
    through helper returns and arguments.  Replaces the occurrence
    rules SL001/SL003–SL007 in flow mode.

SL101 (``leaked-request``)
    A ``<res>.request()`` result that *some* normal-completion path
    never releases (no ``release()``/``cancel()``/``with``), tracked on
    the CFG — the path-sensitive replacement for blanket SL011.
    Passing the request to another function or returning it transfers
    ownership and ends tracking (we under-report rather than guess).

SL102 (``stale-shared-write``)
    A value read from a shared mapping, carried across a ``yield``
    (scheduling point), then written back: a concurrent writer's update
    during the suspension is silently overwritten.  The static twin of
    the runtime lost-update sanitizer.

SL103 (``swallowed-interrupt``)
    A broad ``except`` around a yield on which *some path* neither
    re-raises nor returns.  ``if isinstance(e, Interrupt): raise``
    followed by logging is clean (the surviving path is proven
    non-Interrupt) — old SL008 flagged it.  Replaces SL008 in flow
    mode.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import Callable

from ..simlint import _body_contains_yield, _catches, _is_broad, _walk_same_function
from .cfg import CFG, Node, build_cfg
from .solver import solve_forward
from .summaries import FunctionInfo, Program
from .taint import FunctionTaint, _dotted, _node_exprs, _walk_expr

__all__ = ["flow_findings", "FLOW_RULE_IDS", "REPLACED_BY_FLOW"]

Flag = Callable[[str, int, int, str], None]

#: Rules implemented here.
FLOW_RULE_IDS = ("SL100", "SL101", "SL102", "SL103")

#: Syntactic rules the flow family supersedes when ``--flow`` is active:
#: occurrence rules subsumed by SL100's source→sink reasoning, and the
#: path-blind SL008/SL011 replaced by SL103/SL101.
REPLACED_BY_FLOW = frozenset(
    {"SL001", "SL003", "SL004", "SL005", "SL006", "SL007", "SL008", "SL011"}
)


def flow_findings(program: Program, path: str, flag: Flag) -> None:
    """Run every flow checker over every function defined in ``path``."""
    for info in program.functions_in(path):
        FunctionTaint(info, program).report(
            lambda line, col, msg: flag("SL100", line, col, msg)
        )
        _check_lifecycle(info, flag)
        if info.is_generator:
            _check_stale_reads(info, flag)
        _check_interrupts(info, flag)


# --------------------------------------------------------------------------
# SL101: path-sensitive request lifecycle


def _check_lifecycle(info: FunctionInfo, flag: Flag) -> None:
    requests: dict[str, int] = {}
    for child in _walk_same_function(info.node):
        if (
            isinstance(child, ast.Assign)
            and len(child.targets) == 1
            and isinstance(child.targets[0], ast.Name)
            and isinstance(child.value, ast.Call)
            and isinstance(child.value.func, ast.Attribute)
            and child.value.func.attr == "request"
        ):
            requests.setdefault(child.targets[0].id, child.value.lineno)
    if not requests:
        return

    names = set(requests)
    cfg = info.ensure_cfg()

    def transfer(node: Node, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None:
            return state
        held = set(state)
        if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Name) and ctx.id in names:
                    held = {f for f in held if f[0] != ctx.id}  # __exit__ releases
                else:
                    released, escaped = _classify_uses([ctx], names)
                    held = {f for f in held if f[0] not in released | escaped}
                var = item.optional_vars
                if isinstance(var, ast.Name) and var.id in names:
                    held = {f for f in held if f[0] != var.id}
            return frozenset(held)
        exprs = _node_exprs(node)
        released, escaped = _classify_uses(exprs, names)
        held = {f for f in held if f[0] not in released | escaped}
        rebound = _bound_names(node)
        held = {f for f in held if f[0] not in rebound}
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "request"
        ):
            held.add((stmt.targets[0].id, stmt.value.lineno))
        return frozenset(held)

    states = solve_forward(
        cfg, init=frozenset(), transfer=transfer, join=lambda a, b: a | b
    )
    exit_state = states.get(cfg.exit)
    if not exit_state:
        return
    for name, line in sorted(exit_state):
        witness = _witness_line(cfg, states, transfer, (name, line))
        where = f" (e.g. via line {witness})" if witness else ""
        flag(
            "SL101",
            line,
            0,
            f"request {name!r} is not released on every path — a "
            f"normal-completion path{where} reaches function exit without "
            "release()/cancel()/`with`, pinning the resource slot",
        )


def _classify_uses(
    exprs: list[ast.expr], names: set[str]
) -> tuple[set[str], set[str]]:
    """Split tracked-name uses into (released, escaped).

    Benign uses — ``yield req``, attribute reads like ``req.triggered``,
    and the release call itself — keep tracking alive.  Any other
    occurrence (argument to a call, return value, container element,
    alias) transfers ownership: tracking stops without a finding.
    """
    benign: set[ast.AST] = set()  # AST nodes hash by identity
    released: set[str] = set()
    for expr in exprs:
        for sub in _walk_expr(expr):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in ("release", "cancel"):
                    target = sub.func.value
                    if isinstance(target, ast.Name) and target.id in names:
                        released.add(target.id)
                        benign.add(target)
                    for arg in sub.args:
                        if isinstance(arg, ast.Name) and arg.id in names:
                            released.add(arg.id)
                            benign.add(arg)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                if isinstance(sub.value, ast.Name) and sub.value.id in names:
                    benign.add(sub.value)
            elif isinstance(sub, ast.Attribute):
                if isinstance(sub.value, ast.Name) and sub.value.id in names:
                    benign.add(sub.value)
    escaped: set[str] = set()
    for expr in exprs:
        for sub in _walk_expr(expr):
            if (
                isinstance(sub, ast.Name)
                and sub.id in names
                and sub not in benign
            ):
                escaped.add(sub.id)
    return released, escaped


def _bound_names(node: Node) -> set[str]:
    stmt = node.stmt
    out: set[str] = set()

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            add_target(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        add_target(stmt.target)
    elif node.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        add_target(stmt.target)
    return out


def _witness_line(cfg: CFG, states, transfer, fact) -> int | None:
    """Line of an exit predecessor still holding ``fact`` (for the report)."""
    lines = []
    for pred, _kind in cfg.pred.get(cfg.exit, ()):
        if pred in states and fact in transfer(cfg.nodes[pred], states[pred]):
            line = cfg.nodes[pred].line
            if line:
                lines.append(line)
    return min(lines) if lines else None


# --------------------------------------------------------------------------
# SL102: stale read written back across a yield


def _key_repr(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Constant):
        return repr(expr.value)
    return _dotted(expr)


def _read_fact(stmt: ast.AST) -> tuple[str, str, str, int] | None:
    """Match ``v = m[k]`` / ``v = m.get(k, …)`` → (var, container, key, line)."""
    if not (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return None
    var = stmt.targets[0].id
    value = stmt.value
    if isinstance(value, ast.Subscript):
        container = _dotted(value.value)
        key = _key_repr(value.slice)
    elif (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "get"
        and value.args
    ):
        container = _dotted(value.func.value)
        key = _key_repr(value.args[0])
    else:
        return None
    if container is None or key is None:
        return None
    return (var, container, key, stmt.lineno)


_FRESH_CALLS = {"dict", "list", "set", "defaultdict", "Counter", "OrderedDict"}


def _local_containers(info: FunctionInfo) -> set[str]:
    """Names bound to containers created locally (no concurrent writer)."""
    fresh: set[str] = set()
    for child in _walk_same_function(info.node):
        if not (
            isinstance(child, ast.Assign)
            and len(child.targets) == 1
            and isinstance(child.targets[0], ast.Name)
        ):
            continue
        value = child.value
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp)):
            fresh.add(child.targets[0].id)
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _FRESH_CALLS
        ):
            fresh.add(child.targets[0].id)
    return fresh


def _check_stale_reads(info: FunctionInfo, flag: Flag) -> None:
    local = _local_containers(info)
    tracked = False
    for child in _walk_same_function(info.node):
        fact = _read_fact(child)
        if fact is not None and fact[1].split(".")[0] not in local:
            tracked = True
            break
    if not tracked:
        return

    cfg = info.ensure_cfg()

    def transfer(node: Node, state: frozenset) -> frozenset:
        stmt = node.stmt
        facts = set(state)
        if node.kind == "yield":
            facts = {(v, c, k, line, True) for (v, c, k, line, _s) in facts}
        if stmt is None:
            return frozenset(facts)
        bound = _bound_names(node)
        if bound:
            facts = {f for f in facts if f[0] not in bound}
        fact = _read_fact(stmt)
        if fact is not None and fact[1].split(".")[0] not in local:
            var, container, key, line = fact
            facts.add((var, container, key, line, False))
        for container, key in _subscript_writes(stmt):
            facts = {f for f in facts if (f[1], f[2]) != (container, key)}
        return frozenset(facts)

    states = solve_forward(
        cfg, init=frozenset(), transfer=transfer, join=lambda a, b: a | b
    )
    seen: set[tuple[int, str]] = set()
    for index, state in states.items():
        stmt = cfg.nodes[index].stmt
        if not isinstance(stmt, ast.Assign) or not state:
            continue
        for container, key in _subscript_writes(stmt):
            for sub in _walk_expr(stmt.value):
                if not isinstance(sub, ast.Name):
                    continue
                for (v, c, k, line, stale) in state:
                    if (
                        stale
                        and v == sub.id
                        and c == container
                        and k == key
                        and (stmt.lineno, v) not in seen
                    ):
                        seen.add((stmt.lineno, v))
                        flag(
                            "SL102",
                            stmt.lineno,
                            stmt.col_offset,
                            f"{v!r} read from {container}[{key}] at line "
                            f"{line} is written back after a yield — an "
                            "update made by another process during the "
                            "suspension is silently lost",
                        )


def _subscript_writes(stmt: ast.AST) -> list[tuple[str, str]]:
    out = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    else:
        return out
    for target in targets:
        if isinstance(target, ast.Subscript):
            container = _dotted(target.value)
            key = _key_repr(target.slice)
            if container is not None and key is not None:
                out.append((container, key))
    return out


# --------------------------------------------------------------------------
# SL103: path-sensitive Interrupt swallowing


def _check_interrupts(info: FunctionInfo, flag: Flag) -> None:
    for child in _walk_same_function(info.node):
        if not isinstance(child, ast.Try):
            continue
        if not _body_contains_yield(child.body):
            continue
        interrupt_seen = False
        for handler in child.handlers:
            if handler.type is not None and _catches(handler.type, {"Interrupt"}):
                interrupt_seen = True  # dedicated handler shadows later ones
                continue
            if interrupt_seen or not _is_broad(handler):
                continue
            if _handler_swallows(handler):
                flag(
                    "SL103",
                    handler.lineno,
                    handler.col_offset,
                    "broad except around a yield: some handler path neither "
                    "re-raises nor returns, so a kernel Interrupt delivered "
                    "at the yield is silently swallowed",
                )


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """May a maybe-Interrupt exception fall out of this handler's body?

    Runs a tiny path-sensitive analysis over the handler body's CFG:
    the state is a one-token set ({"int?"} = the caught exception may
    still be an Interrupt).  ``isinstance`` tests on the bound name
    refine it per branch; raises leave via the abnormal exit; returns
    count as deliberate termination.  The handler swallows iff the
    token reaches the normal exit.
    """
    if not handler.body:
        return True
    # _Builder only touches .name/.body, so a namespace stands in for a
    # FunctionDef when lowering the handler body alone.
    shell = SimpleNamespace(name=f"except@{handler.lineno}", body=handler.body)
    cfg = build_cfg(shell)  # type: ignore[arg-type]
    exc_name = handler.name

    def edge_transfer(node: Node, out: frozenset, kind: str):
        if kind == "return":
            return None  # explicit termination — not a silent swallow
        if (
            exc_name is not None
            and node.kind == "cond"
            and isinstance(node.stmt, (ast.If, ast.While))
        ):
            polarity = _interrupt_test(node.stmt.test, exc_name)
            if polarity is True and kind == "false":
                return frozenset()  # proven not an Interrupt
            if polarity is False and kind == "true":
                return frozenset()
        return out

    states = solve_forward(
        cfg,
        init=frozenset({"int?"}),
        transfer=lambda node, state: state,
        join=lambda a, b: a | b,
        edge_transfer=edge_transfer,
    )
    exit_state = states.get(cfg.exit)
    return bool(exit_state and "int?" in exit_state)


def _interrupt_test(test: ast.expr, exc_name: str) -> bool | None:
    """Classify a branch test w.r.t. the caught exception.

    ``True``  — test passing means the exception *may be* an Interrupt
                (``isinstance(e, Interrupt)`` or a tuple including it);
                the false branch proves it is not.
    ``False`` — test passing proves it is *not* an Interrupt
                (``isinstance(e, ValueError)``, or a negated check).
    ``None``  — unrelated test; no refinement.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _interrupt_test(test.operand, exc_name)
        return None if inner is None else not inner
    if not (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Name)
        and test.func.id == "isinstance"
        and len(test.args) == 2
        and isinstance(test.args[0], ast.Name)
        and test.args[0].id == exc_name
    ):
        return None
    classes = test.args[1]
    elts = classes.elts if isinstance(classes, ast.Tuple) else [classes]
    for elt in elts:
        if isinstance(elt, ast.Name) and elt.id == "Interrupt":
            return True
        if isinstance(elt, ast.Attribute) and elt.attr == "Interrupt":
            return True
    return False
