"""A small forward worklist dataflow solver over :mod:`.cfg` graphs.

The solver is rule-agnostic: a flow rule supplies its own lattice via
three callables —

``transfer(node, state) -> state``
    The effect of executing ``node`` on an entry state.

``edge_transfer(node, out_state, kind) -> state | None``
    Optional path-sensitivity hook: refine the outgoing state per edge
    kind (``true``/``false``/``return``/``exc``/…).  Returning ``None``
    kills the edge (nothing propagates).

``join(a, b) -> state``
    Merge states at control-flow joins.  Must be monotone (a union for
    every rule shipped here) so the fixpoint terminates.

States are compared with ``==`` — rules use hashable immutable values
(dicts of frozensets, frozensets of tuples) so equality is structural.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .cfg import CFG, Node

__all__ = ["solve_forward"]

Transfer = Callable[[Node, Any], Any]
EdgeTransfer = Callable[[Node, Any, str], Any]
Join = Callable[[Any, Any], Any]


def solve_forward(
    cfg: CFG,
    *,
    init: Any,
    transfer: Transfer,
    join: Join,
    edge_transfer: EdgeTransfer | None = None,
    max_steps: int | None = None,
) -> dict[int, Any]:
    """Iterate to a fixpoint; returns the entry state of every node.

    Unreachable nodes are absent from the result.  ``max_steps`` is a
    backstop against a non-monotone rule looping forever (the default
    scales with graph size and is far above any honest fixpoint).
    """
    states: dict[int, Any] = {cfg.entry: init}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    budget = max_steps if max_steps is not None else 200 * max(len(cfg.nodes), 1)
    steps = 0
    while work:
        steps += 1
        if steps > budget:  # pragma: no cover - defensive backstop
            raise RuntimeError(
                f"dataflow over {cfg.name!r} did not converge in {budget} steps"
            )
        index = work.popleft()
        queued.discard(index)
        node = cfg.nodes[index]
        out = transfer(node, states[index])
        for succ, kind in cfg.succ.get(index, ()):
            prop = edge_transfer(node, out, kind) if edge_transfer else out
            if prop is None:
                continue
            old = states.get(succ)
            merged = prop if old is None else join(old, prop)
            if old is None or merged != old:
                states[succ] = merged
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
    return states
