"""Whole-program view: function collection, call resolution, summaries.

A :class:`Program` indexes every function/method in the analyzed file
set by qualified name (``<module>.<Class>.<method>``) and computes one
:class:`~repro.sanitize.flow.taint.Summary` per function so the taint
rule can follow values across call boundaries: a helper that returns
``time.perf_counter()`` taints its callers' variables, and a helper
that forwards an argument into ``.put(...)`` turns every call site into
a sink.

Call resolution is deliberately conservative:

* ``name(...)`` — a function defined in the same module wins; otherwise
  the name is matched against the whole program only when exactly one
  function carries it.
* ``self.m(...)`` / ``cls.m(...)`` — resolved inside the enclosing
  class when it defines ``m``.
* ``obj.m(...)`` — matched program-wide only when exactly one function
  is named ``m`` (unknown attribute calls otherwise fall back to
  "union of argument taints", which keeps the analysis sound-ish
  without exploding on stdlib calls).

Summaries are computed to a fixpoint with a reverse-dependency
worklist: when a callee's summary grows, only its callers re-run.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterable

from ..simlint import _Imports
from .cfg import CFG, build_cfg
from .taint import EMPTY_SUMMARY, FunctionTaint, Summary

__all__ = ["FunctionInfo", "Program", "build_program", "compute_summaries"]


@dataclass(slots=True)
class FunctionInfo:
    """One analyzed function/method with its lazily-built CFG."""

    qualname: str
    name: str
    module: str
    class_name: str | None
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    imports: _Imports
    params: list[str]
    is_generator: bool
    _cfg: CFG | None = field(default=None, repr=False)

    def ensure_cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg


class Program:
    """Functions of the analyzed tree, indexed for call resolution."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[str]] = {}
        self.by_path: dict[str, list[str]] = {}
        self.summaries: dict[str, Summary] = {}

    def add(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self.by_name.setdefault(info.name, []).append(info.qualname)
        self.by_path.setdefault(info.path, []).append(info.qualname)

    def functions_in(self, path: str) -> list[FunctionInfo]:
        return [self.functions[q] for q in self.by_path.get(path, ())]

    def resolve_call(self, caller: FunctionInfo, func: ast.expr) -> list[str]:
        """Qualified names a call expression may target ([] = unknown)."""
        if isinstance(func, ast.Name):
            local = f"{caller.module}.{func.id}"
            if local in self.functions:
                return [local]
            if caller.class_name is not None:
                # Nested helper defined inside a method of the class.
                nested = f"{caller.module}.{caller.class_name}.{func.id}"
                if nested in self.functions:
                    return [nested]
            candidates = self.by_name.get(func.id, [])
            return candidates if len(candidates) == 1 else []
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and caller.class_name is not None
            ):
                method = f"{caller.module}.{caller.class_name}.{func.attr}"
                if method in self.functions:
                    return [method]
                return []
            candidates = self.by_name.get(func.attr, [])
            return candidates if len(candidates) == 1 else []
        return []


def _params_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def _has_yield(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _collect(
    program: Program,
    body: list[ast.stmt],
    *,
    module: str,
    path: str,
    imports: _Imports,
    prefix: str,
    class_name: str | None,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}.{stmt.name}"
            program.add(
                FunctionInfo(
                    qualname=qualname,
                    name=stmt.name,
                    module=module,
                    class_name=class_name,
                    path=path,
                    node=stmt,
                    imports=imports,
                    params=_params_of(stmt),
                    is_generator=_has_yield(stmt),
                )
            )
            _collect(
                program, stmt.body,
                module=module, path=path, imports=imports,
                prefix=qualname, class_name=class_name,
            )
        elif isinstance(stmt, ast.ClassDef):
            _collect(
                program, stmt.body,
                module=module, path=path, imports=imports,
                prefix=f"{prefix}.{stmt.name}", class_name=stmt.name,
            )


def build_program(sources: Iterable[tuple[str, str]]) -> Program:
    """Build a :class:`Program` from ``(path, source)`` pairs.

    Files that fail to parse are skipped (the syntactic linter already
    reports hard syntax errors per file).
    """
    program = Program()
    for path, source in sources:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        imports = _Imports()
        imports.visit(tree)
        module = PurePath(path).stem
        _collect(
            program, tree.body,
            module=module, path=path, imports=imports,
            prefix=module, class_name=None,
        )
    return program


def compute_summaries(program: Program, *, max_steps: int | None = None) -> None:
    """Fixpoint of per-function summaries over the call graph.

    Starts every function in the worklist; when a summary changes, the
    function's known callers are requeued.  Summaries only grow (unions
    over finite taint sets), so this terminates; ``max_steps`` is a
    defensive backstop.
    """
    callers: dict[str, set[str]] = {}
    work: deque[str] = deque(program.functions)
    queued = set(work)
    budget = max_steps if max_steps is not None else 20 * max(len(queued), 1)
    steps = 0
    while work:
        steps += 1
        if steps > budget:  # pragma: no cover - defensive backstop
            break
        qualname = work.popleft()
        queued.discard(qualname)
        info = program.functions[qualname]
        summary, callees = FunctionTaint(info, program).summarize()
        for callee in callees:
            callers.setdefault(callee, set()).add(qualname)
        if summary != program.summaries.get(qualname, EMPTY_SUMMARY):
            program.summaries[qualname] = summary
            for caller in callers.get(qualname, ()):
                if caller not in queued:
                    queued.add(caller)
                    work.append(caller)
