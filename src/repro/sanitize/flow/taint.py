"""Determinism-taint interpretation over one function's CFG.

The syntactic rules flag every *occurrence* of a nondeterministic
source; this module flags only the occurrences whose values actually
**reach a scheduling-relevant sink** — an ``env.timeout`` delay, an
event/message payload, a queue priority.  ``t0 = time.perf_counter()``
feeding a host-side benchmark report is clean; the same call feeding a
simulated delay is a reproducibility bug.

Taint facts
-----------

A :class:`Taint` is ``(kind, line, source)``.  Real kinds (reportable at
sinks): ``wall-clock``, ``global-random``, ``entropy``, ``id-order``,
``hash-order``, ``set-order``.  Two internal kinds thread the analysis:

* ``set-value`` — the value *is* a set.  Harmless by itself; it becomes
  ``set-order`` the moment something materializes its iteration order
  (``for x in s``, ``list(s)``, ``"".join(s)``).  Order-insensitive
  reducers (``sorted``/``len``/``sum``/``min``/``max``/``any``/``all``)
  erase both set kinds — ``sorted(some_set)`` is deterministic.
* ``param:<i>`` — symbolic taint of the i-th parameter, used when
  computing an interprocedural :class:`Summary`: "returns whatever its
  2nd argument was", "passes its 1st argument into a payload sink".

The same interpreter serves both passes: :meth:`FunctionTaint.summarize`
seeds parameters symbolically and extracts a summary;
:meth:`FunctionTaint.report` runs unseeded and emits SL100 findings,
applying callee summaries at resolved call sites so taint follows
helper returns and arguments across function boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from ..simlint import (
    _ENTROPY,
    _NUMPY_RANDOM_OK,
    _SET_METHODS,
    _WALL_CLOCK,
    _is_set_expr,
)
from .cfg import Node, stmt_has_yield
from .solver import solve_forward

__all__ = ["Taint", "Summary", "FunctionTaint", "REAL_KINDS", "EMPTY_SUMMARY"]


@dataclass(frozen=True, slots=True)
class Taint:
    kind: str
    line: int
    source: str


#: Kinds that constitute a finding when they reach a sink.
REAL_KINDS = {
    "wall-clock", "global-random", "entropy", "id-order", "hash-order",
    "set-order",
}

_ORDER_INSENSITIVE = {"sorted", "len", "sum", "min", "max", "any", "all"}
_SET_CONSTRUCTORS = {"set", "frozenset"}
_ORDER_MATERIALIZERS = {"list", "tuple"}
_LOCAL_RNG_FACTORIES = {"random.Random", "random.SystemRandom"}

#: Method-name sinks: attr -> human description of the sink.
SINK_METHODS = {
    "timeout": "a simulated delay",
    "succeed": "an event payload",
    "put": "a queue/store payload",
    "send": "a message payload",
    "request": "a scheduling priority",
    "schedule": "an event schedule",
}

#: Fully-resolved function sinks: dotted name -> description.
SINK_FUNCTIONS = {
    "heapq.heappush": "a heap scheduling key",
    "heapq.heappushpop": "a heap scheduling key",
}

_EMPTY: frozenset[Taint] = frozenset()


def _collapse(taints: frozenset[Taint]) -> frozenset[Taint]:
    """Keep one representative :class:`Taint` per kind.

    A finding needs *one* origin per nondeterminism kind; carrying every
    contributing source line through the interprocedural fixpoint makes
    the sets (and their unions) grow with the whole call graph.
    Collapsing bounds every taint set by the number of kinds, which is
    what makes the summary fixpoint converge quickly at tree scale.
    """
    if len(taints) <= 1:
        return taints
    best: dict[str, Taint] = {}
    for taint in taints:
        cur = best.get(taint.kind)
        if cur is None or (taint.line, taint.source) < (cur.line, cur.source):
            best[taint.kind] = taint
    if len(best) == len(taints):
        return taints
    return frozenset(best.values())


@dataclass(frozen=True, slots=True)
class Summary:
    """Interprocedural facts about one function."""

    returns: frozenset[Taint]          # source taint minted inside, escaping via return
    param_returns: frozenset[int]      # params whose taint flows to the return value
    sink_params: frozenset[tuple[int, str]]  # (param index, sink description)


EMPTY_SUMMARY = Summary(_EMPTY, frozenset(), frozenset())


def _walk_expr(expr: ast.expr):
    """All sub-expressions, not descending into lambdas/comprehension defs."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _dotted(expr: ast.expr) -> str | None:
    """``a.b.c`` chains as a string (used as abstract state keys)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


class FunctionTaint:
    """Run the taint lattice over one function.

    ``info`` is a :class:`repro.sanitize.flow.summaries.FunctionInfo`;
    ``program`` (optional) provides callee summaries and resolution.
    """

    def __init__(self, info, program=None) -> None:
        self.info = info
        self.program = program
        self.imports = info.imports
        self._callees: set[str] = set()
        self._sink_params: set[tuple[int, str]] = set()
        self._report: Callable | None = None
        self._reported: set[tuple[int, int, str]] = set()

    # -- public entry points ------------------------------------------

    def summarize(self) -> tuple[Summary, set[str]]:
        """Compute this function's summary with symbolic parameter taints."""
        seeds = {
            name: frozenset({Taint(f"param:{i}", 0, name)})
            for i, name in enumerate(self.info.params)
        }
        states = self._solve(seeds)
        self._sink_params.clear()
        self._scan(states, report=None)
        returns, param_returns = self._return_taints(states)
        summary = Summary(
            _collapse(frozenset(returns)), frozenset(param_returns),
            frozenset(self._sink_params),
        )
        return summary, self._callees

    def report(self, report: Callable[[int, int, str], None]) -> None:
        """Emit SL100 findings: real source taint reaching a sink."""
        states = self._solve({})
        self._scan(states, report=report)

    # -- dataflow ------------------------------------------------------

    def _solve(self, seeds: dict[str, frozenset[Taint]]):
        cfg = self.info.ensure_cfg()
        return solve_forward(
            cfg,
            init=dict(seeds),
            transfer=self._transfer,
            join=_join,
        )

    def _transfer(self, node: Node, state: dict) -> dict:
        stmt = node.stmt
        if stmt is None:
            return state
        if node.kind in ("stmt", "yield"):
            if isinstance(stmt, ast.Assign):
                taint = self._value_taint(stmt.value, state)
                return self._bind_targets(stmt.targets, taint, state)
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taint = self._value_taint(stmt.value, state)
                return self._bind_targets([stmt.target], taint, state)
            if isinstance(stmt, ast.AugAssign):
                taint = self.taint_of(stmt.value, state)
                key = _dotted(stmt.target)
                if key is not None and taint:
                    state = dict(state)
                    state[key] = _collapse(state.get(key, _EMPTY) | taint)
                return state
            if isinstance(stmt, ast.Delete):
                keys = [_dotted(t) for t in stmt.targets]
                if any(k in state for k in keys if k is not None):
                    state = dict(state)
                    for k in keys:
                        state.pop(k, None)
                return state
            return state
        if node.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._element_taint(stmt.iter, state, stmt.lineno)
            return self._bind_targets([stmt.target], taint, state)
        if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    taint = self.taint_of(item.context_expr, state)
                    state = self._bind_targets([item.optional_vars], taint, state)
            return state
        return state

    def _bind_targets(self, targets, taint: frozenset[Taint], state: dict) -> dict:
        taint = _collapse(taint)
        state = dict(state)
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                state = self._bind_targets(target.elts, taint, state)
            elif isinstance(target, ast.Starred):
                state = self._bind_targets([target.value], taint, state)
            elif isinstance(target, ast.Subscript):
                # Writing a tainted element taints the container: a dict
                # payload assembled field-by-field stays tracked.
                key = _dotted(target.value)
                if key is not None:
                    if taint:
                        state[key] = _collapse(state.get(key, _EMPTY) | taint)
            else:
                key = _dotted(target)
                if key is not None:
                    if taint:
                        state[key] = taint
                    else:
                        state.pop(key, None)
        return state

    def _value_taint(self, value: ast.expr, state: dict) -> frozenset[Taint]:
        if isinstance(value, (ast.Yield, ast.YieldFrom, ast.Await)):
            return _EMPTY  # resumed value comes from the kernel, assume clean
        return self.taint_of(value, state)

    def _element_taint(
        self, iterable: ast.expr, state: dict, line: int
    ) -> frozenset[Taint]:
        taint = self.taint_of(iterable, state)
        element = frozenset(t for t in taint if t.kind != "set-value")
        if _is_set_expr(iterable) or any(t.kind == "set-value" for t in taint):
            element |= {
                Taint("set-order", line, "set iteration order")
            }
        return element

    # -- expression evaluation ----------------------------------------

    def taint_of(self, expr: ast.expr, state: dict) -> frozenset[Taint]:
        if isinstance(expr, ast.Constant):
            return _EMPTY
        if isinstance(expr, (ast.Name, ast.Attribute)):
            key = _dotted(expr)
            if key is not None and key in state:
                return state[key]
            if isinstance(expr, ast.Attribute):
                return self.taint_of(expr.value, state)
            return _EMPTY
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, state)
        if isinstance(expr, ast.BinOp):
            return self.taint_of(expr.left, state) | self.taint_of(expr.right, state)
        if isinstance(expr, ast.UnaryOp):
            return self.taint_of(expr.operand, state)
        if isinstance(expr, ast.BoolOp):
            out = _EMPTY
            for v in expr.values:
                out |= self.taint_of(v, state)
            return out
        if isinstance(expr, ast.Compare):
            out = self.taint_of(expr.left, state)
            for comp in expr.comparators:
                out |= self.taint_of(comp, state)
            return out
        if isinstance(expr, ast.IfExp):
            return self.taint_of(expr.body, state) | self.taint_of(expr.orelse, state)
        if isinstance(expr, (ast.Tuple, ast.List)):
            out = _EMPTY
            for elt in expr.elts:
                out |= self.taint_of(elt, state)
            return out
        if isinstance(expr, ast.Set):
            out = frozenset({Taint("set-value", expr.lineno, "set literal")})
            for elt in expr.elts:
                out |= self.taint_of(elt, state)
            return out
        if isinstance(expr, ast.Dict):
            out = _EMPTY
            for k, v in zip(expr.keys, expr.values):
                if k is not None:
                    out |= self.taint_of(k, state)
                out |= self.taint_of(v, state)
            return out
        if isinstance(expr, ast.Subscript):
            return self.taint_of(expr.value, state) | self.taint_of(expr.slice, state)
        if isinstance(expr, ast.Starred):
            return self.taint_of(expr.value, state)
        if isinstance(expr, ast.JoinedStr):
            out = _EMPTY
            for v in expr.values:
                if isinstance(v, ast.FormattedValue):
                    out |= self.taint_of(v.value, state)
            return out
        if isinstance(expr, ast.Slice):
            out = _EMPTY
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    out |= self.taint_of(part, state)
            return out
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._comp_taint(expr, state)
        if isinstance(expr, ast.NamedExpr):
            return self.taint_of(expr.value, state)
        return _EMPTY

    def _comp_taint(self, expr, state: dict) -> frozenset[Taint]:
        out = _EMPTY
        ordered = not isinstance(expr, ast.SetComp)
        for gen in expr.generators:
            iter_taint = self.taint_of(gen.iter, state)
            out |= frozenset(t for t in iter_taint if t.kind != "set-value")
            if ordered and (
                _is_set_expr(gen.iter)
                or any(t.kind == "set-value" for t in iter_taint)
            ):
                out |= {Taint("set-order", expr.lineno, "set iteration order")}
        if isinstance(expr, ast.DictComp):
            out |= self.taint_of(expr.key, state) | self.taint_of(expr.value, state)
        else:
            out |= self.taint_of(expr.elt, state)
        if isinstance(expr, ast.SetComp):
            out |= {Taint("set-value", expr.lineno, "set comprehension")}
        return out

    # -- calls ---------------------------------------------------------

    def _args_taint(self, call: ast.Call, state: dict) -> frozenset[Taint]:
        out = _EMPTY
        for arg in call.args:
            out |= self.taint_of(arg, state)
        for kw in call.keywords:
            out |= self.taint_of(kw.value, state)
        return out

    def _call_taint(self, call: ast.Call, state: dict) -> frozenset[Taint]:
        line = call.lineno
        dotted = self.imports.resolve(call.func)
        if dotted is not None:
            if dotted in _WALL_CLOCK:
                return frozenset({Taint("wall-clock", line, f"{dotted}()")})
            if dotted == "random.Random":
                if call.args or call.keywords:
                    return _EMPTY  # explicitly seeded instance: deterministic
                return frozenset({Taint("global-random", line, "random.Random()")})
            if dotted == "random.SystemRandom":
                return frozenset({Taint("entropy", line, "random.SystemRandom()")})
            if dotted.startswith("random."):
                return frozenset({Taint("global-random", line, f"{dotted}()")})
            if (
                dotted.startswith("numpy.random.")
                and dotted.split(".")[-1] not in _NUMPY_RANDOM_OK
            ):
                return frozenset({Taint("global-random", line, f"{dotted}()")})
            if dotted in _ENTROPY or dotted.startswith("secrets."):
                return frozenset({Taint("entropy", line, f"{dotted}()")})
            if dotted in SINK_FUNCTIONS:
                self._check_sink(
                    call, SINK_FUNCTIONS[dotted], call.args[1:], call.keywords, state
                )
                return _EMPTY
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name == "id":
                return frozenset({Taint("id-order", line, "id()")})
            if name == "hash":
                return frozenset({Taint("hash-order", line, "hash()")})
            if name in _ORDER_INSENSITIVE:
                return frozenset(
                    t
                    for t in self._args_taint(call, state)
                    if t.kind not in ("set-order", "set-value")
                )
            if name in _SET_CONSTRUCTORS:
                return self._args_taint(call, state) | {
                    Taint("set-value", line, f"{name}()")
                }
            if name in _ORDER_MATERIALIZERS:
                taint = self._args_taint(call, state)
                if any(t.kind == "set-value" for t in taint):
                    taint = frozenset(
                        t for t in taint if t.kind != "set-value"
                    ) | {Taint("set-order", line, f"{name}() of a set")}
                return taint
            return self._apply_summaries(call, state, obj_taint=_EMPTY)
        if isinstance(func, ast.Attribute):
            obj_taint = self.taint_of(func.value, state)
            if func.attr in _SET_METHODS:
                return (
                    obj_taint
                    | self._args_taint(call, state)
                    | {Taint("set-value", line, f".{func.attr}()")}
                )
            if func.attr == "join":
                taint = obj_taint | self._args_taint(call, state)
                if any(t.kind == "set-value" for t in taint):
                    taint = frozenset(
                        t for t in taint if t.kind != "set-value"
                    ) | {Taint("set-order", line, ".join() of a set")}
                return taint
            if func.attr in SINK_METHODS:
                self._check_sink(
                    call, SINK_METHODS[func.attr], call.args, call.keywords, state
                )
                return _EMPTY
            return self._apply_summaries(call, state, obj_taint=obj_taint)
        return self._args_taint(call, state)

    # -- interprocedural application ----------------------------------

    def _apply_summaries(
        self, call: ast.Call, state: dict, obj_taint: frozenset[Taint]
    ) -> frozenset[Taint]:
        default = obj_taint | self._args_taint(call, state)
        if self.program is None:
            return default
        targets = self.program.resolve_call(self.info, call.func)
        if not targets:
            return default
        out = obj_taint
        for qualname in targets:
            self._callees.add(qualname)
            summary = self.program.summaries.get(qualname, EMPTY_SUMMARY)
            callee = self.program.functions[qualname]
            arg_map = self._map_args(call, callee.params)
            out |= summary.returns
            for index in summary.param_returns:
                for arg in arg_map.get(index, ()):
                    out |= self.taint_of(arg, state)
            for index, desc in summary.sink_params:
                for arg in arg_map.get(index, ()):
                    self._sink_values(
                        call, f"{desc} inside {callee.name}()", [arg], state
                    )
        return out

    def _map_args(self, call: ast.Call, params: list[str]) -> dict[int, list[ast.expr]]:
        """Map callee parameter index -> caller argument expressions."""
        mapping: dict[int, list[ast.expr]] = {}
        offset = 1 if params and params[0] in ("self", "cls") else 0
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                for j in range(len(params)):
                    mapping.setdefault(j, []).append(arg.value)
            else:
                mapping.setdefault(i + offset, []).append(arg)
        index_of = {name: i for i, name in enumerate(params)}
        for kw in call.keywords:
            if kw.arg is None:  # **kwargs: could hit anything
                for j in range(len(params)):
                    mapping.setdefault(j, []).append(kw.value)
            elif kw.arg in index_of:
                mapping.setdefault(index_of[kw.arg], []).append(kw.value)
        return mapping

    # -- sinks ---------------------------------------------------------

    def _check_sink(self, call, desc, args, keywords, state) -> None:
        values = list(args) + [kw.value for kw in keywords]
        self._sink_values(call, desc, values, state)

    def _sink_values(self, call, desc, values, state) -> None:
        # Summaries store only the undecorated sink description; the
        # "inside helper()" decoration is added per call site at report
        # time.  Storing decorated strings would grow them each round of
        # the interprocedural fixpoint on recursive call cycles.
        base = desc.split(" inside ", 1)[0]
        for value in values:
            for taint in self.taint_of(value, state):
                if taint.kind.startswith("param:"):
                    index = int(taint.kind.split(":", 1)[1])
                    self._sink_params.add((index, base))
                elif taint.kind in REAL_KINDS and self._report is not None:
                    key = (call.lineno, call.col_offset, taint.kind)
                    if key in self._reported:
                        continue
                    self._reported.add(key)
                    origin = (
                        f"{taint.source} (line {taint.line})"
                        if taint.line
                        else taint.source
                    )
                    self._report(
                        call.lineno,
                        call.col_offset,
                        f"value tainted by {origin} flows into {desc} — "
                        f"{taint.kind} nondeterminism reaches the kernel",
                    )

    # -- post-fixpoint scan -------------------------------------------

    def _scan(self, states: dict[int, dict], report) -> None:
        """Visit every reachable node once and check calls against sinks."""
        self._report = report
        cfg = self.info.ensure_cfg()
        for index, state in states.items():
            node = cfg.nodes[index]
            for expr in _node_exprs(node):
                for sub in _walk_expr(expr):
                    if isinstance(sub, ast.Call):
                        # Re-evaluating performs the sink checks (and
                        # interprocedural sink-param checks) in context.
                        self._call_taint(sub, state)
        self._report = None

    def _return_taints(self, states) -> tuple[set[Taint], set[int]]:
        cfg = self.info.ensure_cfg()
        returns: set[Taint] = set()
        param_returns: set[int] = set()
        for index, state in states.items():
            node = cfg.nodes[index]
            if isinstance(node.stmt, ast.Return) and node.stmt.value is not None:
                for taint in self.taint_of(node.stmt.value, state):
                    if taint.kind.startswith("param:"):
                        param_returns.add(int(taint.kind.split(":", 1)[1]))
                    elif taint.kind in REAL_KINDS or taint.kind == "set-value":
                        returns.add(taint)
        return returns, param_returns


def _join(a: dict, b: dict) -> dict:
    if a == b:
        return a
    out = dict(a)
    for key, taint in b.items():
        if key in out:
            out[key] = _collapse(out[key] | taint)
        else:
            out[key] = taint
    return out


def _node_exprs(node: Node) -> list[ast.expr]:
    """The expressions a CFG node itself evaluates (not nested blocks)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind in ("stmt", "yield"):
        return [
            child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)
        ] or _stmt_exprs(stmt)
    if node.kind == "cond":
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return [stmt.subject]
        return []
    if node.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if node.kind == "except":
        return []
    return []


def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
    out = []
    for child in ast.walk(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
            break
    return out
