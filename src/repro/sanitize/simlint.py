"""simlint: determinism and lifecycle static analysis for the DES stack.

Every figure in this reproduction rests on the claim that the
discrete-event kernel is deterministic and leak-free.  One stray
``time.time()``, an unseeded global ``random`` call, or iteration over a
``set`` feeding a scheduling decision silently corrupts overhead
measurements the same way noisy co-located monitors corrupt real Summit
runs — the run still *completes*, the numbers are just wrong.  simlint
walks the source with the stdlib :mod:`ast` (no third-party
dependencies) and flags the hazard classes we have actually been bitten
by, so the property is enforced instead of assumed.

Rules
-----

========  =================  ======================================================
id        name               flags
========  =================  ======================================================
SL001     wall-clock         ``time.time``/``monotonic``/``perf_counter``,
                             ``datetime.now``/``utcnow``/``today`` — real time
                             read inside simulated time
SL002     real-sleep         ``time.sleep`` — blocks the host, not the sim clock
SL003     global-random      module-level ``random.*`` / ``numpy.random.*`` draws
                             (unseeded process-global streams; use a seeded
                             ``numpy`` ``Generator`` threaded from the Session)
SL004     nondet-entropy     ``uuid.uuid1``/``uuid4``, ``os.urandom``,
                             ``secrets.*`` — OS entropy varies across runs
SL005     set-iteration      iterating a set expression; str-hash randomization
                             makes the order differ between interpreter runs
SL006     id-ordering        any ``id()`` call — CPython addresses vary run to
                             run, so id-keyed or id-ordered state is nondeterministic
SL007     hash-ordering      ``hash()`` outside ``__hash__``/``__eq__`` — str/bytes
                             hashes are salted per interpreter run
SL008     swallow-interrupt  ``except Exception``/bare ``except`` around a
                             ``yield`` with no ``except Interrupt`` and no
                             re-raise — swallows kernel cancellation
SL009     orphan-event       a local ``env.event()`` that is yielded but never
                             triggered and never escapes — the process parks forever
SL010     dropped-event      ``env.timeout(...)``/``env.event()`` whose result is
                             discarded — schedules (or allocates) an event nobody
                             can ever consume
SL011     raw-request        ``resource.request()`` outside ``with`` in a function
                             that never releases/cancels — leaks a resource slot
========  =================  ======================================================

Suppressions
------------

A finding is suppressed by an inline comment **on the flagged line**::

    t0 = time.time()  # simlint: disable=wall-clock(host-side bench timing, not sim state)

The rule may be named by id (``SL001``) or name (``wall-clock``), several
suppressions may be comma-separated, and the parenthesized justification
is *mandatory* — a suppression without a reason, or naming an unknown
rule, is itself a finding (SL000 ``bad-suppression``).  Justifications
must not contain ``)``.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import sys
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Rule",
    "Finding",
    "Report",
    "RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "main",
]


@dataclass(frozen=True, slots=True)
class Rule:
    """One hazard class simlint detects."""

    id: str
    name: str
    summary: str
    rationale: str


_RULE_LIST = [
    Rule(
        "SL000",
        "bad-suppression",
        "malformed simlint suppression",
        "a suppression without a written justification (or naming an "
        "unknown rule) silently disables enforcement — the reason string "
        "is the audit trail",
    ),
    Rule(
        "SL001",
        "wall-clock",
        "wall-clock read inside simulated code",
        "time.time()/datetime.now() couple results to host load; all "
        "timestamps must come from Environment.now",
    ),
    Rule(
        "SL002",
        "real-sleep",
        "time.sleep() in simulated code",
        "sleeping blocks the host thread without advancing the sim "
        "clock; use env.timeout(delay)",
    ),
    Rule(
        "SL003",
        "global-random",
        "unseeded module-level random draw",
        "random.* and numpy.random.* module functions share hidden "
        "process-global state; draw from a Generator seeded via the "
        "Session so runs replay bit-for-bit",
    ),
    Rule(
        "SL004",
        "nondet-entropy",
        "OS entropy source (uuid4/urandom/secrets)",
        "identifiers minted from OS entropy differ across runs and leak "
        "into traces and orderings; mint uids from Session counters",
    ),
    Rule(
        "SL005",
        "set-iteration",
        "iteration over a set expression",
        "str-hash randomization reorders set iteration between "
        "interpreter runs; sort before iterating when order can reach a "
        "scheduling decision",
    ),
    Rule(
        "SL006",
        "id-ordering",
        "id() used as key or ordering",
        "CPython object addresses vary run to run; id()-keyed state "
        "makes traces irreproducible — key by a minted uid instead",
    ),
    Rule(
        "SL007",
        "hash-ordering",
        "hash() outside __hash__/__eq__",
        "str/bytes hashes are salted per interpreter run (PYTHONHASHSEED)",
    ),
    Rule(
        "SL008",
        "swallow-interrupt",
        "broad except may swallow kernel Interrupt",
        "Interrupt subclasses Exception; a broad handler around a yield "
        "absorbs cancellation, detaching fault-injection and shutdown "
        "from the process it targets",
    ),
    Rule(
        "SL009",
        "orphan-event",
        "event yielded but never triggerable",
        "a local env.event() that never escapes and is never "
        "succeeded/failed parks its process forever (deadlock)",
    ),
    Rule(
        "SL010",
        "dropped-event",
        "event created and immediately discarded",
        "a discarded env.timeout() still occupies the heap until it "
        "fires with no waiter; a discarded env.event() can never fire — "
        "both are lifecycle leaks",
    ),
    Rule(
        "SL011",
        "raw-request",
        "resource request outside with, never released",
        "a granted request that no path releases pins a resource slot "
        "until process exit; use `with resource.request() as req:`",
    ),
    # -- flow-sensitive family (emitted only under --flow; implemented in
    # repro.sanitize.flow.rules on the CFG/dataflow engine) ---------------
    Rule(
        "SL100",
        "taint-to-sink",
        "nondeterministic value reaches a scheduling sink",
        "a wall-clock/RNG/entropy/ordering value that flows (possibly "
        "through helpers) into a delay, payload, or priority makes the "
        "schedule differ run to run; occurrences that never reach the "
        "kernel are harmless and are not flagged",
    ),
    Rule(
        "SL101",
        "leaked-request",
        "request not released on some path",
        "a .request() held at function exit on any normal-completion "
        "path pins the resource slot; unlike SL011 this follows the CFG, "
        "so functions that release on every real path are clean",
    ),
    Rule(
        "SL102",
        "stale-shared-write",
        "shared value written back stale across a yield",
        "a value read before a yield and written back after it "
        "overwrites any update a concurrent process made during the "
        "suspension — the static twin of the runtime lost-update "
        "sanitizer",
    ),
    Rule(
        "SL103",
        "swallowed-interrupt",
        "broad except path swallows Interrupt",
        "only flagged when some handler path neither re-raises nor "
        "returns; `if isinstance(e, Interrupt): raise` followed by "
        "recovery code is proven clean, where SL008 had to flag it",
    ),
]

#: All rules, keyed by id.  Rule *names* resolve through :func:`_rule_for`.
RULES: dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}
_RULES_BY_NAME: dict[str, Rule] = {rule.name: rule for rule in _RULE_LIST}


def _rule_for(token: str) -> Rule | None:
    return RULES.get(token) or _RULES_BY_NAME.get(token)


@dataclass(slots=True)
class Finding:
    """One flagged source location."""

    rule: Rule
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str | None = None
    baselined: bool = False

    def format(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule.id}[{self.rule.name}] {self.message}"
        )
        if self.suppressed:
            text += f"  (suppressed: {self.justification})"
        elif self.baselined:
            text += "  (baselined)"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.id,
            "name": self.rule.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
            "baselined": self.baselined,
        }


# --------------------------------------------------------------------------
# suppressions


_DISABLE_RE = re.compile(r"#\s*simlint:\s*disable=(?P<items>.*)$")
_ITEM_RE = re.compile(r"([A-Za-z0-9_-]+)\s*\(([^)]*)\)")


def _iter_comments(source: str) -> Iterator[tuple[int, int, str]]:
    """(line, col, text) of every real comment token (not string contents)."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparseable files are reported via ast.parse


def _parse_suppressions(
    source: str, path: str
) -> tuple[dict[int, dict[str, str]], list[Finding]]:
    """Map line -> {rule id -> justification}; malformed ones become findings."""
    by_line: dict[int, dict[str, str]] = {}
    findings: list[Finding] = []
    for lineno, col, text in _iter_comments(source):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        items = match.group("items").strip()
        consumed = 0
        entry: dict[str, str] = {}
        for item in _ITEM_RE.finditer(items):
            consumed += 1
            token, reason = item.group(1), item.group(2).strip()
            rule = _rule_for(token)
            if rule is None:
                findings.append(
                    Finding(
                        RULES["SL000"],
                        path,
                        lineno,
                        col,
                        f"suppression names unknown rule {token!r}",
                    )
                )
                continue
            if not reason:
                findings.append(
                    Finding(
                        RULES["SL000"],
                        path,
                        lineno,
                        col,
                        f"suppression of {rule.name} carries no justification",
                    )
                )
                continue
            entry[rule.id] = reason
        if consumed == 0:
            findings.append(
                Finding(
                    RULES["SL000"],
                    path,
                    lineno,
                    col,
                    "suppression must be `disable=RULE(reason)`",
                )
            )
        if entry:
            by_line[lineno] = entry
    return by_line, findings


# --------------------------------------------------------------------------
# name resolution


_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_ENTROPY = {"uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom"}

#: numpy.random members that *construct* seeded generators (allowed).
_NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Builtins whose result does not depend on argument iteration order —
#: feeding a set (or a comprehension over one) into these is clean.
_ORDER_INSENSITIVE = {
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
}


class _Imports(ast.NodeVisitor):
    """Resolve local names to dotted module paths."""

    def __init__(self) -> None:
        #: local alias -> module path (``import numpy as np`` -> np: numpy)
        self.aliases: dict[str, str] = {}
        #: local name -> dotted member (``from time import time`` ->
        #: time: time.time; ``from datetime import datetime`` ->
        #: datetime: datetime.datetime)
        self.members: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports are in-repo: never stdlib hazards
        for alias in node.names:
            self.members[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of an attribute/name chain, or None."""
        if isinstance(node, ast.Name):
            return self.members.get(node.id) or self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _contains_yield(node: ast.AST) -> bool:
    return any(
        isinstance(child, (ast.Yield, ast.YieldFrom))
        for child in _walk_same_function(node)
    )


def _body_contains_yield(stmts: Iterable[ast.stmt]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, (ast.Yield, ast.YieldFrom)):
            return True
        if _contains_yield(stmt):
            return True
    return False


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


def _catches(handler_type: ast.expr | None, names: set[str]) -> bool:
    """Does an except clause's type expression mention one of ``names``?"""
    if handler_type is None:
        return "BaseException" in names  # bare except catches everything
    types = (
        handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    )
    for type_expr in types:
        if isinstance(type_expr, ast.Name) and type_expr.id in names:
            return True
        if isinstance(type_expr, ast.Attribute) and type_expr.attr in names:
            return True
    return False


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return _catches(handler.type, {"Exception", "BaseException"})


# --------------------------------------------------------------------------
# the linter


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, imports: _Imports) -> None:
        self.path = path
        self.imports = imports
        self.findings: list[Finding] = []
        self._func_stack: list[str] = []
        # Comprehensions passed straight into an order-insensitive
        # builtin (``sum(x for x in some_set)``): exempt from SL005.
        # AST nodes hash by identity.
        self._order_free: set[ast.AST] = set()

    # -- helpers -------------------------------------------------------

    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                RULES[rule_id],
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
            )
        )

    def _is_builtin(self, name: str) -> bool:
        """True if ``name`` still refers to the builtin (not an import)."""
        return (
            name not in self.imports.members and name not in self.imports.aliases
        )

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.imports.resolve(node.func)
        if dotted is not None:
            if dotted in _WALL_CLOCK:
                self._flag(
                    "SL001",
                    node,
                    f"wall-clock call {dotted}() — simulated code must read "
                    "Environment.now",
                )
            elif dotted == "time.sleep":
                self._flag(
                    "SL002",
                    node,
                    "time.sleep() blocks the host; yield env.timeout(delay)",
                )
            elif dotted == "random.Random" and (node.args or node.keywords):
                pass  # an explicitly seeded instance is deterministic
            elif dotted.startswith("random."):
                self._flag(
                    "SL003",
                    node,
                    f"{dotted}() draws from the process-global stream; use a "
                    "seeded numpy Generator threaded from the Session",
                )
            elif (
                dotted.startswith("numpy.random.")
                and dotted.split(".")[-1] not in _NUMPY_RANDOM_OK
            ):
                self._flag(
                    "SL003",
                    node,
                    f"{dotted}() uses numpy's hidden global RandomState; use "
                    "a seeded Generator",
                )
            elif dotted in _ENTROPY or dotted.startswith("secrets."):
                self._flag(
                    "SL004",
                    node,
                    f"{dotted}() reads OS entropy — nondeterministic across "
                    "runs; mint identifiers from Session counters",
                )
        elif isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _ORDER_INSENSITIVE and self._is_builtin(name):
                for arg in node.args:
                    if isinstance(
                        arg,
                        (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                    ):
                        self._order_free.add(arg)
            if name == "id" and self._is_builtin(name):
                self._flag(
                    "SL006",
                    node,
                    "id() exposes the allocator; key or order by a minted "
                    "uid instead",
                )
            elif (
                name == "hash"
                and self._is_builtin(name)
                and not any(f in ("__hash__", "__eq__") for f in self._func_stack)
            ):
                self._flag(
                    "SL007",
                    node,
                    "hash() is salted per interpreter run (PYTHONHASHSEED)",
                )
        self.generic_visit(node)

    # -- set iteration ---------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag(
                "SL005",
                node.iter,
                "iterating a set — order varies with str-hash randomization; "
                "sort first",
            )
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        if node in self._order_free:
            self.generic_visit(node)
            return
        for gen in node.generators:  # type: ignore[attr-defined]
            if _is_set_expr(gen.iter):
                self._flag(
                    "SL005",
                    gen.iter,
                    "comprehension over a set — order varies with str-hash "
                    "randomization; sort first",
                )
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- functions -------------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node.name)
        if _body_contains_yield(node.body):
            self._check_generator_lifecycles(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- SL008: interrupt swallowing ------------------------------------

    def visit_Try(self, node: ast.Try) -> None:
        if _body_contains_yield(node.body):
            interrupt_handled = any(
                handler.type is not None
                and _catches(handler.type, {"Interrupt"})
                for handler in node.handlers
            )
            if not interrupt_handled:
                for handler in node.handlers:
                    if _is_broad(handler) and not any(
                        isinstance(child, ast.Raise)
                        for child in _walk_same_function(handler)
                    ):
                        self._flag(
                            "SL008",
                            handler,
                            "broad except around a yield swallows the kernel's "
                            "Interrupt — handle Interrupt explicitly or "
                            "re-raise",
                        )
        self.generic_visit(node)

    # -- SL009/SL010/SL011: lifecycle rules (per generator function) ------

    def _check_generator_lifecycles(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        # Map every Name usage of locals assigned from `<x>.event()`.
        event_assigns: dict[str, ast.Assign] = {}
        for child in _walk_same_function(func):
            if (
                isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
                and isinstance(child.value, ast.Call)
                and isinstance(child.value.func, ast.Attribute)
                and child.value.func.attr == "event"
                and not child.value.args
                and not child.value.keywords
            ):
                event_assigns[child.targets[0].id] = child

        if event_assigns:
            yields: dict[str, ast.AST] = {}
            escaped: set[str] = set()
            for child in _walk_same_function(func):
                if isinstance(child, (ast.Yield, ast.YieldFrom)):
                    value = child.value
                    if isinstance(value, ast.Name) and value.id in event_assigns:
                        yields.setdefault(value.id, child)
                        continue
                if isinstance(child, ast.Name) and child.id in event_assigns:
                    escaped.add(child.id)
            # `escaped` saw *every* Name occurrence, including the
            # assignment target and the yielded reference; an event is an
            # orphan when those two are its only occurrences (2 uses).
            for name, assign in event_assigns.items():
                if name not in yields:
                    continue
                uses = sum(
                    1
                    for child in _walk_same_function(func)
                    if isinstance(child, ast.Name) and child.id == name
                )
                if uses <= 2:
                    self._flag(
                        "SL009",
                        yields[name],
                        f"event {name!r} is yielded but never triggered and "
                        "never escapes — this process can never resume",
                    )

        # SL010: expression statements discarding a fresh event.
        for child in _walk_same_function(func):
            if (
                isinstance(child, ast.Expr)
                and isinstance(child.value, ast.Call)
                and isinstance(child.value.func, ast.Attribute)
                and child.value.func.attr in ("timeout", "event")
            ):
                self._flag(
                    "SL010",
                    child,
                    f"result of .{child.value.func.attr}() is discarded — the "
                    "event is scheduled (or created) with no possible consumer",
                )

        # SL011: .request() outside `with`, in a function that never
        # releases or cancels anything.
        with_contexts: set[ast.Call] = set()  # AST nodes hash by identity
        with_names: set[str] = set()
        for child in _walk_same_function(func):
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        with_contexts.add(expr)
                    elif isinstance(expr, ast.Name):
                        # `req = r.request()` then `with req as g:` —
                        # the with still releases on exit.
                        with_names.add(expr.id)
        for child in _walk_same_function(func):
            if (
                isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
                and child.targets[0].id in with_names
                and isinstance(child.value, ast.Call)
            ):
                with_contexts.add(child.value)
        releases = any(
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in ("release", "cancel")
            for child in _walk_same_function(func)
        )
        if not releases:
            for child in _walk_same_function(func):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "request"
                    and child not in with_contexts
                ):
                    self._flag(
                        "SL011",
                        child,
                        ".request() outside `with` in a function that never "
                        "calls release()/cancel() — the slot leaks until "
                        "process exit",
                    )


# --------------------------------------------------------------------------
# public API


def lint_source(
    source: str, path: str = "<string>", *, flow: bool = False, program=None
) -> list[Finding]:
    """Lint one source string; returns all findings, suppressed ones marked.

    With ``flow=True`` the flow-sensitive family (SL100+) runs and the
    syntactic rules it supersedes are dropped; ``program`` may carry a
    pre-built whole-tree :class:`repro.sanitize.flow.summaries.Program`
    so taint follows calls across files (built from this file alone
    when omitted).
    """
    suppressions, findings = _parse_suppressions(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(
            Finding(
                RULES["SL000"],
                path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                f"file does not parse: {exc.msg}",
            )
        )
        return findings
    imports = _Imports()
    imports.visit(tree)
    linter = _Linter(path, imports)
    linter.visit(tree)
    findings.extend(linter.findings)
    if flow:
        # Imported lazily: flow builds on this module.
        from .flow.rules import REPLACED_BY_FLOW, flow_findings
        from .flow.summaries import build_program, compute_summaries

        findings = [f for f in findings if f.rule.id not in REPLACED_BY_FLOW]
        if program is None:
            program = build_program([(path, source)])
            compute_summaries(program)
        flow_findings(
            program,
            path,
            lambda rule_id, line, col, message: findings.append(
                Finding(RULES[rule_id], path, line, col, message)
            ),
        )
    for finding in findings:
        if finding.rule.id == "SL000":
            continue  # suppression hygiene findings cannot be suppressed
        reason = suppressions.get(finding.line, {}).get(finding.rule.id)
        if reason is not None:
            finding.suppressed = True
            finding.justification = reason
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule.id))
    return findings


def lint_file(path: str, *, flow: bool = False, program=None) -> list[Finding]:
    with open(path, encoding="utf-8") as handle:
        return lint_source(handle.read(), path, flow=flow, program=program)


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


@dataclass(slots=True)
class Report:
    """Aggregate result of linting a file tree."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def new(self) -> list[Finding]:
        """Findings that gate: neither suppressed nor in the baseline."""
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    def format_text(self, show_suppressed: bool = False) -> str:
        lines = [f.format() for f in self.unsuppressed if not f.baselined]
        if show_suppressed:
            lines.extend(
                f.format() for f in self.unsuppressed if f.baselined
            )
            lines.extend(f.format() for f in self.suppressed)
        baselined = len(self.unsuppressed) - len(self.new)
        summary = (
            f"simlint: {self.files_scanned} files, "
            f"{len(self.new)} findings, "
            f"{len(self.suppressed)} suppressed"
        )
        if baselined:
            summary += f", {baselined} baselined"
        lines.append(summary)
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "files_scanned": self.files_scanned,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def lint_paths(paths: Iterable[str], *, flow: bool = False) -> Report:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    In flow mode the whole file set is parsed into one program first so
    interprocedural summaries span files, then each file is linted
    against it.
    """
    report = Report()
    files = list(_iter_python_files(paths))
    program = None
    if flow:
        from .flow.summaries import build_program, compute_summaries

        sources = []
        for path in files:
            try:
                with open(path, encoding="utf-8") as handle:
                    sources.append((path, handle.read()))
            except OSError:
                continue
        program = build_program(sources)
        compute_summaries(program)
    for path in files:
        report.files_scanned += 1
        report.findings.extend(lint_file(path, flow=flow, program=program))
    return report


# --------------------------------------------------------------------------
# baselines


def _fingerprint(finding: Finding) -> str:
    # Line numbers are deliberately excluded so unrelated edits that
    # shift code do not invalidate the baseline.
    return f"{finding.path}::{finding.rule.id}::{finding.message}"


def write_baseline(report: Report, path: str) -> int:
    """Record current unsuppressed findings; returns how many were written."""
    counts: dict[str, int] = {}
    for finding in report.unsuppressed:
        key = _fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    payload = {"version": 1, "findings": counts}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return sum(counts.values())


def apply_baseline(report: Report, path: str) -> None:
    """Mark findings recorded in the baseline file; new ones still gate."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    budget = dict(payload.get("findings", {}))
    for finding in report.findings:
        if finding.suppressed:
            continue
        key = _fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            finding.baselined = True


def main(
    paths: Iterable[str],
    fmt: str = "text",
    show_suppressed: bool = False,
    stream=None,
    *,
    flow: bool = False,
    baseline: str | None = None,
    update_baseline: bool = False,
) -> int:
    """Entry point behind ``python -m repro lint``; returns the exit code."""
    if stream is None:
        stream = sys.stdout
    report = lint_paths(paths, flow=flow)
    if baseline is not None and update_baseline:
        written = write_baseline(report, baseline)
        print(
            f"simlint: wrote {written} findings to baseline {baseline}",
            file=stream,
        )
        return 0
    if baseline is not None:
        try:
            apply_baseline(report, baseline)
        except FileNotFoundError:
            print(f"simlint: baseline {baseline} not found", file=stream)
            return 2
    if fmt == "json":
        print(report.format_json(), file=stream)
    else:
        print(report.format_text(show_suppressed=show_suppressed), file=stream)
    return 1 if report.new else 0
