"""Discrete-event simulation kernel (from-scratch, SimPy-flavoured).

Public surface::

    from repro.sim import Environment, Interrupt, AllOf, AnyOf
    from repro.sim import Resource, PriorityResource
    from repro.sim import Store, FilterStore, PriorityStore, PriorityItem
    from repro.sim import Tracer

Every simulated subsystem in this repository is a set of generator
processes scheduled on one :class:`Environment`.
"""

from .calqueue import (
    EVENT_QUEUE_BACKENDS,
    CalendarEventQueue,
    HeapEventQueue,
    default_event_queue,
    make_event_queue,
    set_default_event_queue,
)
from .core import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
    default_sanitize,
    set_default_sanitize,
)
from .sanitizer import (
    KernelSanitizer,
    SanitizerError,
    SanitizerFinding,
    SharedDict,
    drain_spontaneous_findings,
)
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    TimeoutExpired,
    with_timeout,
)
from .resources import PriorityResource, Release, Request, Resource
from .stores import FilterStore, PriorityItem, PriorityStore, Store
from .trace import TraceRecord, Tracer

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopSimulation",
    "Timeout",
    "default_sanitize",
    "set_default_sanitize",
    "EVENT_QUEUE_BACKENDS",
    "CalendarEventQueue",
    "HeapEventQueue",
    "default_event_queue",
    "make_event_queue",
    "set_default_event_queue",
    "KernelSanitizer",
    "SanitizerError",
    "SanitizerFinding",
    "SharedDict",
    "drain_spontaneous_findings",
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "TimeoutExpired",
    "with_timeout",
    "PriorityResource",
    "Release",
    "Request",
    "Resource",
    "FilterStore",
    "PriorityItem",
    "PriorityStore",
    "Store",
    "TraceRecord",
    "Tracer",
]
