"""Event-queue backends: binary heap and bucketed calendar queue.

The :class:`~repro.sim.core.Environment` keeps every scheduled event in
one totally ordered pending set keyed by ``(time, priority, eid)``.  Two
interchangeable backends implement that set:

* :class:`HeapEventQueue` — the historical single binary heap.  Every
  push and pop costs O(log n) over the *whole* pending population, which
  at Summit scale (10^5-10^6 pending task completions, monitor timers,
  and retry deadlines) makes the event kernel the dominant cost.
* :class:`CalendarEventQueue` — a bucketed calendar queue.  Pending
  entries are partitioned into integer time buckets of dynamic width;
  only the *current* bucket is kept heap-ordered, so the hot zero-delay
  traffic (resource grants, store dispatch, RPC hops — the large
  majority of events) costs O(log b) where b is the current-bucket
  population, independent of how many far-future timers are pending.
  Far-future entries beyond a fixed horizon sit in a heap-backed
  overflow band and are migrated into buckets lazily as the clock
  approaches them.

Both backends drain entries in exactly the same total order — the full
``(time, priority, eid)`` tuple order — which the differential test
battery (``tests/properties/test_calqueue_equivalence.py``,
``tests/integration/test_event_queue_differential.py``) verifies down to
byte-identical run digests.  Because ``eid`` is unique, the order is
total and there is no tie left for the backend to break.

Ordering argument (sketch; the full version is DESIGN.md §3e): the
bucket key ``trunc(time * inv_width)`` is monotone non-decreasing in
``time``, so for any two entries ``key(a) < key(b)`` implies
``a.time < b.time``.  The queue maintains the invariant that every
entry outside the current bucket has a key strictly greater than
``cur_key``, hence a time strictly greater than every entry inside it;
the current bucket itself is a heap over full entry tuples.  Advancing
selects the minimal key over buckets and overflow, first merging any
overflow entries whose key falls at or before that minimum into the
bucket map (an equal-key overflow entry must join the bucket it shares
a key with *before* the bucket drains), and then drains *all* entries
of that key through one heap, so pops are globally sorted.

Selection: ``Environment(event_queue=...)`` >
:func:`set_default_event_queue` > ``REPRO_EVENT_QUEUE`` > ``calendar``.
The ``heap`` escape hatch exists for the differential tests and for
bisecting any future ordering regression back to one backend.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from math import nextafter
from typing import Any

__all__ = [
    "HeapEventQueue",
    "CalendarEventQueue",
    "make_event_queue",
    "default_event_queue",
    "set_default_event_queue",
    "EVENT_QUEUE_BACKENDS",
]

#: Recognized backend names.
EVENT_QUEUE_BACKENDS = ("heap", "calendar")

#: Process-wide default for ``Environment(event_queue=None)``; ``None``
#: defers to the ``REPRO_EVENT_QUEUE`` environment variable.
_DEFAULT_EVENT_QUEUE: str | None = None

_INF = float("inf")


def set_default_event_queue(backend: str | None) -> str | None:
    """Set the process-wide backend default; returns the previous value.

    The differential tests use this to run the same experiment twice —
    once per backend — inside one process.
    """
    global _DEFAULT_EVENT_QUEUE
    if backend is not None and backend not in EVENT_QUEUE_BACKENDS:
        raise ValueError(
            f"unknown event queue backend {backend!r}; "
            f"expected one of {EVENT_QUEUE_BACKENDS}"
        )
    previous, _DEFAULT_EVENT_QUEUE = _DEFAULT_EVENT_QUEUE, backend
    return previous


def default_event_queue() -> str:
    """Effective default backend (override > env var > ``calendar``)."""
    if _DEFAULT_EVENT_QUEUE is not None:
        return _DEFAULT_EVENT_QUEUE
    backend = os.environ.get("REPRO_EVENT_QUEUE", "").strip().lower()
    if not backend:
        return "calendar"
    if backend not in EVENT_QUEUE_BACKENDS:
        raise ValueError(
            f"REPRO_EVENT_QUEUE={backend!r} is not one of "
            f"{EVENT_QUEUE_BACKENDS}"
        )
    return backend


def make_event_queue(backend: str, origin: float = 0.0):
    """Build the named backend, anchored at simulated time ``origin``."""
    if backend == "heap":
        return HeapEventQueue()
    if backend == "calendar":
        return CalendarEventQueue(origin=origin)
    raise ValueError(
        f"unknown event queue backend {backend!r}; "
        f"expected one of {EVENT_QUEUE_BACKENDS}"
    )


class HeapEventQueue:
    """The historical backend: one binary heap over all pending entries."""

    __slots__ = ("_heap",)

    backend = "heap"

    def __init__(self) -> None:
        self._heap: list[tuple] = []

    def push(self, entry: tuple) -> None:
        heappush(self._heap, entry)

    def pop(self) -> tuple:
        return heappop(self._heap)

    def next_time(self) -> float:
        """Time of the earliest pending entry (``inf`` when empty)."""
        heap = self._heap
        return heap[0][0] if heap else _INF

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def stats(self) -> dict[str, Any]:
        return {"backend": "heap", "pending": len(self._heap)}


# Calendar tuning constants.  The horizon bounds how many bucket-widths
# ahead of the current bucket entries are kept in the keyed bucket map;
# anything further out lives in the overflow heap until the clock gets
# close.  The migrate window amortizes overflow drains: one advance into
# the overflow band pulls a whole window of buckets across at once.
_HORIZON = 4096
_MIGRATE_WINDOW = 1024
#: Bucket keys at or beyond this magnitude are not materialized as ints
#: (guards ``inf`` timestamps and absurd widths); such entries stay in
#: the overflow heap and drain through it in plain tuple order.
_KEY_CAP = float(1 << 62)
#: Resize policy.  The two failure modes of a fixed width have
#: *different* observable signatures, so each direction has its own
#: trigger:
#:
#: * Width too narrow → the clock advances through a stream of
#:   near-empty buckets, paying Python-level advance overhead per
#:   bucket.  Detected at advance time: every ``_RESIZE_INTERVAL``
#:   advances, a mean drained-bucket occupancy below
#:   ``_OCCUPANCY_LOW`` grows the width geometrically.
#: * Width too wide → the current bucket degenerates into one big
#:   heap (the exact regime the calendar exists to avoid).  This is
#:   *invisible* at advance time — a width that swallows the whole
#:   pending horizon may never advance at all — so it is detected on
#:   the pop path instead: every ``_CUR_SAMPLE`` pops, a current
#:   bucket holding at least ``_CUR_HIGH`` entries whose times
#:   actually spread (same-instant bursts are unsplittable by any
#:   width) is split by rebuilding at ``span / size *
#:   _TARGET_OCCUPANCY`` — one rebuild straight to a width that puts
#:   ~``_TARGET_OCCUPANCY`` entries per bucket.
#:
#: An advance-occupancy *shrink* trigger was deliberately rejected:
#: crowded-but-popping-fine buckets (completion waves) shrink-spiral
#: the width, which evicts the short-delay hot traffic from the cheap
#: current-bucket push path into the bucket map and measurably slows
#: real workloads down.
_RESIZE_INTERVAL = 256
_OCCUPANCY_LOW = 1.2
_RESIZE_FACTOR = 4.0
_CUR_SAMPLE = 4096
_CUR_HIGH = 32768
_TARGET_OCCUPANCY = 16.0
_MIN_WIDTH = 1e-6
_MAX_WIDTH = 1e6


class CalendarEventQueue:
    """Bucketed calendar queue over ``(time, priority, eid, event)`` tuples.

    Layout:

    * ``_cur`` — the current bucket, a heap over full entry tuples.
      All pushes with ``time < _cur_bound`` land here (the zero-delay
      hot path: one float compare plus a small-heap push).
    * ``_buckets`` — map of integer bucket key to an *unsorted* list of
      entries; ``_bucket_keys`` is a min-heap over the live keys (with
      lazy deletion through :func:`~repro.sim.heaptools.drain_heap`).
      A bucket is heapified only when the clock advances into it.
    * ``_overflow`` — plain heap of entries at or beyond the horizon
      (``time >= _far_bound``), migrated bucket-window-at-a-time as the
      clock approaches.

    The width adapts in both directions, each off its own signal (see
    the resize-constant comment block): sparse drained buckets grow the
    width geometrically at advance time; a heap-degenerate current
    bucket caught by a pop sample shrinks it straight to a
    span-derived target.  Either direction rebuilds the layout in one
    O(pending) pass, amortized across the sampling interval.
    """

    __slots__ = (
        "_width",
        "_inv_width",
        "_cur",
        "_cur_key",
        "_cur_bound",
        "_far_bound",
        "_buckets",
        "_bucket_keys",
        "_overflow",
        "_len",
        "_advances",
        "_occupancy_accum",
        "_window_advances",
        "_pop_tick",
        "max_bucket_occupancy",
        "resizes",
        "overflow_peak",
        "migrated",
    )

    backend = "calendar"

    def __init__(self, origin: float = 0.0, width: float = 1.0) -> None:
        if not width > 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        self._cur: list[tuple] = []
        key = self._key_of(float(origin))
        self._cur_key = key
        self._cur_bound = self._bound_for(key)
        self._far_bound = (key + _HORIZON) * self._width
        self._buckets: dict[int, list[tuple]] = {}
        self._bucket_keys: list[int] = []
        self._overflow: list[tuple] = []
        self._len = 0
        # Observability counters (surfaced via Environment.queue_stats()).
        self._advances = 0
        self._occupancy_accum = 0
        self._window_advances = 0
        self._pop_tick = _CUR_SAMPLE
        self.max_bucket_occupancy = 0
        self.resizes = 0
        self.overflow_peak = 0
        self.migrated = 0

    # -- key mapping ---------------------------------------------------

    def _key_of(self, when: float) -> int:
        """Integer bucket key for ``when`` (monotone non-decreasing)."""
        scaled = when * self._inv_width
        if scaled >= _KEY_CAP:
            scaled = _KEY_CAP
        elif scaled <= -_KEY_CAP:
            scaled = -_KEY_CAP
        return int(scaled)

    def _bound_for(self, key: int) -> float:
        """Smallest float ``b`` with ``int(b * inv_width) > key``.

        ``(key + 1) * width`` and ``int(when * inv_width)`` round
        differently (``inv_width`` is not exactly ``1 / width``), so the
        naive bound can sit an ulp off the key partition: a push at the
        boundary then passes ``when >= bound`` yet keys back onto the
        *current* bucket, landing in the bucket map behind ``_cur`` and
        draining after entries that sort later.  Walking the candidate
        bound by ulps until it exactly matches the key partition makes
        ``when < bound`` equivalent to ``key_of(when) <= key`` (float
        multiply is monotone), so the fast-path compare and the key
        arithmetic can never disagree.
        """
        inv = self._inv_width
        bound = (key + 1) * self._width
        if int(bound * inv) <= key:
            bound = nextafter(bound, _INF)
            while int(bound * inv) <= key:
                bound = nextafter(bound, _INF)
            return bound
        down = nextafter(bound, -_INF)
        while int(down * inv) > key:
            bound = down
            down = nextafter(down, -_INF)
        return bound

    # -- core API ------------------------------------------------------

    def push(self, entry: tuple) -> None:
        when = entry[0]
        bound = self._cur_bound
        if when < bound:
            heappush(self._cur, entry)
        elif when < self._far_bound:
            key = int(when * self._inv_width)
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heappush(self._bucket_keys, key)
            else:
                bucket.append(entry)
        elif bound == _INF:
            # Far mode (see _advance): the bound is infinite, so only
            # a push at exactly ``inf`` reaches here — it belongs in
            # the current heap with everything else, where heap order
            # (not arrival order) breaks the tie.
            heappush(self._cur, entry)
        else:
            overflow = self._overflow
            heappush(overflow, entry)
            if len(overflow) > self.overflow_peak:
                self.overflow_peak = len(overflow)
        self._len += 1

    def pop(self) -> tuple:
        cur = self._cur
        if not cur:
            if not self._len:
                raise IndexError("pop from an empty event queue")
            self._advance()
            cur = self._cur
        tick = self._pop_tick - 1
        if tick > 0:
            self._pop_tick = tick
        else:
            self._pop_tick = _CUR_SAMPLE
            if len(cur) >= _CUR_HIGH:
                self._shrink_for_cur()
                cur = self._cur
        self._len -= 1
        return heappop(cur)

    def next_time(self) -> float:
        """Time of the earliest pending entry (``inf`` when empty).

        May lazily advance the calendar to the next occupied bucket;
        that reorganization is invisible to the caller.
        """
        cur = self._cur
        if not cur:
            if not self._len:
                return _INF
            self._advance()
            cur = self._cur
        return cur[0][0]

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    # -- advancing -----------------------------------------------------

    def _advance(self) -> None:
        """Make ``_cur`` the bucket holding the globally minimal entry.

        Precondition: ``_cur`` is empty and at least one entry is
        pending in the bucket map or the overflow band.
        """
        buckets = self._buckets
        keys = self._bucket_keys
        overflow = self._overflow
        while True:
            # Defensive lazy deletion: advance keeps ``keys`` and
            # ``buckets`` in lock-step, but a stale key must never
            # select an empty bucket.
            while keys and keys[0] not in buckets:
                heappop(keys)
            key = keys[0] if keys else None
            if overflow:
                scaled = overflow[0][0] * self._inv_width
                # Migrate while the overflow head falls in or *before*
                # the earliest bucket (``int(scaled) <= key``, i.e.
                # ``scaled < key + 1``).  An equal-key overflow entry
                # must merge into that bucket before it drains: a
                # strict compare here would let the bucket drain first
                # even when the overflow entry is earlier in time
                # (far-future timer beyond the horizon, later joined
                # by a same-bucket event once the horizon covers it).
                if key is None or scaled < key + 1:
                    if scaled >= _KEY_CAP:
                        # Unbucketable far zone (inf or near-inf
                        # timestamps).  The buckets are necessarily
                        # empty here — a live bucket key would be
                        # below ``_KEY_CAP`` and would have won the
                        # comparison — so the overflow heap *is* the
                        # whole pending set.  Enter far mode: hand it
                        # to ``_cur`` and route every future push
                        # (infinite bound) straight into it, so a
                        # later same-instant URGENT push still sorts
                        # ahead of an equal-time entry already here.
                        # The pop-path shrink sampler re-anchors the
                        # calendar if a real population accumulates.
                        self._cur = overflow
                        self._overflow = []
                        self._cur_bound = _INF
                        self._far_bound = _INF
                        return
                    self._migrate(int(scaled), key)
                    continue
            if key is None:
                raise IndexError("advance on an empty event queue")
            heappop(keys)
            bucket = buckets.pop(key)
            heapify(bucket)
            self._cur = bucket
            self._cur_key = key
            width = self._width
            self._cur_bound = self._bound_for(key)
            self._far_bound = (key + _HORIZON) * width
            occupancy = len(bucket)
            if occupancy > self.max_bucket_occupancy:
                self.max_bucket_occupancy = occupancy
            self._advances += 1
            self._occupancy_accum += occupancy
            self._window_advances += 1
            if self._window_advances >= _RESIZE_INTERVAL:
                self._maybe_resize()
            return

    def _migrate(self, head_key: int, first_bucket_key: int | None) -> None:
        """Pull a window of overflow entries into the bucket map.

        Moves every overflow entry whose key falls inside
        ``[head_key, head_key + _MIGRATE_WINDOW)``, clamped to
        ``first_bucket_key + 1`` so entries sharing the earliest
        existing bucket's key are merged into it while later buckets
        stay undisturbed.
        """
        bound = head_key + _MIGRATE_WINDOW
        if first_bucket_key is not None and first_bucket_key + 1 < bound:
            bound = first_bucket_key + 1
        overflow = self._overflow
        buckets = self._buckets
        keys = self._bucket_keys
        inv = self._inv_width
        moved = 0
        while overflow and overflow[0][0] * inv < bound:
            entry = heappop(overflow)
            key = int(entry[0] * inv)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
                heappush(keys, key)
            else:
                bucket.append(entry)
            moved += 1
        self.migrated += moved

    # -- dynamic width -------------------------------------------------

    def _maybe_resize(self) -> None:
        """Grow the width when advances mostly hit near-empty buckets."""
        mean = self._occupancy_accum / self._window_advances
        self._occupancy_accum = 0
        self._window_advances = 0
        width = self._width
        if mean < _OCCUPANCY_LOW and width < _MAX_WIDTH:
            self._rebuild(min(_MAX_WIDTH, width * _RESIZE_FACTOR))

    def _shrink_for_cur(self) -> None:
        """Split a heap-degenerate current bucket (pop-path trigger).

        Called when a pop sample catches the current bucket holding at
        least ``_CUR_HIGH`` entries.  If those entries actually spread
        in time, rebuild at the width that would hold roughly
        ``_TARGET_OCCUPANCY`` of them per bucket; a same-instant burst
        (span zero) is unsplittable and left alone.
        """
        cur = self._cur
        size = len(cur)
        first = last = cur[0][0]
        for entry in cur:
            when = entry[0]
            if last < when < _INF:
                # ``inf`` sentinels (never-firing deadlines) would
                # blow the span to infinity; the rebuild re-routes
                # them to overflow regardless of the width chosen.
                last = when
        span = last - first
        if span <= 0.0 or first == _INF:
            return
        ideal = span * _TARGET_OCCUPANCY / size
        if ideal >= self._width * 0.5:
            # Not meaningfully finer than the current width.
            return
        self._rebuild(max(_MIN_WIDTH, ideal))

    def _rebuild(self, new_width: float) -> None:
        """Re-key every pending entry under ``new_width`` (O(pending))."""
        entries = list(self._cur)
        for bucket in self._buckets.values():
            entries.extend(bucket)
        entries.extend(self._overflow)
        self._width = new_width
        self._inv_width = 1.0 / new_width
        self._buckets = {}
        self._bucket_keys = []
        self._overflow = []
        self._cur = []
        self.resizes += 1
        if not entries:
            # Anchor at the old current bucket's position; the next
            # advance will re-derive everything from live entries.
            key = self._key_of(self._cur_bound)
            self._cur_key = key
            self._cur_bound = self._bound_for(key)
            self._far_bound = (key + _HORIZON) * new_width
            return
        earliest = min(entry[0] for entry in entries)
        key = self._key_of(earliest)
        self._cur_key = key
        self._cur_bound = self._bound_for(key)
        self._far_bound = (key + _HORIZON) * new_width
        length = self._len
        for entry in entries:
            self.push(entry)
        # push() re-counted the entries; restore the true length.
        self._len = length
        heapify(self._cur)

    # -- observability -------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "backend": "calendar",
            "pending": self._len,
            "width": self._width,
            "buckets": len(self._buckets),
            "current_bucket": len(self._cur),
            "overflow": len(self._overflow),
            "advances": self._advances,
            "max_bucket_occupancy": self.max_bucket_occupancy,
            "overflow_peak": self.overflow_peak,
            "migrated": self.migrated,
            "resizes": self.resizes,
        }
