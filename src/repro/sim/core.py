"""Discrete-event simulation kernel.

This module provides the event loop at the bottom of the whole
reproduction stack: a generator-coroutine process model in the style of
SimPy, written from scratch.  Every other subsystem (the platform model,
the RADICAL-Pilot runtime, the SOMA service, the monitors) is a set of
processes scheduled on one :class:`Environment`.

Design notes
------------
* Events are scheduled on a pending set totally ordered by ``(time,
  priority, sequence)``.  The sequence number makes the ordering of
  simultaneous events deterministic (FIFO within a priority class),
  which in turn makes every experiment in this repository reproducible
  bit-for-bit for a given seed.  Two interchangeable backends implement
  the set (:mod:`repro.sim.calqueue`): the default bucketed *calendar
  queue*, whose hot zero-delay path costs O(log current-bucket) rather
  than O(log total-pending), and the historical binary *heap* kept as
  an escape hatch (``REPRO_EVENT_QUEUE=heap``) for differential tests.
  Both drain in exactly the same total order, so digests, counters,
  and traces are byte-identical across backends.
* Processes are plain Python generators that ``yield`` events.  When the
  yielded event fires, the process is resumed with the event's value (or
  the exception, if the event failed).
* Interrupts are delivered by throwing :class:`Interrupt` into the
  generator, mirroring the semantics used by preemptive resources.
* Scheduled events can be *dismissed* (:meth:`Event.cancel_scheduled`):
  the heap entry is left in place as a tombstone and skipped when it
  reaches the head, which is O(1) instead of an O(n) removal plus
  re-heapify.  Rate-sharing pools re-arm their completion timers this
  way on every membership change.
* The environment keeps lightweight kernel counters (events scheduled,
  peak heap size, tombstones skipped, longest waiter queue) so the perf
  benchmarks in ``benchmarks/perf/`` can observe regressions.
"""

from __future__ import annotations

import os
from collections.abc import Generator
from typing import TYPE_CHECKING, Any, Callable

from .calqueue import default_event_queue, make_event_queue, set_default_event_queue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.spans import Telemetry
    from .sanitizer import KernelSanitizer, SanitizerFinding, SharedDict

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "PENDING",
    "URGENT",
    "NORMAL",
    "set_default_sanitize",
    "default_sanitize",
    "set_default_event_queue",
    "default_event_queue",
]

#: Process-wide default for ``Environment(sanitize=None)``.  ``None``
#: defers to the ``REPRO_SANITIZE`` environment variable; the test suite
#: flips this to True so every Environment any test builds runs with
#: the kernel sanitizers attached.
_DEFAULT_SANITIZE: bool | None = None


def set_default_sanitize(enabled: bool | None) -> bool | None:
    """Set the process-wide sanitize default; returns the previous value."""
    global _DEFAULT_SANITIZE
    previous, _DEFAULT_SANITIZE = _DEFAULT_SANITIZE, enabled
    return previous


def default_sanitize() -> bool:
    """Effective default: :func:`set_default_sanitize` > ``REPRO_SANITIZE``."""
    if _DEFAULT_SANITIZE is not None:
        return _DEFAULT_SANITIZE
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )

#: Sentinel for an event value that has not been produced yet.
PENDING = object()

#: Scheduling priority for events that must run before normal events at
#: the same timestamp (used by resource bookkeeping).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run`."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  The
        interrupted process can inspect it via ``exc.cause``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event goes through three phases: *untriggered* (just created),
    *triggered* (scheduled on the event queue with a value or an
    exception), and *processed* (its callbacks have run).  Processes wait
    on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.callbacks is None
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at t={self.env.now}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or failure) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on this
        event.  If nobody waits, it propagates out of ``run()`` unless
        :meth:`defuse` was called.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    def cancel_scheduled(self) -> None:
        """Dismiss a scheduled-but-unprocessed event (lazy tombstone).

        The heap entry stays where it is; :meth:`Environment.step` skips
        it without running callbacks once it reaches the head.  Only
        valid for events no process waits on (the registered callbacks
        are dropped) — resources and stores use their own ``cancel``
        protocols for waited-on events.
        """
        self.callbacks = None


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A process is both an executor of a generator and an event.

    As an event it fires when the generator terminates; its value is the
    generator's return value (via ``StopIteration.value``) or the
    exception that killed it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None if running).
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        if env._sanitizer is not None:
            env._sanitizer.on_process_start(self)
        if env._telemetry is not None:
            # Ambient span-context inheritance: the creator is still the
            # active process here, so the new process adopts its
            # innermost context (host-only bookkeeping, no events).
            env._telemetry.on_process_spawn(self)
        Initialize(env, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.env.now}>"

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed simply beats the pending event.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} already terminated")
        if self._target is None and self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks = [self._resume]
        self.env._schedule(event, URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of ``event``."""
        env = self.env
        env._active_process = self
        # Remove us from the old target's callbacks if we were diverted
        # (e.g. an interrupt arrived while waiting on a timeout).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._defused = False
                env._schedule(self, NORMAL)
                break

            if not isinstance(next_event, Event):
                self._generator.throw(
                    SimulationError(
                        f"process {self.name!r} yielded a non-event: {next_event!r}"
                    )
                )
                continue

            if next_event.callbacks is not None and not (
                next_event.triggered and next_event.processed
            ):
                # Not yet processed: park until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Already processed (e.g. yielding a finished process):
            # resume immediately with its stored value.
            event = next_event
            if not event._ok and not event._defused:
                event._defused = True

        env._active_process = None
        if self._value is not PENDING:
            # The generator terminated in this resume.
            if env._sanitizer is not None:
                env._sanitizer.on_process_exit(self)
            if env._telemetry is not None:
                env._telemetry.on_process_exit(self)


class Environment:
    """The simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock.
    sanitize:
        Attach the runtime :class:`~repro.sim.sanitizer.KernelSanitizer`
        (event-leak, deadlock, resource-leak, and shared-dict-race
        detection).  ``None`` (the default) defers to
        :func:`set_default_sanitize` and the ``REPRO_SANITIZE``
        environment variable.
    event_queue:
        Scheduling backend: ``"calendar"`` (bucketed calendar queue,
        the default) or ``"heap"`` (single binary heap).  ``None``
        defers to :func:`~repro.sim.calqueue.set_default_event_queue`
        and the ``REPRO_EVENT_QUEUE`` environment variable.  Both
        backends drain events in the identical total order.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        sanitize: bool | None = None,
        event_queue: str | None = None,
    ) -> None:
        self._now = float(initial_time)
        if event_queue is None:
            event_queue = default_event_queue()
        self._queue = make_event_queue(event_queue, origin=self._now)
        self._eid = 0
        self._active_process: Process | None = None
        if sanitize is None:
            sanitize = default_sanitize()
        self._sanitizer: "KernelSanitizer | None" = None
        if sanitize:
            from .sanitizer import KernelSanitizer

            self._sanitizer = KernelSanitizer(self)
        #: Attached span-tracing hub (:class:`repro.telemetry.Telemetry`
        #: installs itself here when enabled); None keeps the hot path
        #: at a single pointer check.
        self._telemetry: "Telemetry | None" = None
        #: Kernel counters — cheap integers updated on the hot path so
        #: perf benchmarks can observe scheduling behaviour.
        self.events_scheduled = 0
        self.events_executed = 0
        self.peak_heap_size = 0
        self.tombstones_skipped = 0
        #: Longest put/get/request waiter queue seen by any store or
        #: resource attached to this environment.
        self.max_waiter_queue = 0

    # -- introspection ------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.next_time()

    @property
    def queue_size(self) -> int:
        return len(self._queue)

    @property
    def event_queue_backend(self) -> str:
        """Name of the active scheduling backend (``heap``/``calendar``)."""
        return self._queue.backend

    def queue_stats(self) -> dict[str, Any]:
        """Backend-specific queue statistics (bucket occupancy, etc.).

        Unlike :meth:`kernel_counters` — which is byte-identical across
        backends — this snapshot describes the backend's internal
        layout and is only comparable between runs on the same backend.
        """
        return self._queue.stats()

    def kernel_counters(self) -> dict[str, int]:
        """Snapshot of the kernel's scheduling counters."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_executed": self.events_executed,
            "peak_heap_size": self.peak_heap_size,
            "tombstones_skipped": self.tombstones_skipped,
            "max_waiter_queue": self.max_waiter_queue,
        }

    def _note_waiters(self, length: int) -> None:
        """Record a waiter-queue length (stores/resources call this)."""
        if length > self.max_waiter_queue:
            self.max_waiter_queue = length

    # -- sanitizers ----------------------------------------------------

    @property
    def sanitizer(self) -> "KernelSanitizer | None":
        """The attached runtime sanitizer, if ``sanitize`` was enabled."""
        return self._sanitizer

    @property
    def telemetry(self) -> "Telemetry | None":
        """The attached span-tracing hub, if one enabled itself."""
        return self._telemetry

    def shared_dict(self, name: str) -> "SharedDict | dict":
        """A mapping opted in to write-between-yields race detection.

        Returns an instrumented :class:`~repro.sim.sanitizer.SharedDict`
        when the sanitizer is attached, otherwise a plain dict — callers
        use it exactly like a dict either way.
        """
        if self._sanitizer is None:
            return {}
        from .sanitizer import SharedDict

        return SharedDict(self, name)

    def sanitize_check(self, strict: bool = True) -> "list[SanitizerFinding]":
        """Teardown check: report every sanitizer finding for this run.

        Combines the spontaneous findings (resource leaks, shared-dict
        races) with the teardown analyses — events still scheduled but
        never executed, and processes blocked with no event that could
        ever wake them.  Call it when the run is *over*; mid-run, heap
        remnants and parked processes are normal.

        With ``strict`` (the default) a non-empty report raises
        :class:`~repro.sim.sanitizer.SanitizerError`; otherwise the
        findings are returned.  A no-op returning ``[]`` when the
        environment was built without ``sanitize``.
        """
        if self._sanitizer is None:
            return []
        findings = self._sanitizer.check()
        if strict and findings:
            from .sanitizer import SanitizerError

            raise SanitizerError(findings)
        return findings

    # -- factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        self._eid += 1
        self.events_scheduled += 1
        queue = self._queue
        queue.push((self._now + delay, priority, self._eid, event))
        if len(queue) > self.peak_heap_size:
            self.peak_heap_size = len(queue)
        if self._sanitizer is not None:
            self._sanitizer.on_schedule(self._eid, event)

    def step(self) -> None:
        """Process the single next event (no-op for tombstones).

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, eid, event = self._queue.pop()
        self._now = when
        if self._sanitizer is not None:
            self._sanitizer.on_consume(eid)
        callbacks = event.callbacks
        if callbacks is None:
            # Dismissed via cancel_scheduled(): skip without executing.
            self.tombstones_skipped += 1
            return
        event.callbacks = None
        self.events_executed += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches it;
        * an :class:`Event` — run until that event is processed, and
          return its value.
        """
        stop_value: Any = None
        if until is None:
            deadline = float("inf")
            stop_event: Event | None = None
        elif isinstance(until, Event):
            deadline = float("inf")
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value

            def _stop(event: Event) -> None:
                raise StopSimulation(event._value if event._ok else event)

            stop_event.callbacks.append(_stop)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self._now})"
                )
            stop_event = None

        try:
            while self._queue:
                if self._queue.next_time() > deadline:
                    self._now = deadline
                    return None
                self.step()
        except StopSimulation as stop:
            value = stop.value
            if isinstance(value, Event):
                # The stop event failed; re-raise its exception.
                exc = value._value
                raise exc from None
            return value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run() ended before the awaited event was triggered"
            )
        return stop_value
