"""Composite events: conditions over multiple events.

Provides ``AllOf`` (fire when every child fired) and ``AnyOf`` (fire
when the first child fires), matching the semantics processes need to
wait on several things at once, e.g. "task finished OR shutdown
requested".  :func:`with_timeout` builds on ``AnyOf`` to race a child
process against the clock — the primitive behind per-call deadlines in
the RPC and retry layers.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Callable, Iterable

from .core import Event, Environment, SimulationError

__all__ = [
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "TimeoutExpired",
    "with_timeout",
]


class TimeoutExpired(SimulationError):
    """Raised by :func:`with_timeout` when the child did not finish.

    Parameters
    ----------
    message:
        Human-readable description of what timed out.
    timeout:
        The deadline that was exceeded, in simulated seconds.
    """

    def __init__(self, message: str, timeout: float) -> None:
        super().__init__(message)
        self.timeout = timeout


class ConditionValue:
    """Ordered mapping of the child events that fired, to their values."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (event.value for event in self.events)

    def items(self):
        return ((event, event.value) for event in self.events)

    def todict(self) -> dict[Event, Any]:
        return {event: event.value for event in self.events}


class Condition(Event):
    """An event that fires when ``evaluate(events, fired_count)`` is true.

    The condition's value is a :class:`ConditionValue` of all child
    events that had fired by the time the condition triggered.  A failed
    child event fails the whole condition immediately.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: Environment,
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self.triggered and self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    def _collect(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Only events whose callbacks already ran count as "fired":
            # Timeout pre-sets its value at creation, so ``triggered``
            # alone would claim future timeouts.
            if event.processed and event.ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when all child events have fired."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(env, lambda evs, count: count >= len(evs), events)


class AnyOf(Condition):
    """Fires when any child event has fired (or immediately if empty)."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(env, lambda evs, count: count > 0 or not evs, events)


def with_timeout(
    env: Environment,
    generator: Generator[Event, Any, Any],
    timeout: float | None,
    name: str = "child",
) -> Generator[Event, Any, Any]:
    """Run ``generator`` as a child process, abandoning it after ``timeout``.

    Process-generator helper: ``result = yield from with_timeout(...)``.
    If the child finishes first its return value is returned (or its
    exception re-raised).  If the clock wins, the child is interrupted
    and :class:`TimeoutExpired` is raised in the caller.  A ``timeout``
    of ``None`` just waits for the child.
    """
    proc = env.process(generator, name=name)
    if timeout is None:
        result = yield proc
        return result
    clock = env.timeout(timeout)
    try:
        # A failed child fails the AnyOf, re-raising its exception here.
        yield AnyOf(env, [proc, clock])
    finally:
        if proc.triggered:
            # The child finished (or failed) first: the clock lost the
            # race and nothing waits on it any more.  Tombstone it so
            # it stops occupying the pending set until its deadline —
            # at scale these dead clocks otherwise dominate the queue
            # population (every retried RPC/persist leaves one behind
            # for its full per-attempt timeout).
            clock.cancel_scheduled()
    if proc.triggered:
        if proc.ok:
            return proc.value
        raise proc.value
    proc.interrupt("timeout")
    raise TimeoutExpired(f"{name}: no result within {timeout}s", timeout)
