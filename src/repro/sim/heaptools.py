"""Audited lazy-tombstone drain helpers for heaps and deques.

Every ordered waiter structure in the kernel uses the same cancellation
discipline: a withdrawn entry is *tombstoned in place* (a flag flips,
the structure is untouched) and dropped lazily when it reaches the
head.  That keeps cancellation O(1) instead of an O(n) removal plus
re-heapify, at the cost of every consumer having to skip dead heads
correctly — historically each site re-implemented that loop by hand
(:class:`~repro.sim.resources.PriorityResource`'s heap,
:class:`~repro.sim.stores.PriorityStore`'s item heap, the FIFO waiter
deques).  The calendar queue inlines its (purely defensive) bucket-key
skip loop for speed; everything else goes through here.

This module is the single audited implementation of the skip loop.  The
contract all callers rely on:

* ``is_dead`` is a pure predicate — it must not mutate the entry or the
  structure (the helpers may evaluate it any number of times).
* Dead entries are only ever dropped from the *head*; interior
  tombstones stay where they are until the head reaches them, so the
  live ordering is exactly the structure's ordering with dead entries
  deleted.
* ``on_skip`` (when given) is called once per dropped entry, after the
  drop — the hook kernel counters ride.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop
from typing import Any, Callable

__all__ = [
    "drain_heap",
    "pop_live_heap",
    "peek_live_heap",
    "drain_deque",
    "peek_live_deque",
]


def drain_heap(
    heap: list,
    is_dead: Callable[[Any], bool],
    on_skip: Callable[[Any], None] | None = None,
) -> None:
    """Drop dead entries from the top of ``heap`` until the head is live.

    Leaves the heap empty, or with a live minimum entry at ``heap[0]``.
    """
    while heap and is_dead(heap[0]):
        dropped = heappop(heap)
        if on_skip is not None:
            on_skip(dropped)


def peek_live_heap(
    heap: list,
    is_dead: Callable[[Any], bool],
    on_skip: Callable[[Any], None] | None = None,
) -> Any | None:
    """The live minimum of ``heap`` (dead heads dropped), or ``None``."""
    drain_heap(heap, is_dead, on_skip)
    return heap[0] if heap else None


def pop_live_heap(
    heap: list,
    is_dead: Callable[[Any], bool] | None = None,
    on_skip: Callable[[Any], None] | None = None,
) -> Any:
    """Pop the live minimum of ``heap``.

    With ``is_dead=None`` the heap is asserted tombstone-free and this
    is a plain ``heappop`` — the calling structure guarantees no entry
    can die while buffered (e.g. :class:`~repro.sim.stores
    .PriorityStore` items, which are only ever inserted by *already
    succeeded* puts).  Raises :class:`IndexError` when no live entry
    remains, exactly like ``heappop`` on an empty heap.
    """
    if is_dead is not None:
        drain_heap(heap, is_dead, on_skip)
    return heappop(heap)


def drain_deque(
    queue: deque,
    is_dead: Callable[[Any], bool],
    on_skip: Callable[[Any], None] | None = None,
) -> None:
    """Drop dead entries from the head of ``queue`` until it is live."""
    while queue and is_dead(queue[0]):
        dropped = queue.popleft()
        if on_skip is not None:
            on_skip(dropped)


def peek_live_deque(
    queue: deque,
    is_dead: Callable[[Any], bool],
    on_skip: Callable[[Any], None] | None = None,
) -> Any | None:
    """The live head of ``queue`` (dead heads dropped), or ``None``."""
    drain_deque(queue, is_dead, on_skip)
    return queue[0] if queue else None
