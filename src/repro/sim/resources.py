"""Capacity-limited resources for the simulation kernel.

A :class:`Resource` models mutual exclusion over ``capacity`` identical
slots.  Requests are events; they succeed once a slot is free.  A
``with`` protocol is provided so processes can write::

    with resource.request() as req:
        yield req
        ...  # critical section

:class:`PriorityResource` serves requests lowest-priority-value first.
These are used for, e.g., serializing access to the simulated batch
system and the RPC server worker pools.

The FIFO wait queue is a ``deque`` and the holder set a hash set, so
request, grant, and release are all O(1) (O(log n) for the priority
variant).  Withdrawn requests are tombstoned in place and skipped
lazily when they reach the head — no list scans, no re-heapify.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from .core import Environment, Event, NORMAL, URGENT
from .heaptools import drain_deque, drain_heap, pop_live_heap

__all__ = ["Request", "Release", "Resource", "PriorityRequest", "PriorityResource"]


def _is_withdrawn(request: "Request") -> bool:
    """Tombstone predicate shared by the FIFO deque and priority heap."""
    return request._withdrawn


class Request(Event):
    """A pending claim on one slot of a resource."""

    __slots__ = ("resource", "proc", "_withdrawn")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        self._withdrawn = False
        resource._queue_request(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or withdraw the request if still pending)."""
        self.resource._cancel(self)


class Release(Event):
    """Event representing completion of a release (fires immediately)."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.request = request
        resource._cancel(request)
        self.succeed(priority=URGENT)


class Resource:
    """A resource with ``capacity`` interchangeable slots (FIFO)."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self._waiting: deque[Request] = deque()
        self._users: set[Request] = set()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue(self) -> list[Request]:
        """Requests waiting for a slot (read-only view)."""
        return [r for r in self._waiting if not r._withdrawn]

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internals ------------------------------------------------------

    def _queue_request(self, request: Request) -> None:
        self._waiting.append(request)
        self.env._note_waiters(len(self._waiting))
        if self.env._sanitizer is not None:
            self.env._sanitizer.on_request(request)

    def _next_request(self) -> Request | None:
        waiting = self._waiting
        drain_deque(waiting, _is_withdrawn)
        return waiting[0] if waiting else None

    def _pop_request(self) -> Request:
        return self._waiting.popleft()

    def _trigger_requests(self) -> None:
        while len(self._users) < self._capacity:
            request = self._next_request()
            if request is None:
                break
            self._pop_request()
            self._users.add(request)
            if self.env._sanitizer is not None:
                self.env._sanitizer.on_grant(request)
            request.succeed(priority=NORMAL)

    def _cancel(self, request: Request) -> None:
        if self.env._sanitizer is not None:
            self.env._sanitizer.on_release(request)
        if request in self._users:
            self._users.discard(request)
            self._trigger_requests()
        else:
            # Tombstone: dropped lazily when it reaches the queue head.
            request._withdrawn = True


class PriorityRequest(Request):
    """A request with an explicit priority (lower value served first)."""

    __slots__ = ("priority", "time", "_key")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self._key = (priority, self.time, resource._tiebreak())
        super().__init__(resource)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return self._key < other._key


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: list[PriorityRequest] = []
        self._seq = 0

    def _tiebreak(self) -> int:
        self._seq += 1
        return self._seq

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    @property
    def queue(self) -> list[Request]:
        return sorted(r for r in self._heap if not r._withdrawn)

    def _queue_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        heapq.heappush(self._heap, request)
        self.env._note_waiters(len(self._heap))
        if self.env._sanitizer is not None:
            self.env._sanitizer.on_request(request)

    def _next_request(self) -> Request | None:
        heap = self._heap
        drain_heap(heap, _is_withdrawn)
        return heap[0] if heap else None

    def _pop_request(self) -> Request:
        # Pops through the shared audited drain so the result is the
        # live minimum regardless of whether a peek pre-drained the
        # heap — the pop must never hand out a withdrawn request.
        return pop_live_heap(self._heap, _is_withdrawn)
