"""Runtime sanitizers for the discrete-event kernel.

The static half of the determinism story lives in
:mod:`repro.sanitize.simlint`; this module is the dynamic half.  When an
:class:`~repro.sim.core.Environment` is built with ``sanitize=True`` (or
``REPRO_SANITIZE=1`` is set), the kernel attaches a
:class:`KernelSanitizer` that rides the existing kernel-counter hooks
and watches four lifecycle invariants no experiment should violate:

* **event leaks** — events still sitting in the heap at teardown were
  scheduled but never executed: either the run was abandoned early or a
  process keeps arming timers nobody consumes;
* **deadlocks** — live processes with an empty (or unreachable) event
  heap: nothing can ever wake them, so the await site of each blocked
  process is reported;
* **resource leaks** — a :class:`~repro.sim.resources.Request` that was
  granted and never released when its owning process terminated;
* **shared-dict races** — for opted-in :class:`SharedDict` mappings, a
  process that reads a key, yields (losing atomicity), and then writes
  the key after *another* process wrote it in between — the classic
  lost-update interleaving that makes runs order-sensitive.

Resource leaks and shared-dict races are *spontaneous*: they are
recorded the instant they happen (and mirrored into a module-level
registry so a test harness can assert the whole suite stayed clean).
Event leaks and deadlocks are *teardown* checks, produced by
:meth:`Environment.sanitize_check` once the caller declares the run
over — mid-run, a scheduled future event or a parked process is just a
simulation in progress, not a bug.

Every finding carries the owning process's name and the source site
(``file.py:line``) captured from the generator frame at the moment the
hazard was created, so reports point at code, not at kernel internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, MutableMapping

from .core import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Environment, Event, Process
    from .resources import Request

__all__ = [
    "SanitizerError",
    "SanitizerFinding",
    "KernelSanitizer",
    "SharedDict",
    "drain_spontaneous_findings",
    "record_spontaneous_finding",
]


class SanitizerError(SimulationError):
    """Raised by a strict :meth:`Environment.sanitize_check`."""

    def __init__(self, findings: list["SanitizerFinding"]) -> None:
        lines = [f"{len(findings)} sanitizer finding(s):"]
        lines.extend(f"  - {finding.format()}" for finding in findings)
        super().__init__("\n".join(lines))
        self.findings = findings


@dataclass(frozen=True, slots=True)
class SanitizerFinding:
    """One detected lifecycle/determinism hazard."""

    #: "event-leak" | "deadlock" | "resource-leak" | "shared-dict-race"
    kind: str
    #: Name of the offending process (None if outside any process).
    process: str | None
    #: "file.py:line" where the hazard was created, if known.
    site: str | None
    #: Human-readable description.
    detail: str
    #: Simulated time the finding was produced.
    time: float

    def format(self) -> str:
        where = f" [{self.site}]" if self.site else ""
        who = self.process or "<no process>"
        return f"{self.kind}: {who}{where} at t={self.time:g}: {self.detail}"


#: Spontaneous findings from *every* sanitized environment, in creation
#: order.  A test suite drains this between tests to assert that no run
#: leaked a resource or raced on a shared dict, without having to reach
#: into each environment a test happened to build.
_SPONTANEOUS: list[SanitizerFinding] = []


def drain_spontaneous_findings() -> list[SanitizerFinding]:
    """Return and clear the global spontaneous-finding registry."""
    global _SPONTANEOUS
    drained, _SPONTANEOUS = _SPONTANEOUS, []
    return drained


def record_spontaneous_finding(finding: SanitizerFinding) -> None:
    """Register a finding produced outside the kernel hooks.

    Post-hoc checkers (e.g. the provenance-graph validators) use this to
    surface their violations through the same registry the test suite's
    zero-findings guard already drains.
    """
    _SPONTANEOUS.append(finding)


class KernelSanitizer:
    """Lifecycle watcher attached to one :class:`Environment`.

    All hooks are O(1) dict/set operations so the sanitizer can stay on
    for the perf-regression suite without distorting its baselines.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Spontaneous findings recorded as they happen.
        self.findings: list[SanitizerFinding] = []
        #: eid -> (event, process name, site) for scheduled, unconsumed events.
        self._live_events: dict[int, tuple["Event", str | None, str | None]] = {}
        #: Live (started, not yet terminated) processes.
        self._live_procs: set["Process"] = set()
        #: Pending (not yet granted) request -> creation site.
        self._pending_requests: dict["Request", str | None] = {}
        #: proc -> {granted request -> creation site}.
        self._held: dict["Process", dict["Request", str | None]] = {}

    # -- site capture ---------------------------------------------------

    def current_site(self) -> tuple[str | None, str | None]:
        """(process name, "file:line") of the code running right now."""
        proc = self.env.active_process
        if proc is None:
            return None, None
        frame = proc._generator.gi_frame
        if frame is None:
            return proc.name, None
        return proc.name, f"{frame.f_code.co_filename}:{frame.f_lineno}"

    @staticmethod
    def _suspend_site(proc: "Process") -> str | None:
        """Where a parked process is suspended (its await site)."""
        frame = getattr(proc._generator, "gi_frame", None)
        if frame is None:
            return None
        return f"{frame.f_code.co_filename}:{frame.f_lineno}"

    def _record(self, finding: SanitizerFinding) -> None:
        self.findings.append(finding)
        _SPONTANEOUS.append(finding)

    # -- kernel hooks (called from core.py / resources.py) ---------------

    def on_schedule(self, eid: int, event: "Event") -> None:
        name, site = self.current_site()
        self._live_events[eid] = (event, name, site)

    def on_consume(self, eid: int) -> None:
        self._live_events.pop(eid, None)

    def on_process_start(self, proc: "Process") -> None:
        self._live_procs.add(proc)

    def on_process_exit(self, proc: "Process") -> None:
        self._live_procs.discard(proc)
        held = self._held.pop(proc, None)
        if held:
            for request, site in held.items():
                self._record(
                    SanitizerFinding(
                        kind="resource-leak",
                        process=proc.name,
                        site=site,
                        detail=(
                            f"process terminated still holding a slot of "
                            f"{type(request.resource).__name__} (capacity "
                            f"{request.resource.capacity}) requested here — "
                            "use `with resource.request() as req:` or "
                            "release in a finally block"
                        ),
                        time=self.env.now,
                    )
                )

    def on_request(self, request: "Request") -> None:
        _, site = self.current_site()
        self._pending_requests[request] = site

    def on_grant(self, request: "Request") -> None:
        site = self._pending_requests.pop(request, None)
        proc = request.proc
        if proc is None:
            return
        self._held.setdefault(proc, {})[request] = site

    def on_release(self, request: "Request") -> None:
        self._pending_requests.pop(request, None)
        proc = request.proc
        if proc is not None:
            held = self._held.get(proc)
            if held is not None:
                held.pop(request, None)

    # -- teardown analysis ------------------------------------------------

    def blocked_processes(self) -> list["Process"]:
        """Live (not yet terminated) processes, sorted by name."""
        return sorted(self._live_procs, key=lambda p: p.name)

    def check(self) -> list[SanitizerFinding]:
        """Teardown report: spontaneous findings + leaks + deadlocks."""
        findings = list(self.findings)

        leaked = [
            entry
            for entry in self._live_events.values()
            if entry[0].callbacks is not None  # tombstones are deliberate
        ]
        for event, name, site in leaked:
            findings.append(
                SanitizerFinding(
                    kind="event-leak",
                    process=name,
                    site=site,
                    detail=(
                        f"{type(event).__name__} scheduled here was never "
                        "executed or cancelled before teardown"
                    ),
                    time=self.env.now,
                )
            )

        # A parked process is deadlocked only if the heap holds nothing
        # that could still run: with live events pending, the sim merely
        # stopped early.
        if not leaked:
            for proc in self.blocked_processes():
                target = proc.target
                findings.append(
                    SanitizerFinding(
                        kind="deadlock",
                        process=proc.name,
                        site=self._suspend_site(proc),
                        detail=(
                            "process is blocked awaiting "
                            f"{target!r} with an empty event heap — "
                            "nothing can ever wake it"
                        ),
                        time=self.env.now,
                    )
                )
        return findings


class SharedDict(MutableMapping):
    """A dict opted in to cross-process write-between-yields detection.

    Subsystems whose state is mutated by several processes (the RP
    executor's task-process table, the SOMA service's per-namespace
    instance maps) register their mapping via
    :meth:`Environment.shared_dict`.  Every read records ``(process,
    key, version)``; a later write by the same process detects whether a
    *different* process bumped the key's version in between — which can
    only happen across a ``yield``, since processes are atomic between
    yields.  That interleaving is a lost update: the writer computed its
    value from a stale read, and which value survives depends on event
    ordering.

    With the sanitizer off the wrapper degrades to plain dict behaviour
    (``Environment.shared_dict`` returns a real dict in that case, so
    production runs pay nothing).
    """

    __slots__ = ("env", "name", "_data", "_versions", "_reads")

    def __init__(self, env: "Environment", name: str) -> None:
        self.env = env
        self.name = name
        self._data: dict[Any, Any] = {}
        #: key -> (version, writer process name, write site)
        self._versions: dict[Any, tuple[int, str | None, str | None]] = {}
        #: proc -> {key -> version seen at last read}
        self._reads: dict["Process", dict[Any, int]] = {}

    def _sanitizer(self) -> KernelSanitizer | None:
        return self.env._sanitizer

    def __getitem__(self, key: Any) -> Any:
        value = self._data[key]
        san = self._sanitizer()
        if san is not None:
            proc = self.env.active_process
            if proc is not None:
                version, _, _ = self._versions.get(key, (0, None, None))
                self._reads.setdefault(proc, {})[key] = version
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        san = self._sanitizer()
        if san is not None:
            proc = self.env.active_process
            version, writer, write_site = self._versions.get(key, (0, None, None))
            if proc is not None:
                seen = self._reads.get(proc, {}).get(key)
                if (
                    seen is not None
                    and version > seen
                    and writer is not None
                    and writer != proc.name
                ):
                    _, site = san.current_site()
                    san._record(
                        SanitizerFinding(
                            kind="shared-dict-race",
                            process=proc.name,
                            site=site,
                            detail=(
                                f"lost update on {self.name!r}[{key!r}]: value "
                                f"read at version {seen} was overwritten by "
                                f"process {writer!r} [{write_site}] before "
                                "this write — re-read after yielding or "
                                "serialize writers"
                            ),
                            time=self.env.now,
                        )
                    )
            name, site = san.current_site()
            self._versions[key] = (version + 1, name, site)
            if proc is not None:
                # Our own write implies knowledge of the new version.
                self._reads.setdefault(proc, {})[key] = version + 1
        self._data[key] = value

    def __delitem__(self, key: Any) -> None:
        del self._data[key]
        self._versions.pop(key, None)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedDict({self.name!r}, {self._data!r})"
