"""Message stores: the building block for queues and channels.

A :class:`Store` holds items; ``put`` and ``get`` are events.  This is
the substrate for the ZeroMQ-style component queues inside the simulated
RADICAL-Pilot and for the RPC engine's mailboxes.

Variants:

* :class:`Store` — unbounded-or-bounded FIFO of arbitrary items.
* :class:`PriorityStore` — items retrieved lowest-first.
* :class:`FilterStore` — ``get(filter)`` retrieves the first item
  matching a predicate.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from .core import Environment, Event, NORMAL

__all__ = [
    "StorePut",
    "StoreGet",
    "Store",
    "PriorityStore",
    "PriorityItem",
    "FilterStore",
]


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        try:
            # Only meaningful while still waiting.
            self.env  # noqa: B018 - attribute access for liveness
        finally:
            pass


class StoreGet(Event):
    """Pending retrieval of an item from a store."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._dispatch()


class FilterStoreGet(StoreGet):
    """Pending retrieval of the first item matching ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(
        self, store: "FilterStore", predicate: Callable[[Any], bool]
    ) -> None:
        self.predicate = predicate
        super().__init__(store)


class Store:
    """FIFO store of items with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: list[Any] = []
        self._put_waiters: list[StorePut] = []
        self._get_waiters: list[StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event fires once it is stored."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the event's value is the item."""
        return StoreGet(self)

    # -- internals ------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self._insert(event.item)
            event.succeed(priority=NORMAL)
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._extract(), priority=NORMAL)
            return True
        return False

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _extract(self) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        # Alternate put/get matching until no more progress can be made.
        progress = True
        while progress:
            progress = False
            while self._put_waiters:
                put = self._put_waiters[0]
                if put.triggered:
                    self._put_waiters.pop(0)
                    continue
                if self._do_put(put):
                    self._put_waiters.pop(0)
                    progress = True
                else:
                    break
            while self._get_waiters:
                get = self._get_waiters[0]
                if get.triggered:
                    self._get_waiters.pop(0)
                    continue
                if self._do_get(get):
                    self._get_waiters.pop(0)
                    progress = True
                else:
                    break


class PriorityItem:
    """Wrapper pairing a sortable priority with an arbitrary payload."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.item == other.item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store retrieving the smallest item first (heap-ordered)."""

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _extract(self) -> Any:
        return heapq.heappop(self.items)


class FilterStore(Store):
    """Store supporting predicate-based retrieval.

    Note that a blocked get at the queue head does *not* block gets
    behind it whose predicates match available items.
    """

    def get(  # type: ignore[override]
        self, predicate: Callable[[Any], bool] = lambda item: True
    ) -> FilterStoreGet:
        return FilterStoreGet(self, predicate)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters:
                put = self._put_waiters[0]
                if put.triggered:
                    self._put_waiters.pop(0)
                    continue
                if self._do_put(put):
                    self._put_waiters.pop(0)
                    progress = True
                else:
                    break
            still_waiting: list[StoreGet] = []
            for get in self._get_waiters:
                if get.triggered:
                    continue
                assert isinstance(get, FilterStoreGet)
                matched = False
                for idx, item in enumerate(self.items):
                    if get.predicate(item):
                        del self.items[idx]
                        get.succeed(item, priority=NORMAL)
                        matched = True
                        progress = True
                        break
                if not matched:
                    still_waiting.append(get)
            self._get_waiters = still_waiting
