"""Message stores: the building block for queues and channels.

A :class:`Store` holds items; ``put`` and ``get`` are events.  This is
the substrate for the ZeroMQ-style component queues inside the simulated
RADICAL-Pilot and for the RPC engine's mailboxes.

Variants:

* :class:`Store` — unbounded-or-bounded FIFO of arbitrary items.
* :class:`PriorityStore` — items retrieved lowest-first.
* :class:`FilterStore` — ``get(filter)`` retrieves the first item
  matching a predicate.

All waiter queues and the plain FIFO item buffer are ``deque``-backed so
every hot-path operation (enqueue, dequeue, waiter dispatch) is O(1);
cancelled waiters are tombstoned in place and dropped lazily when they
reach the head of their queue.

:class:`FilterStore` dispatches incrementally: a new get is vetted
against the buffered items exactly once, and a new item is offered to
the blocked waiters exactly once, under the invariant that every
blocked waiter has already failed every buffered item.  The historical
implementation instead rescanned every blocked waiter against every
buffered item on every store operation, which made a deep waiter
backlog quadratic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from .core import Environment, Event, NORMAL
from .heaptools import drain_deque, pop_live_heap

__all__ = [
    "StorePut",
    "StoreGet",
    "Store",
    "PriorityStore",
    "PriorityItem",
    "FilterStore",
]


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    __slots__ = ("item", "_cancelled")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        self._cancelled = False
        store._enqueue_put(self)

    def cancel(self) -> None:
        """Withdraw the pending put (no-op once the item is stored).

        The waiter entry is tombstoned and dropped lazily by the store's
        dispatch loop; the event never fires.
        """
        if not self.triggered:
            self._cancelled = True


class StoreGet(Event):
    """Pending retrieval of an item from a store."""

    __slots__ = ("_cancelled",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self._cancelled = False
        store._enqueue_get(self)

    def cancel(self) -> None:
        """Withdraw the pending get (no-op once an item was handed over)."""
        if not self.triggered:
            self._cancelled = True


class FilterStoreGet(StoreGet):
    """Pending retrieval of the first item matching ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(
        self, store: "FilterStore", predicate: Callable[[Any], bool]
    ) -> None:
        self.predicate = predicate
        super().__init__(store)


def _is_dead_waiter(event: "StorePut | StoreGet") -> bool:
    """Tombstone predicate for waiter queues (settled or withdrawn)."""
    return event.triggered or event._cancelled


class Store:
    """FIFO store of items with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: Any = self._new_items()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event fires once it is stored."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the event's value is the item."""
        return StoreGet(self)

    # -- internals ------------------------------------------------------

    def _enqueue_put(self, event: StorePut) -> None:
        waiters = self._put_waiters
        waiters.append(event)
        self.env._note_waiters(len(waiters))
        self._dispatch()

    def _enqueue_get(self, event: StoreGet) -> None:
        waiters = self._get_waiters
        waiters.append(event)
        self.env._note_waiters(len(waiters))
        self._dispatch()

    def _new_items(self) -> Any:
        return deque()

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _extract(self) -> Any:
        return self.items.popleft()

    def _dispatch(self) -> None:
        # Alternate put/get matching until no more progress can be made.
        puts = self._put_waiters
        gets = self._get_waiters
        items = self.items
        capacity = self._capacity
        progress = True
        while progress:
            progress = False
            while puts:
                put = puts[0]
                if put.triggered or put._cancelled:
                    puts.popleft()
                    continue
                if len(items) < capacity:
                    self._insert(put.item)
                    put.succeed(priority=NORMAL)
                    puts.popleft()
                    progress = True
                else:
                    break
            while gets:
                get = gets[0]
                if get.triggered or get._cancelled:
                    gets.popleft()
                    continue
                if items:
                    get.succeed(self._extract(), priority=NORMAL)
                    gets.popleft()
                    progress = True
                else:
                    break


class PriorityItem:
    """Wrapper pairing a sortable priority with an arbitrary payload."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.item == other.item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store retrieving the smallest item first (heap-ordered)."""

    def _new_items(self) -> Any:
        return []

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _extract(self) -> Any:
        # Items enter this heap only through already-succeeded puts, so
        # no tombstone can exist among them (a put cancelled before
        # success never inserts; cancel() after success is a no-op).
        # The shared helper documents and enforces that audit.
        return pop_live_heap(self.items, is_dead=None)


class FilterStore(Store):
    """Store supporting predicate-based retrieval.

    Note that a blocked get at the queue head does *not* block gets
    behind it whose predicates match available items.

    Dispatch is incremental.  Invariant between operations: every
    blocked get-waiter has already been tested against (and failed)
    every buffered item.  A new get therefore only scans the buffer,
    and a newly admitted item is only offered to the waiter list —
    nothing is ever rescanned, so a deep waiter backlog costs O(1)
    per unrelated operation instead of O(waiters).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        # Needs mid-queue removal when a later waiter matches first.
        self._get_waiters: list[StoreGet] = []  # type: ignore[assignment]

    def _new_items(self) -> Any:
        return []

    def get(  # type: ignore[override]
        self, predicate: Callable[[Any], bool] = lambda item: True
    ) -> FilterStoreGet:
        return FilterStoreGet(self, predicate)

    def _enqueue_put(self, event: StorePut) -> None:
        puts = self._put_waiters
        drain_deque(puts, _is_dead_waiter)
        if not puts and len(self.items) < self._capacity:
            self._admit(event)
        else:
            puts.append(event)
            self.env._note_waiters(len(puts))

    def _enqueue_get(self, event: StoreGet) -> None:
        assert isinstance(event, FilterStoreGet)
        items = self.items
        predicate = event.predicate
        for idx, item in enumerate(items):
            if predicate(item):
                del items[idx]
                event.succeed(item, priority=NORMAL)
                self._admit_blocked_puts()
                return
        waiters = self._get_waiters
        waiters.append(event)
        self.env._note_waiters(len(waiters))

    def _admit(self, put: StorePut) -> None:
        """Store ``put``'s item, offering it to blocked waiters first.

        Succeeds the put, then hands the item to the first blocked
        waiter (FIFO) whose predicate matches; only if none match does
        the item enter the buffer.  The invariant guarantees no waiter
        can match any *older* buffered item, so this single offer pass
        is equivalent to the historical full rescan.
        """
        put.succeed(priority=NORMAL)
        item = put.item
        waiters = self._get_waiters
        dead = 0
        for idx, get in enumerate(waiters):
            if get.triggered or get._cancelled:
                dead += 1
                continue
            if get.predicate(item):  # type: ignore[attr-defined]
                del waiters[idx]
                get.succeed(item, priority=NORMAL)
                return
        if dead > 64 and dead * 2 > len(waiters):
            # Piggy-back tombstone compaction on the full scan we
            # just paid for.
            self._get_waiters = [
                g for g in waiters if not (g.triggered or g._cancelled)
            ]
        self.items.append(item)

    def _admit_blocked_puts(self) -> None:
        puts = self._put_waiters
        items = self.items
        while puts and len(items) < self._capacity:
            put = puts.popleft()
            if put.triggered or put._cancelled:
                continue
            self._admit(put)
