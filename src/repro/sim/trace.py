"""Lightweight tracing for simulation runs.

A :class:`Tracer` accumulates timestamped records grouped by category.
All subsystems (RP scheduler, SOMA service, monitors) emit through a
shared tracer so post-run analysis (timelines, utilization plots,
overhead accounting) has a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from .core import Environment

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped observation."""

    time: float
    category: str
    name: str
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class Tracer:
    """Collects :class:`TraceRecord` objects during a run.

    Categories are free-form strings ("rp.task", "soma.publish",
    "hw.sample", ...).  Recording can be toggled per category to keep
    large runs cheap.
    """

    def __init__(self, env: Environment, enabled: bool = True) -> None:
        self.env = env
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        self._disabled_categories: set[str] = set()
        self._counts: dict[str, int] = {}
        #: Optional callback invoked with every *stored* record — the
        #: telemetry bridge attaches records to spans through it, so no
        #: subsystem has to log into both layers.  Records suppressed
        #: by ``enabled``/category toggles never reach the sink.
        self.sink: "Callable[[TraceRecord], None] | None" = None

    def disable_category(self, category: str) -> None:
        self._disabled_categories.add(category)

    def enable_category(self, category: str) -> None:
        self._disabled_categories.discard(category)

    def record(self, category: str, name: str, **data: Any) -> None:
        """Record an observation at the current simulated time."""
        self._counts[category] = self._counts.get(category, 0) + 1
        if not self.enabled or category in self._disabled_categories:
            return
        rec = TraceRecord(self.env.now, category, name, data)
        self._records.append(rec)
        if self.sink is not None:
            self.sink(rec)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        return self._records

    def count(self, category: str) -> int:
        """Total records emitted for ``category`` (even if not stored)."""
        return self._counts.get(category, 0)

    def select(
        self,
        category: str | None = None,
        name: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[TraceRecord]:
        """Filter stored records."""

        def keep(rec: TraceRecord) -> bool:
            if category is not None and rec.category != category:
                return False
            if name is not None and rec.name != name:
                return False
            if since is not None and rec.time < since:
                return False
            if until is not None and rec.time > until:
                return False
            return True

        return [rec for rec in self._records if keep(rec)]

    def categories(self) -> set[str]:
        return {rec.category for rec in self._records}

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self._records.extend(records)

    def clear(self) -> None:
        self._records.clear()
        self._counts.clear()
