"""SOMA: Service-based Observability, Monitoring and Analysis.

The paper's primary contribution: a service-based performance
observability framework for heterogeneous HPC workflows, deployed as a
first-class RP service task with per-namespace instances, client stubs
publishing Conduit trees over RPC, and online analysis.
"""

from .application import (
    ApplicationMetrics,
    InstrumentedModel,
    figure_of_merit_series,
)
from .analysis import (
    UtilizationPoint,
    cpu_utilization_series,
    free_resource_estimate,
    load_imbalance,
    rank_region_breakdown,
    task_state_observations,
    task_throughput,
    workflow_summary_series,
)
from .client import SomaClient
from .dashboard import render_dashboard
from .integration import SomaDeployment, deploy_soma, no_soma
from .namespaces import (
    ALL_NAMESPACES,
    APPLICATION,
    HARDWARE,
    PERFORMANCE,
    WORKFLOW,
    namespace_root,
)
from .service import (
    ShardedSomaServiceModel,
    SomaConfig,
    SomaServiceModel,
    soma_service_description,
)
from .sharding import (
    AdmissionController,
    HashRing,
    ShardRouter,
    TokenBucket,
    shard_key,
)
from .storage import NamespaceStore, PublishedRecord

__all__ = [
    "ALL_NAMESPACES",
    "APPLICATION",
    "AdmissionController",
    "ApplicationMetrics",
    "InstrumentedModel",
    "figure_of_merit_series",
    "HARDWARE",
    "HashRing",
    "NamespaceStore",
    "PERFORMANCE",
    "PublishedRecord",
    "ShardRouter",
    "ShardedSomaServiceModel",
    "SomaClient",
    "SomaConfig",
    "SomaDeployment",
    "SomaServiceModel",
    "TokenBucket",
    "shard_key",
    "UtilizationPoint",
    "WORKFLOW",
    "cpu_utilization_series",
    "deploy_soma",
    "free_resource_estimate",
    "load_imbalance",
    "namespace_root",
    "render_dashboard",
    "no_soma",
    "rank_region_breakdown",
    "soma_service_description",
    "task_state_observations",
    "task_throughput",
    "workflow_summary_series",
]
