"""Online/offline analysis over SOMA's namespace stores.

These functions implement the observations the paper derives from the
collected data: per-node CPU-utilization traces with task-start markers
(Fig 7), per-rank MPI breakdowns and load imbalance (Fig 5), workflow
state statistics, throughput, and the free-resource estimate used
between phases in the adaptive DDMD experiment (Sec 3.2).

They operate on :class:`~repro.soma.storage.NamespaceStore` objects and
can be invoked either offline (after a run) or online via a SOMA
client's ``query`` RPC.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .storage import NamespaceStore

__all__ = [
    "UtilizationPoint",
    "cpu_utilization_series",
    "task_state_observations",
    "workflow_summary_series",
    "task_throughput",
    "rank_region_breakdown",
    "load_imbalance",
    "free_resource_estimate",
]


@dataclass(frozen=True, slots=True)
class UtilizationPoint:
    """One hardware-monitor observation."""

    time: float
    hostname: str
    cpu_utilization: float
    gpu_utilization: float


def cpu_utilization_series(
    store: NamespaceStore, hostname: str | None = None
) -> dict[str, list[UtilizationPoint]]:
    """Per-node utilization traces from the hardware namespace.

    This is Fig 7's line data: "each colored line shows the CPU
    utilization on a different compute node".
    """
    series: dict[str, list[UtilizationPoint]] = defaultdict(list)
    for record in store:
        proc = record.data
        if "PROC" not in proc:
            continue
        proc_node = proc["PROC"]
        for host, host_node in proc_node.children():
            if hostname is not None and host != hostname:
                continue
            for ts, sample in host_node.children():
                series[host].append(
                    UtilizationPoint(
                        time=float(ts),
                        hostname=host,
                        cpu_utilization=float(
                            sample.get("cpu_utilization", 0.0)
                        ),
                        gpu_utilization=float(
                            sample.get("gpu_utilization", 0.0)
                        ),
                    )
                )
    return {
        host: sorted(points, key=lambda p: p.time)
        for host, points in series.items()
    }


def task_state_observations(
    store: NamespaceStore, event: str = "AGENT_EXECUTING"
) -> list[tuple[float, str]]:
    """(time, task uid) for every observed occurrence of ``event``.

    With the default event these are Fig 7's orange dots: "when the
    SOMA RP monitor observed from RP that a task is starting".
    """
    seen: set[tuple[str, str]] = set()
    out: list[tuple[float, str]] = []
    for record in store:
        data = record.data
        if "RP" not in data:
            continue
        rp = data["RP"]
        for child, child_node in rp.children():
            if not child.startswith("task."):
                continue
            for ts, leaf in child_node.children():
                if leaf.is_leaf and leaf.value == event:
                    key = (child, ts)
                    if key not in seen:
                        seen.add(key)
                        out.append((float(ts), child))
    return sorted(out)


def workflow_summary_series(
    store: NamespaceStore,
) -> list[dict]:
    """The RP monitor's summary stats, one dict per publish.

    Each entry carries the publishing record's ``source`` so consumers
    can separate interleaved series when several monitors publish into
    the same namespace.
    """
    out: list[dict] = []
    for record in store:
        data = record.data
        if "RP/summary" not in data:
            continue
        summary = data["RP/summary"]
        entry: dict = {"time": record.time, "source": record.source}
        for key in ("tasks_seen", "done", "failed", "running", "pending"):
            if key in summary:
                entry[key] = float(summary[key])
        out.append(entry)
    return out


def task_throughput(store: NamespaceStore) -> list[tuple[float, float]]:
    """(time, completed tasks per second) between consecutive summaries.

    Rates are computed only between consecutive summaries from the
    *same* source: with several monitors publishing interleaved
    summaries, a cross-source pair compares unrelated counters and can
    fabricate negative rates.  Within one source a negative rate means
    the ``done`` counter really regressed — that is a symptom worth
    surfacing, so it is reported as-is rather than clamped to zero.
    """
    by_source: dict[str, list[dict]] = defaultdict(list)
    for entry in workflow_summary_series(store):
        by_source[entry["source"]].append(entry)
    out: list[tuple[float, float]] = []
    for series in by_source.values():
        for prev, cur in zip(series, series[1:]):
            dt = cur["time"] - prev["time"]
            if dt <= 0:
                continue
            rate = (cur.get("done", 0.0) - prev.get("done", 0.0)) / dt
            out.append((cur["time"], rate))
    out.sort(key=lambda pair: pair[0])
    return out


def rank_region_breakdown(
    store: NamespaceStore, task_uid: str
) -> dict[int, dict[str, float]]:
    """Per-rank seconds by region for one task (Fig 5's bars)."""
    merged = store.merged()
    if f"TAU/{task_uid}" not in merged:
        return {}
    out: dict[int, dict[str, float]] = {}
    task_node = merged[f"TAU/{task_uid}"]
    for _host, host_node in task_node.children():
        for rank_name, rank_node in host_node.children():
            rank = int(rank_name.replace("rank", ""))
            regions = {
                region: float(leaf.value)
                for region, leaf in rank_node.children()
                if leaf.is_leaf
            }
            out[rank] = regions
    return out


def load_imbalance(store: NamespaceStore, task_uid: str) -> float:
    """Imbalance metric max/mean over per-rank *compute* time.

    MPI wait regions are excluded: waits complement compute (fast
    ranks wait for stragglers), so total time is flat by construction
    and only the compute split reveals the imbalance (Fig 5).
    """
    breakdown = rank_region_breakdown(store, task_uid)
    if not breakdown:
        return 0.0
    compute = np.array(
        [
            sum(v for k, v in regions.items() if not k.startswith("MPI_"))
            for regions in breakdown.values()
        ]
    )
    mean = compute.mean()
    if mean <= 0:
        return 0.0
    return float(compute.max() / mean)


def free_resource_estimate(
    hardware_store: NamespaceStore,
    window: float,
    now: float,
) -> dict[str, dict[str, float]]:
    """Mean recent per-resource headroom per node — the online analysis
    the adaptive DDMD experiment performs between phases (Sec 3.2).

    Returns ``{host: {"cpu": h, "gpu": h}}`` with each component
    clamped to ``[0, 1]``: utilization samples above 1.0 (oversampled
    or synthetic stores) must read as *zero* headroom, not negative —
    a negative value fed to the training policy would otherwise
    undercount free GPUs.
    """
    series = cpu_utilization_series(hardware_store)
    headroom: dict[str, dict[str, float]] = {}
    for host, points in series.items():
        recent = [p for p in points if p.time >= now - window]
        if not recent:
            continue
        cpu = float(np.mean([p.cpu_utilization for p in recent]))
        gpu = float(np.mean([p.gpu_utilization for p in recent]))
        headroom[host] = {
            "cpu": min(1.0, max(0.0, 1.0 - cpu)),
            "gpu": min(1.0, max(0.0, 1.0 - gpu)),
        }
    return headroom
