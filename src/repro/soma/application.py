"""The *application* namespace: self-reported figures of merit.

Paper Sec 2.3.2: "the application may have useful custom information
to be monitored, i.e., the scientific rate-of-progress or
figure-of-merit self-reported by the application.  For example, a
molecular dynamics code might want to capture the atom-timesteps per
second ...  capturing this data typically requires application
instrumentation with SOMA's API".

This module provides that instrumentation path:

* :class:`ApplicationMetrics` — the in-address-space API an
  application task uses to record and publish figures of merit;
* :class:`InstrumentedModel` — a wrapper that gives any task model an
  ``ApplicationMetrics`` handle and publishes at task end (and
  optionally mid-run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..conduit import Node as ConduitNode
from ..rp.model import ExecutionContext, TaskModel, TaskResult
from ..sim.core import Event
from .client import SomaClient
from .namespaces import APPLICATION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.retry import RetryPolicy
    from ..rp.session import Session
    from .service import SomaConfig
    from .storage import NamespaceStore

__all__ = [
    "ApplicationMetrics",
    "InstrumentedModel",
    "figure_of_merit_series",
]


@dataclass(slots=True)
class MetricSample:
    """One self-reported observation."""

    time: float
    name: str
    value: float
    unit: str = ""


class ApplicationMetrics:
    """SOMA's application-facing instrumentation API.

    The application records named figures of merit; ``flush`` publishes
    everything recorded since the previous flush as one Conduit tree
    under ``APP/<task uid>/``.
    """

    def __init__(
        self,
        session: "Session",
        task_uid: str,
        registry_prefix: str = "soma",
        retry: "RetryPolicy | None" = None,
        config: "SomaConfig | None" = None,
    ) -> None:
        self.session = session
        self.task_uid = task_uid
        if config is not None:
            # Deployment-aware path: inherits sharding routing and
            # tenancy from the config.
            self._client = config.make_client(
                session, name=f"app@{task_uid}", node=None
            )
        else:
            self._client = SomaClient(
                session,
                name=f"app@{task_uid}",
                node=None,
                registry_prefix=registry_prefix,
                retry=retry,
            )
        self._pending: list[MetricSample] = []
        self.published_samples = 0
        self._seq = 0

    def record(self, name: str, value: float, unit: str = "") -> None:
        """Record one figure-of-merit observation (no simulated cost)."""
        self._pending.append(
            MetricSample(
                time=self.session.env.now,
                name=name,
                value=float(value),
                unit=unit,
            )
        )

    def flush(self) -> Generator[Event, None, bool]:
        """Publish pending samples to the application namespace."""
        if not self._pending:
            return True
        tree = ConduitNode()
        for sample in self._pending:
            base = (
                f"APP/{self.task_uid}/{sample.name}/{self._seq:06d}"
            )
            self._seq += 1
            tree[f"{base}/time"] = round(sample.time, 6)
            tree[f"{base}/value"] = sample.value
            if sample.unit:
                tree[f"{base}/unit"] = sample.unit
        count = len(self._pending)
        self._pending.clear()
        ok = yield from self._client.publish(APPLICATION, tree)
        if ok:
            self.published_samples += count
        return ok


class InstrumentedModel(TaskModel):
    """Wrap a task model with SOMA application instrumentation.

    The inner model receives the metrics handle as
    ``ctx.task.description.metadata['app_metrics']`` before execution,
    records whatever it wants through it, and the wrapper flushes at
    task end.  Models that never touch the handle still publish one
    default figure of merit: their wall-clock rate of progress.
    """

    def __init__(
        self,
        session: "Session",
        config: "SomaConfig",
        inner: TaskModel,
        default_metric: str = "progress_rate",
    ) -> None:
        self.session = session
        self.config = config
        self.inner = inner
        self.default_metric = default_metric

    def execute(self, ctx: ExecutionContext):
        metrics = ApplicationMetrics(
            self.session,
            ctx.task.uid,
            config=self.config,
        )
        ctx.task.description.metadata["app_metrics"] = metrics
        start = ctx.env.now
        result: TaskResult = yield from self.inner.execute(ctx)
        elapsed = ctx.env.now - start
        if metrics.published_samples == 0 and not metrics._pending:
            rate = 1.0 / elapsed if elapsed > 0 else 0.0
            metrics.record(self.default_metric, rate, unit="tasks/s")
        yield from metrics.flush()
        result.data["app_metrics_published"] = metrics.published_samples
        return result


def figure_of_merit_series(
    store: "NamespaceStore", task_uid: str, metric: str
) -> list[tuple[float, float]]:
    """(time, value) series of one metric for one task."""
    out: list[tuple[float, float]] = []
    for record in store:
        data = record.data
        path = f"APP/{task_uid}/{metric}"
        if path not in data:
            continue
        for _seq, sample_node in data[path].children():
            out.append(
                (
                    float(sample_node["time"]),
                    float(sample_node["value"]),
                )
            )
    return sorted(out)
