"""The SOMA client stub.

"SOMA's functionality is split up into a client stub and a service
library.  The client stub exposes the SOMA monitoring API and is
responsible for translating the API calls into remote procedure calls"
(paper Sec 2.2.1).  The stub either runs inside the instrumented
component's address space (TAU plugin) or as a separate binary on its
own core (hardware / RP monitors) — pass ``node`` to charge that CPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..conduit import Node as ConduitNode
from ..messaging.rpc import RPCClient, RPCError, RPCServer
from ..sim.core import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.node import Node
    from ..rp.session import Session

__all__ = ["SomaClient"]


class SomaClient:
    """Connects to one or more SOMA namespace instances."""

    def __init__(
        self,
        session: "Session",
        name: str,
        node: "Node | None" = None,
        registry_prefix: str = "soma",
    ) -> None:
        self.session = session
        self.env = session.env
        self.name = name
        self.node = node
        self.registry_prefix = registry_prefix
        self._rpc = RPCClient(
            session.env, session.cluster.network, name=name, node=node
        )
        self._servers: dict[str, RPCServer] = {}
        self.published = 0
        self.publish_failures = 0

    # -- connection ---------------------------------------------------------

    def connect(self, namespace: str) -> Generator[Event, None, RPCServer]:
        """Resolve (and wait for) the namespace instance's address."""
        server = self._servers.get(namespace)
        if server is not None:
            return server
        server = yield from self.session.rpc_registry.lookup(
            f"{self.registry_prefix}.{namespace}"
        )
        self._servers[namespace] = server
        return server

    # -- the monitoring API -----------------------------------------------------

    def publish(
        self, namespace: str, data: ConduitNode
    ) -> Generator[Event, None, bool]:
        """Publish a Conduit tree to a namespace instance (blocking RPC).

        Returns True on success; False if the service is gone (the
        client surfaces the failure but does not crash its host).
        """
        server = yield from self.connect(namespace)
        nbytes = data.nbytes()
        try:
            yield from self._rpc.call(
                server, "publish", body=data, payload_bytes=nbytes
            )
        except RPCError:
            self.publish_failures += 1
            self.session.tracer.record(
                "soma.publish_failed", namespace, source=self.name
            )
            return False
        self.published += 1
        return True

    def query(
        self, namespace: str, kind: str = "records", **params: Any
    ) -> Generator[Event, None, Any]:
        """Online query against a namespace instance."""
        server = yield from self.connect(namespace)
        body = {"kind": kind, **params}
        response = yield from self._rpc.call(
            server, "query", body=body, payload_bytes=256.0
        )
        return response.body

    @property
    def mean_rtt(self) -> float:
        return self._rpc.mean_rtt
