"""The SOMA client stub.

"SOMA's functionality is split up into a client stub and a service
library.  The client stub exposes the SOMA monitoring API and is
responsible for translating the API calls into remote procedure calls"
(paper Sec 2.2.1).  The stub either runs inside the instrumented
component's address space (TAU plugin) or as a separate binary on its
own core (hardware / RP monitors) — pass ``node`` to charge that CPU.

Degradation semantics
---------------------
Monitoring must never take the workflow down with it.  When a publish
fails — service outage, dropped message, partition — the client retries
under its :class:`~repro.faults.RetryPolicy` (if one is configured),
then *drops the sample* and records the start of an observability gap.
The first successful publish after a gap emits a ``soma.gap`` trace
record with the gap's extent, and the client folds its own health
counters (drops, retries, gap seconds) into the next published tree
under ``SOMA/health/<client>/`` so the gap is visible in the monitoring
data itself, not only in client-side state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..conduit import Node as ConduitNode
from ..messaging.protocol import AdmissionRejected
from ..messaging.rpc import RPCClient, RPCError, RPCServer
from ..sim.core import Event
from .sharding import ShardRouter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.retry import RetryPolicy
    from ..platform.node import Node
    from ..rp.session import Session

__all__ = ["SomaClient"]


class SomaClient:
    """Connects to one or more SOMA namespace instances."""

    def __init__(
        self,
        session: "Session",
        name: str,
        node: "Node | None" = None,
        registry_prefix: str = "soma",
        retry: "RetryPolicy | None" = None,
        tenant: str = "default",
        router: ShardRouter | None = None,
        degrade: str = "drop",
    ) -> None:
        if degrade not in ("drop", "summarize"):
            raise ValueError(f"unknown degrade mode {degrade!r}")
        self.session = session
        self.env = session.env
        self.name = name
        self.node = node
        self.registry_prefix = registry_prefix
        #: Policy applied to every publish/query RPC (None = single shot).
        self.retry = retry
        #: Tenant stamped on every RPC; the facility's admission
        #: controllers budget per tenant.
        self.tenant = tenant
        #: Shard routing; None routes to the classic per-namespace name.
        self.router = (
            router
            if router is not None
            else ShardRouter(registry_prefix=registry_prefix)
        )
        #: What to do with a sample the service refuses under
        #: backpressure: "drop" forgets it, "summarize" folds cumulative
        #: counts of the refused data into the next accepted publish.
        self.degrade = degrade
        self._rpc = RPCClient(
            session.env,
            session.cluster.network,
            name=name,
            node=node,
            rng=session.stable_rng(f"rpc:{name}"),
            component="soma-client",
            tenant=tenant,
        )
        self._servers: dict[str, RPCServer] = {}
        self.published = 0
        self.publish_failures = 0
        #: Samples dropped after retries were exhausted.
        self.dropped = 0
        #: Samples the service refused at admission (backpressure).
        self.rejected = 0
        #: Completed observability gaps (drop ... next success).
        self.gaps = 0
        self.gap_seconds = 0.0
        self._gap_since: dict[str, float] = {}
        #: Per-namespace cumulative summary of refused samples
        #: (samples/bytes), published under SOMA/degraded/ in
        #: "summarize" mode.
        self._degraded: dict[str, dict[str, float]] = {}

    # -- connection ---------------------------------------------------------

    def connect(self, namespace: str) -> Generator[Event, None, RPCServer]:
        """Resolve (and wait for) the owning instance's address.

        Sharded deployments route ``(tenant, namespace)`` through the
        consistent-hash ring to one instance; unsharded ones keep the
        paper's one-server-per-namespace names.
        """
        server = self._servers.get(namespace)
        if server is not None:
            return server
        server = yield from self.session.rpc_registry.lookup(
            self.router.registry_name(self.tenant, namespace)
        )
        self._servers[namespace] = server
        return server

    # -- the monitoring API -----------------------------------------------------

    def publish(
        self, namespace: str, data: ConduitNode
    ) -> Generator[Event, None, bool]:
        """Publish a Conduit tree to a namespace instance (blocking RPC).

        Returns True on success; False if the sample was dropped after
        the retry policy gave up (the client surfaces the failure but
        does not crash or stall its host beyond the policy's deadline).
        """
        server = yield from self.connect(namespace)
        self._annotate_health(data)
        nbytes = data.nbytes()
        with self.session.telemetry.span(
            f"soma.publish:{namespace}",
            component="soma-client",
            source=self.name,
            nbytes=nbytes,
        ) as span:
            try:
                yield from self._rpc.call(
                    server,
                    "publish",
                    body=data,
                    payload_bytes=nbytes,
                    retry=self.retry,
                )
            except AdmissionRejected:
                # Backpressure, not an outage: the service is up but
                # refuses this tenant's sample.  Degrade immediately —
                # never re-send, never stall the host task.
                self.publish_failures += 1
                self.rejected += 1
                self.dropped += 1
                self._gap_since.setdefault(namespace, self.env.now)
                if self.degrade == "summarize":
                    summary = self._degraded.setdefault(
                        namespace, {"samples": 0, "bytes": 0.0}
                    )
                    summary["samples"] += 1
                    summary["bytes"] += nbytes
                if span is not None:
                    span.attributes["rejected"] = True
                self.session.tracer.record(
                    "soma.publish_rejected",
                    namespace,
                    source=self.name,
                    tenant=self.tenant,
                )
                return False
            except RPCError as exc:
                self.publish_failures += 1
                self.dropped += 1
                self._gap_since.setdefault(namespace, self.env.now)
                if span is not None:
                    span.attributes["dropped"] = True
                self.session.tracer.record(
                    "soma.publish_failed",
                    namespace,
                    source=self.name,
                    error=type(exc).__name__,
                )
                return False
            self._close_gap(namespace)
            self.published += 1
        return True

    def query(
        self, namespace: str, kind: str = "records", **params: Any
    ) -> Generator[Event, None, Any]:
        """Online query against a namespace instance."""
        server = yield from self.connect(namespace)
        body = {"kind": kind, **params}
        with self.session.telemetry.span(
            f"soma.query:{namespace}",
            component="soma-client",
            source=self.name,
            kind=kind,
        ):
            response = yield from self._rpc.call(
                server, "query", body=body, payload_bytes=256.0, retry=self.retry
            )
        return response.body

    # -- degradation bookkeeping ------------------------------------------------

    def _close_gap(self, namespace: str) -> None:
        started = self._gap_since.pop(namespace, None)
        if started is None:
            return
        extent = self.env.now - started
        self.gaps += 1
        self.gap_seconds += extent
        self.session.tracer.record(
            "soma.gap",
            namespace,
            source=self.name,
            started=started,
            seconds=extent,
        )

    def _annotate_health(self, data: ConduitNode) -> None:
        """Fold client health into the outgoing tree.

        Only once something has gone wrong: a healthy client publishes
        byte-identical payloads with or without fault injection wired
        in, which is what the determinism regression pins down.
        """
        if self.dropped == 0 and self._rpc.retries == 0:
            return
        prefix = f"SOMA/health/{self.name}"
        data[f"{prefix}/dropped"] = self.dropped
        data[f"{prefix}/retries"] = self._rpc.retries
        data[f"{prefix}/gap_seconds"] = self.gap_seconds
        if self.degrade == "summarize" and self._degraded:
            # Cumulative summaries of refused samples, so the gap's
            # *content* (how much data was shed, not just for how long)
            # survives in the monitoring record itself.
            for namespace in sorted(self._degraded):
                summary = self._degraded[namespace]
                base = f"SOMA/degraded/{self.name}/{namespace}"
                data[f"{base}/samples"] = int(summary["samples"])
                data[f"{base}/bytes"] = summary["bytes"]

    @property
    def retries(self) -> int:
        """Publish/query attempts beyond the first, across all calls."""
        return self._rpc.retries

    @property
    def open_gaps(self) -> dict[str, float]:
        """Namespace → gap start time for gaps still open."""
        return dict(self._gap_since)

    @property
    def mean_rtt(self) -> float:
        return self._rpc.mean_rtt
