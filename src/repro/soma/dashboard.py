"""A text dashboard over a live SOMA deployment.

"Once in SOMA's possession, the data gathered can be processed and
analyzed online" (paper Sec 6).  This module renders a point-in-time
snapshot of all namespaces — the kind of view OSU INAM exposes as a
web dashboard (Sec 5) — as plain text, either offline after a run or
online from inside a simulation process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..analysis.report import render_table, sparkline
from .analysis import (
    cpu_utilization_series,
    task_throughput,
    workflow_summary_series,
)
from .namespaces import APPLICATION, HARDWARE, PERFORMANCE, WORKFLOW

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .integration import SomaDeployment

__all__ = ["render_dashboard"]


def _workflow_panel(deployment: "SomaDeployment") -> str:
    store = deployment.service_model.stores.get(WORKFLOW)
    if store is None or len(store) == 0:
        return "workflow: (no data)"
    series = workflow_summary_series(store)
    if not series:
        return "workflow: (no summaries yet)"
    last = series[-1]
    lines = [
        "workflow namespace "
        f"({len(store)} publishes, {store.total_bytes / 1024:.1f} KiB)",
        f"  t={last['time']:.0f}s  done={last.get('done', 0):.0f}  "
        f"running={last.get('running', 0):.0f}  "
        f"pending={last.get('pending', 0):.0f}  "
        f"failed={last.get('failed', 0):.0f}",
    ]
    rates = task_throughput(store)
    if rates:
        lines.append(
            "  throughput: "
            + sparkline([r for _, r in rates])
            + f"  (latest {rates[-1][1]:.3f} tasks/s)"
        )
    return "\n".join(lines)


def _hardware_panel(deployment: "SomaDeployment", max_hosts: int) -> str:
    store = deployment.service_model.stores.get(HARDWARE)
    if store is None or len(store) == 0:
        return "hardware: (no data)"
    series = cpu_utilization_series(store)
    lines = [
        "hardware namespace "
        f"({len(store)} publishes from {len(series)} nodes)"
    ]
    for host in sorted(series)[:max_hosts]:
        points = series[host]
        cpu = sparkline(
            [p.cpu_utilization for p in points], lo=0.0, hi=1.0
        )
        last = points[-1]
        lines.append(
            f"  {host} cpu {cpu} {last.cpu_utilization:4.0%}"
            f"  gpu {last.gpu_utilization:4.0%}"
        )
    if len(series) > max_hosts:
        lines.append(f"  ... {len(series) - max_hosts} more nodes")
    return "\n".join(lines)


def _performance_panel(deployment: "SomaDeployment") -> str:
    store = deployment.service_model.stores.get(PERFORMANCE)
    if store is None or len(store) == 0:
        return "performance: (no data)"
    merged = store.merged()
    if "TAU" not in merged:
        return "performance: (no TAU profiles)"
    rows = []
    for task_uid, task_node in list(merged["TAU"].children())[:6]:
        mpi = 0.0
        compute = 0.0
        ranks = 0
        for _host, host_node in task_node.children():
            for _rank, rank_node in host_node.children():
                ranks += 1
                for region, leaf in rank_node.children():
                    if not leaf.is_leaf:
                        continue
                    if region.startswith("MPI_"):
                        mpi += float(leaf.value)
                    else:
                        compute += float(leaf.value)
        total = mpi + compute
        rows.append(
            [
                task_uid,
                ranks,
                f"{compute:.0f}",
                f"{mpi:.0f}",
                f"{(mpi / total * 100) if total else 0:.0f}%",
            ]
        )
    return render_table(
        ["task", "ranks", "compute (s)", "MPI (s)", "MPI share"],
        rows,
        title=f"performance namespace ({len(store)} profiles)",
    )


def _application_panel(deployment: "SomaDeployment") -> str:
    store = deployment.service_model.stores.get(APPLICATION)
    if store is None or len(store) == 0:
        return "application: (no data)"
    merged = store.merged()
    if "APP" not in merged:
        return "application: (no figures of merit)"
    rows = []
    for task_uid, task_node in list(merged["APP"].children())[:8]:
        for metric, metric_node in task_node.children():
            values = [
                float(sample["value"])
                for _seq, sample in metric_node.children()
                if "value" in sample
            ]
            if values:
                rows.append(
                    [task_uid, metric, len(values), f"{np.mean(values):.3g}"]
                )
    return render_table(
        ["task", "metric", "samples", "mean"],
        rows,
        title=f"application namespace ({len(store)} publishes)",
    )


def render_dashboard(
    deployment: "SomaDeployment", max_hosts: int = 8
) -> str:
    """One point-in-time text dashboard over every namespace."""
    if not deployment.enabled:
        return "SOMA not deployed (baseline run)"
    now = deployment.session.env.now
    panels = [f"=== SOMA dashboard @ t={now:.1f}s ==="]
    config = deployment.config
    panels.append(
        f"service: {len(config.namespaces)} namespaces x "
        f"{config.ranks_per_namespace} rank(s), publishing every "
        f"{config.monitoring_frequency:.0f}s"
    )
    for namespace in config.namespaces:
        if namespace == WORKFLOW:
            panels.append(_workflow_panel(deployment))
        elif namespace == HARDWARE:
            panels.append(_hardware_panel(deployment, max_hosts))
        elif namespace == PERFORMANCE:
            panels.append(_performance_panel(deployment))
        elif namespace == APPLICATION:
            panels.append(_application_panel(deployment))
    return "\n\n".join(panels)
