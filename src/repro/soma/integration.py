"""RP–SOMA integration (the paper's novel contribution, Sec 2.3).

Wires a SOMA deployment into a running RP pilot following the timeline
of Fig 2:

1. the SOMA service task is scheduled first (on the service/agent
   nodes) and publishes its RPC addresses;
2. the RP monitoring client is scheduled, one per workflow, co-located
   with the RP agent;
3. hardware monitoring clients are scheduled, one per compute node, on
   a reserved core each;
4. only then should the caller submit application tasks (optionally
   wrapped with the TAU plugin for the performance namespace).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..monitors.hardware_monitor import (
    HardwareMonitorModel,
    hardware_monitor_descriptions,
)
from ..monitors.rp_monitor import RPMonitorModel, rp_monitor_description
from ..monitors.tau import TAUWrappedModel
from ..rp.description import TaskDescription
from ..rp.task import Task
from ..sim.core import Event
from .service import SomaConfig, SomaServiceModel, soma_service_description

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..rp.client import Client
    from ..rp.pilot import Pilot
    from ..rp.session import Session

__all__ = ["SomaDeployment", "deploy_soma"]


class SomaDeployment:
    """Handles to everything a deployed SOMA stack consists of."""

    def __init__(
        self,
        session: "Session",
        config: SomaConfig,
        service_task: Task | None,
        service_model: SomaServiceModel | None,
        rp_monitor_task: Task | None,
        hw_monitor_tasks: list[Task],
    ) -> None:
        self.session = session
        self.config = config
        self.service_task = service_task
        self.service_model = service_model
        self.rp_monitor_task = rp_monitor_task
        self.hw_monitor_tasks = hw_monitor_tasks

    @property
    def enabled(self) -> bool:
        return self.service_model is not None

    @property
    def rp_monitor_model(self) -> RPMonitorModel | None:
        if self.rp_monitor_task is None:
            return None
        return self.rp_monitor_task.description.metadata["monitor_model"]

    def hw_monitor_models(self) -> list[HardwareMonitorModel]:
        return [
            t.description.metadata["monitor_model"] for t in self.hw_monitor_tasks
        ]

    def wrap_with_tau(self, description: TaskDescription) -> TaskDescription:
        """Wrap an application task with the TAU plugin (performance ns)."""
        if description.model is None:
            raise ValueError(f"{description.name}: no model to wrap")
        description.model = TAUWrappedModel(
            self.session, self.config, description.model
        )
        return description

    def wrap_with_app_metrics(
        self, description: TaskDescription
    ) -> TaskDescription:
        """Instrument a task with SOMA's application API (application
        namespace): the model gets an ``ApplicationMetrics`` handle and
        its figures of merit are published at task end."""
        from .application import InstrumentedModel

        if description.model is None:
            raise ValueError(f"{description.name}: no model to wrap")
        description.model = InstrumentedModel(
            self.session, self.config, description.model
        )
        return description

    def store(self, namespace: str):
        """Offline access to a namespace store after the run."""
        if self.service_model is None:
            raise RuntimeError("SOMA not deployed (baseline run)")
        return self.service_model.store(namespace)


def deploy_soma(
    client: "Client",
    pilot: "Pilot",
    config: SomaConfig,
) -> Generator[Event, None, SomaDeployment]:
    """Deploy the SOMA stack onto an active pilot (process generator).

    Submits the service task, waits for its instances to publish their
    RPC addresses, then submits the monitoring clients per ``config``.
    """
    session = client.session
    env = session.env

    # Step 3 (Fig 2): the SOMA service, before anything else.
    service_td = soma_service_description(session, config)
    (service_task,) = client.submit_tasks([service_td])
    service_model: SomaServiceModel = service_td.metadata["soma_model"]

    # Wait until every namespace instance is reachable.  A sharded
    # deployment registers instance-qualified names; wait for all of
    # them so clients never race the slowest shard's bring-up.
    if config.sharded:
        names = [
            f"{config.registry_prefix}.{instance}.{namespace}"
            for instance in config.instance_names
            for namespace in config.namespaces
        ]
    else:
        names = [
            f"{config.registry_prefix}.{namespace}"
            for namespace in config.namespaces
        ]
    for name in names:
        yield from session.rpc_registry.lookup(name)

    # Step 4: the RP monitoring client, one per workflow, on the agent
    # node.
    rp_monitor_task = None
    if "rp" in config.monitors:
        (rp_monitor_task,) = client.submit_tasks(
            [rp_monitor_description(session, config)]
        )

    # Step 5: one hardware monitor per compute node (+ shared service
    # nodes, which also host application work in shared mode).
    hw_tasks: list[Task] = []
    if "proc" in config.monitors:
        nodes = list(pilot.compute_nodes)
        if pilot.description.share_service_nodes:
            nodes += list(pilot.service_nodes)
        hw_tasks = client.submit_tasks(
            hardware_monitor_descriptions(session, config, nodes)
        )

    session.tracer.record(
        "soma.deployed",
        "stack",
        namespaces=list(config.namespaces),
        monitors=list(config.monitors),
        frequency=config.monitoring_frequency,
    )
    return SomaDeployment(
        session=session,
        config=config,
        service_task=service_task,
        service_model=service_model,
        rp_monitor_task=rp_monitor_task,
        hw_monitor_tasks=hw_tasks,
    )


def no_soma(session: "Session") -> SomaDeployment:
    """A disabled deployment for baseline ("none") runs."""
    return SomaDeployment(
        session=session,
        config=SomaConfig(monitors=()),
        service_task=None,
        service_model=None,
        rp_monitor_task=None,
        hw_monitor_tasks=[],
    )
