"""SOMA's four monitoring namespaces (paper Sec 2.3.2).

Monitoring data is divided into *workflow*, *hardware*, *performance*
and *application* namespaces; the service task's N ranks are divided
among per-namespace instances, each serving the compute and storage
needs of one source.
"""

from __future__ import annotations

__all__ = [
    "WORKFLOW",
    "HARDWARE",
    "PERFORMANCE",
    "APPLICATION",
    "ALL_NAMESPACES",
    "namespace_root",
]

WORKFLOW = "workflow"
HARDWARE = "hardware"
PERFORMANCE = "performance"
APPLICATION = "application"

ALL_NAMESPACES: tuple[str, ...] = (WORKFLOW, HARDWARE, PERFORMANCE, APPLICATION)

#: Top-level Conduit path per namespace (Listings 1 and 2 use RP / PROC).
_ROOTS = {
    WORKFLOW: "RP",
    HARDWARE: "PROC",
    PERFORMANCE: "TAU",
    APPLICATION: "APP",
}


def namespace_root(namespace: str) -> str:
    """The top-level Conduit node name for ``namespace``."""
    try:
        return _ROOTS[namespace]
    except KeyError:
        raise ValueError(f"unknown namespace {namespace!r}") from None
