"""The SOMA service: per-namespace instances behind Mochi-style RPC.

SOMA "enables the partitioning of monitoring service resources into one
or more independent instances, each of which is responsible for
monitoring data from one source" (paper Sec 2.2).  The service runs as
an RP *service task*: scheduled before any application task, resident
for the whole workflow, shut down by RP at the end.

``SomaServiceModel`` is the :class:`~repro.rp.model.ServiceModel` RP
executes; its ``setup`` brings up one RPC server per namespace (with
the configured number of ranks each) and publishes their addresses in
the session's RPC registry so clients can connect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..conduit import Node as ConduitNode
from ..messaging.rpc import RPCRequest, RPCServer
from ..rp.description import TaskDescription, TaskMode
from ..rp.model import ExecutionContext, ServiceModel
from .namespaces import ALL_NAMESPACES
from .storage import NamespaceStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.retry import RetryPolicy
    from ..rp.session import Session

__all__ = ["SomaConfig", "SomaServiceModel", "soma_service_description"]


@dataclass(frozen=True, slots=True)
class SomaConfig:
    """Configuration of one SOMA deployment."""

    #: Service ranks per namespace instance (paper Tables 1-2).
    ranks_per_namespace: int = 1
    #: Namespaces to bring up.
    namespaces: tuple[str, ...] = ALL_NAMESPACES
    #: Monitoring/publication period in seconds (60 in most paper
    #: experiments; 10 in the "frequent" Scaling B runs).
    monitoring_frequency: float = 60.0
    #: Which monitor clients to deploy (proc / rp / tau).
    monitors: tuple[str, ...] = ("proc", "rp")
    #: Hardware-monitor sampling period, if different (Fig 7 uses 30 s).
    hardware_frequency: float | None = None
    #: Per-call CPU service time parameters of the instance servers.
    base_service_time: float = 2e-4
    per_byte_service_time: float = 2e-9
    #: Registry name prefix; clients look up "<prefix>.<namespace>".
    registry_prefix: str = "soma"
    #: Retry policy handed to every monitor's SOMA client (None = each
    #: publish is a single attempt, as in the failure-free paper runs).
    retry: "RetryPolicy | None" = None

    @property
    def effective_hardware_frequency(self) -> float:
        return (
            self.hardware_frequency
            if self.hardware_frequency is not None
            else self.monitoring_frequency
        )

    @property
    def total_ranks(self) -> int:
        return self.ranks_per_namespace * len(self.namespaces)

    def with_updates(self, **kwargs: Any) -> "SomaConfig":
        return replace(self, **kwargs)


class SomaServiceModel(ServiceModel):
    """The long-running SOMA service task."""

    def __init__(self, session: "Session", config: SomaConfig) -> None:
        self.session = session
        self.config = config
        # Namespace maps are written by the service process and read by
        # every monitor/client process; opted in to the kernel's
        # write-between-yields race detection under sanitize=True.
        env = session.env
        self.servers: "dict[str, RPCServer]" = env.shared_dict("soma.servers")
        self.stores: "dict[str, NamespaceStore]" = env.shared_dict("soma.stores")
        for ns in config.namespaces:
            self.stores[ns] = NamespaceStore(ns)
        self.publishes = 0
        self.started_at: float | None = None

    # -- RP service lifecycle -----------------------------------------------

    def setup(self, ctx: ExecutionContext):
        """Bring up one RPC server per namespace on our node(s)."""
        self.started_at = ctx.env.now
        for i, namespace in enumerate(self.config.namespaces):
            # Namespace instances are spread round-robin over the
            # service task's nodes.
            node = ctx.placements[i % len(ctx.placements)].node
            server = RPCServer(
                env=ctx.env,
                network=ctx.network,
                node=node,
                name=f"{self.config.registry_prefix}.{namespace}",
                ranks=self.config.ranks_per_namespace,
                base_service_time=self.config.base_service_time,
                per_byte_service_time=self.config.per_byte_service_time,
                component="soma-service",
            )
            server.register("publish", self._make_publish_handler(namespace))
            server.register("query", self._make_query_handler(namespace))
            self.servers[namespace] = server
            self.session.rpc_registry.publish(server)
            self.session.tracer.record(
                "soma.instance",
                namespace,
                node=node.name,
                ranks=self.config.ranks_per_namespace,
            )
        return
        yield  # pragma: no cover - setup is synchronous here

    def teardown(self, ctx: ExecutionContext) -> None:
        for server in self.servers.values():
            server.shutdown()
        self.session.tracer.record("soma.service", "teardown")

    # -- handlers ---------------------------------------------------------------

    def _make_publish_handler(self, namespace: str):
        store = self.stores[namespace]

        def handle(request: RPCRequest) -> dict[str, Any]:
            data = request.body
            if not isinstance(data, ConduitNode):
                raise TypeError(
                    f"publish to {namespace!r} expects a Conduit Node, "
                    f"got {type(data).__name__}"
                )
            record = store.append(
                time=self.session.env.now, source=request.client, data=data
            )
            self.publishes += 1
            # Storage-layer visibility: lands on the active rpc.serve
            # span (the handler runs inside the server's span).
            self.session.telemetry.event(
                "soma.store.append",
                namespace=namespace,
                nbytes=record.nbytes,
                records=len(store),
            )
            self.session.tracer.record(
                "soma.publish",
                namespace,
                source=request.client,
                nbytes=record.nbytes,
            )
            return {"stored": True, "nbytes": record.nbytes}

        return handle

    def _make_query_handler(self, namespace: str):
        store = self.stores[namespace]

        def handle(request: RPCRequest) -> Any:
            body = request.body or {}
            kind = body.get("kind", "records")
            since = body.get("since")
            until = body.get("until")
            source = body.get("source")
            if kind == "records":
                return store.records(source=source, since=since, until=until)
            if kind == "latest":
                return store.latest(source=source)
            if kind == "merged":
                return store.merged(since=since, until=until)
            if kind == "sources":
                return sorted(store.sources())
            if kind == "stats":
                return {
                    "records": len(store),
                    "bytes": store.total_bytes,
                    "sources": len(store.sources()),
                }
            raise ValueError(f"unknown query kind {kind!r}")

        return handle

    # -- offline access (after the run) ---------------------------------------------

    def store(self, namespace: str) -> NamespaceStore:
        return self.stores[namespace]


def soma_service_description(
    session: "Session",
    config: SomaConfig,
    ranks: int | None = None,
) -> TaskDescription:
    """The RP task description for the SOMA service task.

    The service task "can specify its resource requirements like any
    other regular RP application task" (Sec 2.3.1): one core per
    service rank, spreading over multiple service nodes when the rank
    count exceeds one node (Scaling B runs up to 1024 ranks).
    """
    model = SomaServiceModel(session, config)
    return TaskDescription(
        name="soma-service",
        model=model,
        ranks=ranks if ranks is not None else config.total_ranks,
        cores_per_rank=1,
        mode=TaskMode.SERVICE,
        multi_node=True,
        metadata={"soma_model": model},
    )
