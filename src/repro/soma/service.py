"""The SOMA service: per-namespace instances behind Mochi-style RPC.

SOMA "enables the partitioning of monitoring service resources into one
or more independent instances, each of which is responsible for
monitoring data from one source" (paper Sec 2.2).  The service runs as
an RP *service task*: scheduled before any application task, resident
for the whole workflow, shut down by RP at the end.

``SomaServiceModel`` is the :class:`~repro.rp.model.ServiceModel` RP
executes; its ``setup`` brings up one RPC server per namespace (with
the configured number of ranks each) and publishes their addresses in
the session's RPC registry so clients can connect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..conduit import Node as ConduitNode
from ..messaging.rpc import RPCRequest, RPCServer
from ..rp.description import TaskDescription, TaskMode
from ..rp.model import ExecutionContext, ServiceModel
from .namespaces import ALL_NAMESPACES
from .sharding import (
    DEFAULT_VNODES,
    AdmissionController,
    HashRing,
    ShardRouter,
    instance_names,
    shard_key,
)
from .storage import NamespaceStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.retry import RetryPolicy
    from ..platform.network import Network
    from ..platform.node import Node
    from ..rp.session import Session
    from .client import SomaClient

__all__ = [
    "ShardedSomaServiceModel",
    "SomaConfig",
    "SomaServiceModel",
    "soma_service_description",
]


@dataclass(frozen=True, slots=True)
class SomaConfig:
    """Configuration of one SOMA deployment."""

    #: Service ranks per namespace instance (paper Tables 1-2).
    ranks_per_namespace: int = 1
    #: Namespaces to bring up.
    namespaces: tuple[str, ...] = ALL_NAMESPACES
    #: Monitoring/publication period in seconds (60 in most paper
    #: experiments; 10 in the "frequent" Scaling B runs).
    monitoring_frequency: float = 60.0
    #: Which monitor clients to deploy (proc / rp / tau).
    monitors: tuple[str, ...] = ("proc", "rp")
    #: Hardware-monitor sampling period, if different (Fig 7 uses 30 s).
    hardware_frequency: float | None = None
    #: Per-call CPU service time parameters of the instance servers.
    base_service_time: float = 2e-4
    per_byte_service_time: float = 2e-9
    #: Registry name prefix; clients look up "<prefix>.<namespace>"
    #: (single instance) or "<prefix>.<instance>.<namespace>" (sharded).
    registry_prefix: str = "soma"
    #: Retry policy handed to every monitor's SOMA client (None = each
    #: publish is a single attempt, as in the failure-free paper runs).
    retry: "RetryPolicy | None" = None
    #: Shard-instance count for a facility deployment; 0 keeps the
    #: classic single-instance service the paper describes.
    shards: int = 0
    #: Virtual nodes per shard instance on the consistent-hash ring.
    ring_vnodes: int = DEFAULT_VNODES
    #: Tenant this deployment's own clients publish as (facility runs
    #: override per pilot via :meth:`make_client`).
    tenant: str = "default"
    #: Per-tenant publish budget, tokens/second, enforced per shard
    #: instance; None disables admission control (the differential
    #: battery requires the disabled path to be byte-identical to the
    #: unsharded service).
    admission_rate: float | None = None
    #: Token-bucket depth: how large a publish burst a quiet tenant
    #: may land before the rate limit bites.
    admission_burst: float = 10.0

    @property
    def effective_hardware_frequency(self) -> float:
        return (
            self.hardware_frequency
            if self.hardware_frequency is not None
            else self.monitoring_frequency
        )

    @property
    def sharded(self) -> bool:
        return self.shards > 0

    @property
    def instance_names(self) -> tuple[str, ...]:
        return instance_names(self.shards) if self.sharded else ()

    @property
    def total_ranks(self) -> int:
        return self.ranks_per_namespace * len(self.namespaces) * max(
            1, self.shards
        )

    def make_ring(self) -> HashRing:
        if not self.sharded:
            raise ValueError("single-instance SOMA config has no ring")
        return HashRing(self.instance_names, vnodes=self.ring_vnodes)

    def make_router(self) -> ShardRouter:
        """The client-side router matching this deployment's layout."""
        ring = self.make_ring() if self.sharded else None
        return ShardRouter(registry_prefix=self.registry_prefix, ring=ring)

    def make_client(
        self,
        session: "Session",
        name: str,
        node: "Node | None" = None,
        tenant: str | None = None,
    ) -> "SomaClient":
        """A SOMA client wired for this deployment (routing + tenancy).

        Every monitor and application stub should obtain its client
        here so sharding and tenancy stay deployment-side decisions.
        """
        from .client import SomaClient

        return SomaClient(
            session,
            name=name,
            node=node,
            registry_prefix=self.registry_prefix,
            retry=self.retry,
            tenant=tenant if tenant is not None else self.tenant,
            router=self.make_router(),
        )

    def with_updates(self, **kwargs: Any) -> "SomaConfig":
        return replace(self, **kwargs)


class SomaServiceModel(ServiceModel):
    """The long-running SOMA service task."""

    def __init__(self, session: "Session", config: SomaConfig) -> None:
        self.session = session
        self.config = config
        # Namespace maps are written by the service process and read by
        # every monitor/client process; opted in to the kernel's
        # write-between-yields race detection under sanitize=True.
        env = session.env
        self.servers: "dict[str, RPCServer]" = env.shared_dict("soma.servers")
        self.stores: "dict[str, NamespaceStore]" = env.shared_dict("soma.stores")
        prov = getattr(session.telemetry, "provenance", None)
        for ns in config.namespaces:
            store = NamespaceStore(ns)
            if prov is not None:
                prov.watch_store(store, name=ns)
            self.stores[ns] = store
        self.publishes = 0
        self.started_at: float | None = None

    # -- RP service lifecycle -----------------------------------------------

    def setup(self, ctx: ExecutionContext):
        """Bring up one RPC server per namespace on our node(s)."""
        self.started_at = ctx.env.now
        for i, namespace in enumerate(self.config.namespaces):
            # Namespace instances are spread round-robin over the
            # service task's nodes.
            node = ctx.placements[i % len(ctx.placements)].node
            server = RPCServer(
                env=ctx.env,
                network=ctx.network,
                node=node,
                name=f"{self.config.registry_prefix}.{namespace}",
                ranks=self.config.ranks_per_namespace,
                base_service_time=self.config.base_service_time,
                per_byte_service_time=self.config.per_byte_service_time,
                component="soma-service",
            )
            store = self.stores[namespace]
            server.register(
                "publish", self._make_publish_handler(namespace, store)
            )
            server.register(
                "query", self._make_query_handler(namespace, store)
            )
            self.servers[namespace] = server
            self.session.rpc_registry.publish(server)
            self.session.tracer.record(
                "soma.instance",
                namespace,
                node=node.name,
                ranks=self.config.ranks_per_namespace,
            )
        return
        yield  # pragma: no cover - setup is synchronous here

    def teardown(self, ctx: ExecutionContext) -> None:
        for server in self.servers.values():
            server.shutdown()
        self.session.tracer.record("soma.service", "teardown")

    # -- handlers ---------------------------------------------------------------

    def _make_publish_handler(self, namespace: str, store: NamespaceStore):
        def handle(request: RPCRequest) -> dict[str, Any]:
            data = request.body
            if not isinstance(data, ConduitNode):
                raise TypeError(
                    f"publish to {namespace!r} expects a Conduit Node, "
                    f"got {type(data).__name__}"
                )
            record = store.append(
                time=self.session.env.now, source=request.client, data=data
            )
            self.publishes += 1
            # Storage-layer visibility: lands on the active rpc.serve
            # span (the handler runs inside the server's span).
            self.session.telemetry.event(
                "soma.store.append",
                namespace=namespace,
                nbytes=record.nbytes,
                records=len(store),
            )
            self.session.tracer.record(
                "soma.publish",
                namespace,
                source=request.client,
                nbytes=record.nbytes,
            )
            return {"stored": True, "nbytes": record.nbytes}

        return handle

    def _make_query_handler(self, namespace: str, store: NamespaceStore):
        def handle(request: RPCRequest) -> Any:
            body = request.body or {}
            kind = body.get("kind", "records")
            since = body.get("since")
            until = body.get("until")
            source = body.get("source")
            if kind == "records":
                return store.records(source=source, since=since, until=until)
            if kind == "latest":
                return store.latest(source=source)
            if kind == "merged":
                return store.merged(source=source, since=since, until=until)
            if kind == "sources":
                return sorted(store.sources())
            if kind == "stats":
                return {
                    "records": len(store),
                    "bytes": store.total_bytes,
                    "sources": len(store.sources()),
                }
            raise ValueError(f"unknown query kind {kind!r}")

        return handle

    # -- observability ---------------------------------------------------------

    def queue_stats(self) -> dict[str, dict[str, float]]:
        """Per-server ingest statistics, detector-ready.

        Keys match the server map (namespace, or instance.namespace
        when sharded); values are the plain-data shape
        :class:`~repro.analysis.bottleneck.DetectionContext` consumes,
        including the windowed burst peak so long quiet runs cannot
        dilute a saturation episode out of sight.
        """
        stats: dict[str, dict[str, float]] = {}
        for name, server in sorted(self.servers.items()):
            s = server.stats
            stats[name] = {
                "ranks": server.ranks,
                "calls": s.calls,
                "errors": s.errors,
                "rejections": s.rejections,
                "mean_queue_seconds": s.mean_queue_time,
                "peak_window_queue_seconds": s.worst_window_queue_time,
                "busy_seconds": s.busy_time,
            }
        return stats

    # -- offline access (after the run) ---------------------------------------------

    def store(self, namespace: str) -> NamespaceStore:
        return self.stores[namespace]


class ShardedSomaServiceModel(SomaServiceModel):
    """N independent SOMA instances behind one consistent-hash ring.

    Instance ``s<i>`` runs the full namespace set (its own stores and
    RPC servers, registry names ``<prefix>.<instance>.<namespace>``)
    and lands on ``nodes[i % len(nodes)]`` — distinct nodes when the
    deployment has them, co-located when it does not (the differential
    battery uses a single service node so sharded and single-instance
    runs see identical network/CPU contention).

    Routing lives entirely client-side (:class:`ShardRouter`); the
    instances never talk to each other, so a shard outage is contained
    by construction — the chaos battery pins that.
    """

    def __init__(self, session: "Session", config: SomaConfig) -> None:
        if not config.sharded:
            raise ValueError("ShardedSomaServiceModel needs config.shards > 0")
        self.session = session
        self.config = config
        env = session.env
        self.servers: "dict[str, RPCServer]" = env.shared_dict("soma.servers")
        self.stores: "dict[str, NamespaceStore]" = env.shared_dict("soma.stores")
        self.ring = config.make_ring()
        #: Per-instance admission controllers (empty when disabled).
        self.admission: dict[str, AdmissionController] = {}
        prov = getattr(session.telemetry, "provenance", None)
        for instance in config.instance_names:
            for ns in config.namespaces:
                store = NamespaceStore(ns)
                if prov is not None:
                    prov.watch_store(store, name=f"{instance}.{ns}")
                self.stores[f"{instance}.{ns}"] = store
        self.publishes = 0
        self.started_at: float | None = None

    def bring_up(self, nodes: "list[Node]", network: "Network") -> None:
        """Start every instance's servers; callable without RP machinery.

        The facility scenario boots the service directly on a node
        list; the RP service-task path (:meth:`setup`) funnels through
        here too so both deployments share one layout.
        """
        env = self.session.env
        self.started_at = env.now
        for i, instance in enumerate(self.config.instance_names):
            node = nodes[i % len(nodes)]
            controller = None
            if self.config.admission_rate is not None:
                controller = AdmissionController(
                    env,
                    rate=self.config.admission_rate,
                    burst=self.config.admission_burst,
                )
                self.admission[instance] = controller
            for namespace in self.config.namespaces:
                key = f"{instance}.{namespace}"
                server = RPCServer(
                    env=env,
                    network=network,
                    node=node,
                    name=f"{self.config.registry_prefix}.{key}",
                    ranks=self.config.ranks_per_namespace,
                    base_service_time=self.config.base_service_time,
                    per_byte_service_time=self.config.per_byte_service_time,
                    component="soma-service",
                    admission=controller,
                )
                store = self.stores[key]
                server.register(
                    "publish", self._make_publish_handler(namespace, store)
                )
                server.register(
                    "query", self._make_query_handler(namespace, store)
                )
                self.servers[key] = server
                self.session.rpc_registry.publish(server)
                self.session.tracer.record(
                    "soma.instance",
                    key,
                    node=node.name,
                    ranks=self.config.ranks_per_namespace,
                )

    def setup(self, ctx: ExecutionContext):
        """RP service-task entry: spread instances over distinct nodes."""
        nodes: "list[Node]" = []
        for placement in ctx.placements:
            if placement.node not in nodes:
                nodes.append(placement.node)
        self.bring_up(nodes, ctx.network)
        return
        yield  # pragma: no cover - setup is synchronous here

    # -- observability ---------------------------------------------------------

    def admission_counters(self) -> dict[str, dict[str, dict[str, int]]]:
        """Per-instance, per-tenant admitted/rejected counts."""
        return {
            instance: controller.counters()
            for instance, controller in sorted(self.admission.items())
        }

    # -- offline access (after the run) ---------------------------------------------

    def store(self, namespace: str, tenant: str | None = None) -> NamespaceStore:
        """The store owning ``(tenant, namespace)`` per the ring."""
        tenant = tenant if tenant is not None else self.config.tenant
        owner = self.ring.owner(shard_key(tenant, namespace))
        return self.stores[f"{owner}.{namespace}"]

    def stores_for(self, namespace: str) -> dict[str, NamespaceStore]:
        """Every instance's store for ``namespace`` (facility counts)."""
        return {
            instance: self.stores[f"{instance}.{namespace}"]
            for instance in self.config.instance_names
        }


def soma_service_description(
    session: "Session",
    config: SomaConfig,
    ranks: int | None = None,
) -> TaskDescription:
    """The RP task description for the SOMA service task.

    The service task "can specify its resource requirements like any
    other regular RP application task" (Sec 2.3.1): one core per
    service rank, spreading over multiple service nodes when the rank
    count exceeds one node (Scaling B runs up to 1024 ranks).

    A sharded config (``config.shards > 0``) yields the facility-style
    :class:`ShardedSomaServiceModel` instead of the classic single
    instance; the task shape is otherwise identical.
    """
    model: SomaServiceModel = (
        ShardedSomaServiceModel(session, config)
        if config.sharded
        else SomaServiceModel(session, config)
    )
    return TaskDescription(
        name="soma-service",
        model=model,
        ranks=ranks if ranks is not None else config.total_ranks,
        cores_per_rank=1,
        mode=TaskMode.SERVICE,
        multi_node=True,
        metadata={"soma_model": model},
    )
