"""Consistent-hash sharding and tenancy for the SOMA facility service.

The paper deploys SOMA per workflow: one service instance, one set of
namespace ranks.  A facility deployment shares *one* SOMA service
across hundreds of concurrent pilots, which needs three things this
module provides:

* :class:`HashRing` — a consistent-hash ring with virtual nodes
  mapping ``(tenant, namespace)`` shard keys to service instances.
  Positions come from BLAKE2b over the vnode label, so placement is
  identical across processes, seeds, and ``PYTHONHASHSEED`` values,
  and adding/removing an instance only remaps the keys owned by the
  moved vnode arcs (minimal-remap property, pinned by tests).
* :class:`AdmissionController` — per-tenant token buckets gating the
  publish ingest path.  Refill is pure arithmetic on the simulated
  clock (no kernel events), so arming admission control never
  perturbs event ordering.
* :class:`ShardRouter` — the client-side view: resolves the registry
  name of the instance that owns a given ``(tenant, namespace)``.

Everything here is deliberately plain data + arithmetic: no sim
processes, no RNG, no wall clock — the sharding layer must be exactly
as deterministic as the store it fronts.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..messaging.protocol import RPCRequest
    from ..sim.core import Environment

__all__ = [
    "DEFAULT_VNODES",
    "AdmissionController",
    "HashRing",
    "ShardRouter",
    "TokenBucket",
    "instance_names",
    "shard_key",
]

#: Default virtual nodes per instance.  128 vnodes keeps the max/mean
#: shard-load ratio under ~1.25 for thousands of keys (pinned by the
#: Hypothesis balance test) while keeping ring construction trivial.
DEFAULT_VNODES = 128


def shard_key(tenant: str, namespace: str) -> str:
    """The ring key for one tenant's view of one namespace."""
    return f"{tenant}/{namespace}"


def instance_names(count: int) -> tuple[str, ...]:
    """Canonical shard-instance names: ``s00``, ``s01``, ..."""
    return tuple(f"s{i:02d}" for i in range(count))


def _position(label: str) -> int:
    """Ring position of a label: 64-bit BLAKE2b, platform-independent.

    ``hash()`` would be ``PYTHONHASHSEED``-dependent and break the
    cross-process placement contract; hashlib is stable everywhere.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each instance contributes ``vnodes`` points at
    ``blake2b("<instance>#<v>")``; a key is owned by the first vnode
    clockwise from ``blake2b(key)`` (wrapping at the top).  Lookup is
    a bisect over the sorted point list — O(log(instances·vnodes)).
    """

    def __init__(
        self, instances: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes <= 0:
            raise ValueError("ring needs at least one vnode per instance")
        self.vnodes = vnodes
        #: Sorted (position, instance) points; parallel key list for
        #: bisect (tuples would compare instances on position ties).
        self._points: list[tuple[int, str]] = []
        self._positions: list[int] = []
        self._instances: set[str] = set()
        for name in instances:
            self.add(name)

    @property
    def instances(self) -> tuple[str, ...]:
        return tuple(sorted(self._instances))

    def __len__(self) -> int:
        return len(self._instances)

    def __contains__(self, instance: str) -> bool:
        return instance in self._instances

    def _vnode_points(self, instance: str) -> list[tuple[int, str]]:
        return [
            (_position(f"{instance}#{v}"), instance)
            for v in range(self.vnodes)
        ]

    def add(self, instance: str) -> None:
        """Join an instance; only keys on its vnode arcs change owner."""
        if instance in self._instances:
            raise ValueError(f"instance {instance!r} already on the ring")
        self._instances.add(instance)
        for point in self._vnode_points(instance):
            insort(self._points, point)
        self._positions = [pos for pos, _ in self._points]

    def remove(self, instance: str) -> None:
        """Leave the ring; its keys fall to the next vnode clockwise."""
        if instance not in self._instances:
            raise ValueError(f"instance {instance!r} not on the ring")
        self._instances.discard(instance)
        self._points = [p for p in self._points if p[1] != instance]
        self._positions = [pos for pos, _ in self._points]

    def owner(self, key: str) -> str:
        """The instance owning ``key`` (first vnode clockwise)."""
        if not self._points:
            raise ValueError("ring has no instances")
        index = bisect_right(self._positions, _position(key))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def load(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys-per-instance histogram (every instance present)."""
        counts = {name: 0 for name in self._instances}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts


class TokenBucket:
    """One tenant's publish budget: ``rate`` tokens/s, depth ``burst``.

    Refill happens lazily at admission time from the elapsed simulated
    clock — no timers, no events, nothing a clean run could observe.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = 0.0

    def admit(self, now: float) -> bool:
        if now > self.last_refill:
            self.tokens = min(
                self.burst, self.tokens + (now - self.last_refill) * self.rate
            )
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-tenant token-bucket admission gate for one service instance.

    Plugged into :class:`~repro.messaging.rpc.RPCServer` as its
    ``admission`` callable.  Only ``publish`` calls are throttled —
    queries are cheap, rare, and usually analysis-side; rejecting them
    would starve the observability consumers the service exists for.
    """

    def __init__(
        self, env: "Environment", rate: float, burst: float = 10.0
    ) -> None:
        if rate <= 0:
            raise ValueError("admission rate must be positive")
        self.env = env
        self.rate = rate
        self.burst = burst
        self._buckets: dict[str, TokenBucket] = {}
        #: Per-tenant admitted / rejected counters, for queue_stats().
        self.admitted: dict[str, int] = {}
        self.rejected: dict[str, int] = {}

    def __call__(self, request: "RPCRequest") -> bool:
        if request.method != "publish":
            return True
        bucket = self._buckets.get(request.tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst)
            self._buckets[request.tenant] = bucket
        if bucket.admit(self.env.now):
            self.admitted[request.tenant] = (
                self.admitted.get(request.tenant, 0) + 1
            )
            return True
        self.rejected[request.tenant] = (
            self.rejected.get(request.tenant, 0) + 1
        )
        return False

    def counters(self) -> dict[str, dict[str, int]]:
        """Plain-data per-tenant admission counters."""
        return {
            "admitted": dict(sorted(self.admitted.items())),
            "rejected": dict(sorted(self.rejected.items())),
        }


class ShardRouter:
    """Client-side routing: ``(tenant, namespace)`` → registry name.

    A single-instance deployment routes every namespace to the classic
    ``<prefix>.<namespace>`` name (``ring=None``); a sharded one routes
    through the ring to ``<prefix>.<instance>.<namespace>``.  Clients
    hold a router instead of a ring so the unsharded path stays free
    of hashing entirely.
    """

    def __init__(
        self, registry_prefix: str = "soma", ring: HashRing | None = None
    ) -> None:
        self.registry_prefix = registry_prefix
        self.ring = ring

    def owner(self, tenant: str, namespace: str) -> str | None:
        """The owning instance name, or None when unsharded."""
        if self.ring is None:
            return None
        return self.ring.owner(shard_key(tenant, namespace))

    def registry_name(self, tenant: str, namespace: str) -> str:
        owner = self.owner(tenant, namespace)
        if owner is None:
            return f"{self.registry_prefix}.{namespace}"
        return f"{self.registry_prefix}.{owner}.{namespace}"
