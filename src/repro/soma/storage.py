"""Time-indexed storage behind each SOMA service instance.

Each namespace instance stores the Conduit trees its clients publish,
keyed by arrival time and source.  Analysis code queries these stores
online (through the service) or offline (after the run).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from ..conduit import Node

__all__ = ["PublishedRecord", "NamespaceStore"]


@dataclass(frozen=True, slots=True)
class PublishedRecord:
    """One published Conduit tree."""

    time: float
    source: str
    data: Node
    nbytes: float


class NamespaceStore:
    """Append-mostly, time-ordered store for one namespace."""

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace
        self._records: list[PublishedRecord] = []
        self._times: list[float] = []
        self.total_bytes = 0.0

    def __len__(self) -> int:
        return len(self._records)

    def append(self, time: float, source: str, data: Node) -> PublishedRecord:
        nbytes = data.nbytes()
        record = PublishedRecord(time=time, source=source, data=data, nbytes=nbytes)
        # Publishes arrive in RPC-completion order, which is time order
        # within one environment; insort keeps us safe regardless.
        if self._times and time < self._times[-1]:
            idx = bisect.bisect_right(self._times, time)
            self._times.insert(idx, time)
            self._records.insert(idx, record)
        else:
            self._times.append(time)
            self._records.append(record)
        self.total_bytes += nbytes
        return record

    # -- queries ----------------------------------------------------------

    def records(
        self,
        source: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[PublishedRecord]:
        lo = 0 if since is None else bisect.bisect_left(self._times, since)
        hi = (
            len(self._times)
            if until is None
            else bisect.bisect_right(self._times, until)
        )
        out = self._records[lo:hi]
        if source is not None:
            out = [r for r in out if r.source == source]
        return out

    def latest(self, source: str | None = None) -> PublishedRecord | None:
        if source is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.source == source:
                return record
        return None

    def sources(self) -> set[str]:
        return {r.source for r in self._records}

    def merged(
        self, since: float | None = None, until: float | None = None
    ) -> Node:
        """One Conduit tree merging every stored publish in range."""
        root = Node()
        for record in self.records(since=since, until=until):
            root.update(record.data)
        return root

    def __iter__(self) -> Iterator[PublishedRecord]:
        return iter(self._records)
