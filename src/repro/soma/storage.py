"""Time-indexed storage behind each SOMA service instance.

Each namespace instance stores the Conduit trees its clients publish,
keyed by arrival time and source.  Analysis code queries these stores
online (through the service) or offline (after the run).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from ..conduit import Node

__all__ = ["PublishedRecord", "NamespaceStore"]


@dataclass(frozen=True, slots=True)
class PublishedRecord:
    """One published Conduit tree."""

    time: float
    source: str
    data: Node
    nbytes: float


class NamespaceStore:
    """Append-mostly, time-ordered store for one namespace."""

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace
        self._records: list[PublishedRecord] = []
        self._times: list[float] = []
        #: Per-source (times, records) parallel lists, maintained on
        #: append so per-source queries never scan the whole store.
        #: Both use bisect_right on insert, so each per-source list is
        #: exactly the global list filtered to that source.
        self._by_source: dict[str, tuple[list[float], list[PublishedRecord]]] = {}
        self.total_bytes = 0.0
        #: Provenance taps (see repro.provenance.builder.watch_store).
        #: Both are plain callables fired synchronously from host code;
        #: None means nobody is watching and costs one attribute check.
        self.write_tap = None
        self.read_tap = None

    def __len__(self) -> int:
        return len(self._records)

    def append(self, time: float, source: str, data: Node) -> PublishedRecord:
        nbytes = data.nbytes()
        record = PublishedRecord(time=time, source=source, data=data, nbytes=nbytes)
        # Publishes arrive in RPC-completion order, which is time order
        # within one environment; insort keeps us safe regardless.
        if self._times and time < self._times[-1]:
            idx = bisect.bisect_right(self._times, time)
            self._times.insert(idx, time)
            self._records.insert(idx, record)
        else:
            self._times.append(time)
            self._records.append(record)
        index = self._by_source.get(source)
        if index is None:
            index = self._by_source[source] = ([], [])
        stimes, srecords = index
        if stimes and time < stimes[-1]:
            idx = bisect.bisect_right(stimes, time)
            stimes.insert(idx, time)
            srecords.insert(idx, record)
        else:
            stimes.append(time)
            srecords.append(record)
        self.total_bytes += nbytes
        if self.write_tap is not None:
            self.write_tap(record)
        return record

    # -- queries ----------------------------------------------------------

    def records(
        self,
        source: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[PublishedRecord]:
        if source is None:
            times, records = self._times, self._records
        else:
            index = self._by_source.get(source)
            if index is None:
                return []
            times, records = index
        lo = 0 if since is None else bisect.bisect_left(times, since)
        hi = len(times) if until is None else bisect.bisect_right(times, until)
        result = records[lo:hi]
        if self.read_tap is not None:
            self.read_tap("records", source, result)
        return result

    def latest(self, source: str | None = None) -> PublishedRecord | None:
        if source is None:
            record = self._records[-1] if self._records else None
        else:
            index = self._by_source.get(source)
            record = index[1][-1] if index else None
        if self.read_tap is not None:
            self.read_tap("latest", source, [record] if record else [])
        return record

    def sources(self) -> set[str]:
        return set(self._by_source)

    def merged(
        self,
        source: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> Node:
        """One Conduit tree merging stored publishes in range.

        ``source`` narrows the merge to one publisher via the
        per-source index, so inspecting a single monitor no longer
        pays for merging the whole namespace.
        """
        root = Node()
        for record in self.records(source=source, since=since, until=until):
            root.update(record.data)
        return root

    def __iter__(self) -> Iterator[PublishedRecord]:
        if self.read_tap is not None:
            self.read_tap("iter", None, self._records)
        return iter(self._records)
