"""Parallel sweep engine: sharded experiment runs with caching + resume.

The paper's evaluation is a matrix of independent runs (experiment ×
seed × configuration).  :mod:`repro.sweep` shards that matrix over a
process pool, caches each completed cell content-addressed on
``sha256(code, family, params, seed)``, journals completions one JSON
line at a time through atomic temp-file + rename writes, and resumes a
killed run without re-executing anything that finished.

The headline invariant — **sharding must not change results** — is
pinned by ``tests/sweep/test_parity.py``: ``--jobs 1/2/4`` produce
byte-identical per-cell result digests and identical merged manifests.

Entry points::

    python -m repro sweep --jobs 4                 # all artifacts
    python -m repro sweep --jobs 2 --filter 'fig*' # just the figures
    python -m repro sweep --resume                 # after a crash
"""

from .artifacts import Artifact, default_matrix
from .cache import ResultCache
from .journal import Journal, atomic_write_json, atomic_write_text
from .planner import ShardPlan, estimate_cost, plan_shards, schedule_order
from .runner import (
    SweepInterrupted,
    SweepRun,
    cells_signature,
    execute_cell,
    run_sweep,
)
from .spec import (
    CellSpec,
    SweepSpec,
    canonical_json,
    code_fingerprint,
    result_digest,
)

__all__ = [
    "Artifact",
    "CellSpec",
    "Journal",
    "ResultCache",
    "ShardPlan",
    "SweepInterrupted",
    "SweepRun",
    "SweepSpec",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_json",
    "cells_signature",
    "code_fingerprint",
    "default_matrix",
    "estimate_cost",
    "execute_cell",
    "plan_shards",
    "result_digest",
    "run_sweep",
    "schedule_order",
]
