"""The default sweep matrix and per-artifact renderers.

Every text artifact under ``benchmarks/results/`` maps to an
:class:`Artifact`: the cells whose payloads it needs, and a renderer
that merges those payloads into the exact text the corresponding bench
writes.  The benches call the same renderers on the same collected
payloads, so a sweep regeneration is byte-identical to a bench run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis.overhead import compare_runtimes
from ..analysis.report import (
    fmt,
    fmt_percent,
    render_boxes,
    render_series,
    render_table,
)
from ..experiments.ddmd_exps import (
    DDMD_ADAPTIVE_TRAIN_COUNTS,
    DDMD_TUNING_PHASES,
    SCALING_A,
    SCALING_B,
    adaptive_experiment,
    tuning_experiment,
)
from ..experiments.openfoam_exps import OVERLOAD, TUNING
from .spec import CellSpec, SweepSpec

__all__ = [
    "Artifact",
    "default_matrix",
    "fig6_trend",
    "fig11_overhead_rows",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_fig11",
    "render_table1",
    "render_table2",
    "render_adaptive",
    "render_ablation_frequency",
    "render_ablation_rank_tuning",
    "render_ablation_placement",
    "render_ablation_detection",
    "render_facility",
    "render_provenance",
]

#: Fig 11 configurations, in presentation order.
SCALING_B_CONFIGS = (
    ("none", False),
    ("shared", False),
    ("exclusive", False),
    ("shared", True),
    ("exclusive", True),
)

FREQ_ABLATION_PERIODS = (60.0, 20.0, 5.0)
PLACEMENT_SEEDS = (9, 17, 23)


@dataclass(frozen=True)
class Artifact:
    """One regenerable ``benchmarks/results/<name>.txt`` file."""

    name: str
    cells: tuple[str, ...]
    render: Callable[[dict[str, dict]], str]


# -- single-run renderers (OpenFOAM family) ----------------------------


def render_fig4(payload: dict) -> str:
    times = {int(r): v for r, v in payload["exec_times_by_ranks"].items()}
    return render_boxes(
        {f"{ranks} ranks": values for ranks, values in sorted(times.items())},
        title="Fig 4: OpenFOAM task execution time vs MPI ranks "
        "(20 instances each, overloaded run)",
    )


def render_fig5(payload: dict) -> str:
    tau = payload["tau"]
    breakdown = {int(r): regions for r, regions in tau["breakdown"].items()}
    rows = []
    for rank in sorted(breakdown):
        regions = breakdown[rank]
        compute = sum(
            v for k, v in regions.items() if not k.startswith("MPI_")
        )
        rows.append(
            [
                rank,
                f"{compute:.1f}",
                f"{regions['MPI_Recv']:.1f}",
                f"{regions['MPI_Waitall']:.1f}",
                f"{regions['MPI_Allreduce']:.1f}",
                f"{regions['MPI_Isend']:.1f}",
            ]
        )
    return render_table(
        ["rank", "compute", "MPI_Recv", "MPI_Waitall", "MPI_Allreduce",
         "MPI_Isend"],
        rows,
        title=f"Fig 5: TAU profile of {tau['task_uid']} "
        "(seconds per region per rank)",
    )


def fig6_trend(groups: dict[int, list[float]]) -> float:
    """Correlation between node count and execution time."""
    xs, ys = [], []
    for nodes, values in groups.items():
        xs.extend([nodes] * len(values))
        ys.extend(values)
    if len(set(xs)) < 2:
        return 0.0
    return float(np.corrcoef(xs, ys)[0, 1])


def fig6_spreads(payload: dict) -> dict[int, dict[int, list[float]]]:
    return {
        ranks: {
            int(n): values
            for n, values in payload["exec_times_by_spread"][str(ranks)].items()
        }
        for ranks in (20, 41)
    }


def render_fig6(payload: dict) -> str:
    sections = []
    for ranks, groups in fig6_spreads(payload).items():
        sections.append(
            render_boxes(
                {f"{n} node(s)": v for n, v in groups.items()},
                title=f"Fig 6: {ranks}-rank tasks by node spread",
            )
        )
        sections.append(
            f"trend (corr nodes vs time): {fig6_trend(groups):+.2f}"
        )
    return "\n\n".join(sections)


def render_fig7(payload: dict) -> str:
    lines = ["Fig 7: CPU utilization per compute node (30 s samples)"]
    for host, points in sorted(payload["utilization_series"].items()):
        lines.append(
            render_series(
                f"  {host}",
                [p[0] for p in points],
                [p[1] for p in points],
            )
        )
    lines.append(
        "task starts observed by the RP monitor (orange dots): "
        + ", ".join(f"{uid}@{t:.0f}s" for t, uid in payload["task_starts"])
    )
    return "\n".join(lines)


def fig8_row(payload: dict, label: str) -> list[str]:
    timeline = payload["timeline"]
    total = timeline["total_core_seconds"]
    running = timeline["running"]
    scheduling = timeline["scheduling"]
    boot = timeline["bootstrap"]
    idle = total - running - scheduling - boot
    return [
        label,
        f"{timeline['span']:.0f}",
        f"{100 * running / total:.1f}%",
        f"{100 * scheduling / total:.2f}%",
        f"{100 * boot / total:.1f}%",
        f"{100 * idle / total:.1f}%",
    ]


def render_fig8(overload: dict, tuning: dict) -> str:
    return render_table(
        ["run", "makespan (s)", "running (green)", "scheduling (purple)",
         "bootstrap (blue)", "idle (white)"],
        [fig8_row(overload, "overload (top)"), fig8_row(tuning, "tuning (bottom)")],
        title="Fig 8: RP resource utilization of the compute nodes",
    )


def render_table1() -> str:
    rows = []
    for exp in (TUNING, OVERLOAD):
        rows.append(
            [
                exp.name,
                exp.num_tasks,
                f"{exp.compute_nodes} (+{exp.agent_nodes})",
                ",".join(str(r) for r in exp.rank_configs),
                "proc, rp, tau" if exp.use_tau else ",".join(exp.monitors),
                exp.soma_ranks_per_namespace,
            ]
        )
    return render_table(
        [
            "Experiment",
            "Number of Tasks",
            "Number of Nodes",
            "MPI Ranks",
            "Monitors",
            "SOMA Ranks/Namespace",
        ],
        rows,
        title="Table 1: OpenFOAM Experiment Summary",
    )


# -- single-run renderers (DDMD family) --------------------------------


def fig9_phase_rows(payload: dict) -> list[list]:
    series = payload["utilization_series"]
    rows = []
    boundaries = [0.0] + list(payload["phase_ends"])
    for phase, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        samples = [
            p[1]
            for points in series.values()
            for p in points
            if lo < p[0] <= hi
        ]
        gpu_samples = [
            p[2]
            for points in series.values()
            for p in points
            if lo < p[0] <= hi
        ]
        cfg = DDMD_TUNING_PHASES[phase]
        rows.append(
            [
                phase,
                cfg["cores_per_sim_task"],
                cfg["cores_per_train_task"],
                f"{np.mean(samples):.3f}" if samples else "-",
                f"{np.mean(gpu_samples):.3f}" if gpu_samples else "-",
            ]
        )
    return rows


def render_fig9(payload: dict) -> str:
    lines = ["Fig 9: DDMD tuning, CPU utilization per app node"]
    for host, points in sorted(payload["utilization_series"].items()):
        lines.append(
            render_series(
                f"  {host}",
                [p[0] for p in points],
                [p[1] for p in points],
            )
        )
    lines.append(
        render_table(
            ["phase", "cores/sim", "cores/train", "mean CPU util",
             "mean GPU util"],
            fig9_phase_rows(payload),
        )
    )
    return "\n".join(lines)


def render_table2() -> str:
    tuning = tuning_experiment()
    adaptive = adaptive_experiment()
    rows = [
        [
            "Tuning",
            tuning.phases,
            tuning.pipelines,
            tuning.app_nodes,
            tuning.soma_nodes,
            "1,3,7",
            "1",
            "1,3,7",
            tuning.soma_config().total_ranks,
            f"{tuning.monitoring_frequency:.0f}",
        ],
        [
            "Adaptive",
            adaptive.phases,
            adaptive.pipelines,
            adaptive.app_nodes,
            adaptive.soma_nodes,
            adaptive.params.cores_per_sim_task,
            "1,2,4,6",
            adaptive.params.cores_per_train_task,
            adaptive.soma_config().total_ranks,
            f"{adaptive.monitoring_frequency:.0f}",
        ],
    ]
    for soma_nodes in (1, 2, 4):
        exp = SCALING_A(soma_nodes, "exclusive")
        rows.append(
            [
                "Scaling A",
                exp.phases,
                exp.pipelines,
                exp.app_nodes,
                exp.soma_nodes,
                exp.params.cores_per_sim_task,
                exp.params.num_train_tasks,
                exp.params.cores_per_train_task,
                exp.soma_config().total_ranks,
                f"{exp.monitoring_frequency:.0f}",
            ]
        )
    for pipelines in (64, 128, 256, 512):
        exp = SCALING_B(pipelines, "exclusive")
        rows.append(
            [
                "Scaling B",
                exp.phases,
                exp.pipelines,
                exp.app_nodes,
                exp.soma_nodes,
                exp.params.cores_per_sim_task,
                exp.params.num_train_tasks,
                exp.params.cores_per_train_task,
                exp.soma_config().total_ranks,
                "60,10",
            ]
        )
    return render_table(
        [
            "Experiment",
            "Phases",
            "Pipelines",
            "App Nodes",
            "SOMA Nodes",
            "Cores/Sim",
            "Train Tasks",
            "Cores/Train",
            "SOMA Ranks",
            "Freq (s)",
        ],
        rows,
        title="Table 2: DeepDriveMD Mini-app Experiment Summary",
    )


# -- multi-run renderers -----------------------------------------------


def fig10_durations(payloads: dict[str, dict]) -> dict[str, list[float]]:
    out = {}
    for soma_nodes in (1, 2, 4):
        for mode in ("shared", "exclusive"):
            key = f"scaling-a-{mode}-{soma_nodes}n"
            out[f"{mode}-{16 * soma_nodes}ranks"] = payloads[key][
                "pipeline_durations"
            ]
    return out


def render_fig10(payloads: dict[str, dict]) -> str:
    return render_boxes(
        fig10_durations(payloads),
        title="Fig 10: Scaling A pipeline runtimes (64 pipelines)",
    )


def scaling_b_key(pipelines: int, mode: str, frequent: bool) -> str:
    label = ("frequent-" if frequent else "") + mode
    return f"scaling-b-{label}-{pipelines}p"


def fig11_data(
    payloads: dict[str, dict], scales: tuple[int, ...]
) -> dict[int, dict[str, list[float]]]:
    data: dict[int, dict[str, list[float]]] = {}
    for pipelines in scales:
        per_config = {}
        for mode, frequent in SCALING_B_CONFIGS:
            label = ("frequent-" if frequent else "") + mode
            per_config[label] = payloads[
                scaling_b_key(pipelines, mode, frequent)
            ]["pipeline_durations"]
        data[pipelines] = per_config
    return data


def fig11_overhead_rows(
    data: dict[int, dict[str, list[float]]]
) -> list[list]:
    overhead_rows = []
    for pipelines, per_config in data.items():
        baseline = per_config["none"]
        monitored = {k: v for k, v in per_config.items() if k != "none"}
        for result in compare_runtimes(baseline, monitored):
            overhead_rows.append(
                [
                    pipelines,
                    result.config,
                    fmt_percent(result.overhead_percent),
                    fmt(result.config_mean, ".1f"),
                    fmt(result.baseline_mean, ".1f"),
                ]
            )
    return overhead_rows


def render_fig11(payloads: dict[str, dict], scales: tuple[int, ...]) -> str:
    data = fig11_data(payloads, scales)
    sections = []
    for pipelines, per_config in data.items():
        sections.append(
            render_boxes(
                per_config,
                title=f"Fig 11: Scaling B, {pipelines} application nodes",
            )
        )
    sections.append(
        render_table(
            ["app nodes", "config", "overhead", "mean (s)", "baseline (s)"],
            fig11_overhead_rows(data),
            title="overhead vs baseline (paper: frequent-exclusive "
            "+1.4/+3.4/+3.2/+4.6% at 64/128/256/512; shared "
            "-6.5/-3.8/-1.1/+1.8%)",
        )
    )
    return "\n\n".join(sections)


def render_adaptive(payload: dict) -> str:
    train_times = payload["stage_durations"]["training"]
    analyses = payload["analyses"]
    rows = []
    for phase, count in enumerate(DDMD_ADAPTIVE_TRAIN_COUNTS):
        headroom = analyses[phase]["headroom"]
        rows.append(
            [
                phase,
                count,
                f"{train_times[phase]:.1f}",
                f"{np.mean([h['cpu'] for h in headroom.values()]):.2f}"
                if headroom
                else "-",
            ]
        )
    return render_table(
        ["phase", "train tasks", "train stage (s)", "CPU headroom"],
        rows,
        title="Adaptive DDMD: a-priori train counts + online SOMA "
        "analysis between phases",
    )


def render_ablation_frequency(payloads: dict[str, dict]) -> str:
    means = {
        freq: float(
            np.mean(
                payloads[f"freq-ablation-{freq:.0f}s"]["pipeline_durations"]
            )
        )
        for freq in FREQ_ABLATION_PERIODS
    }
    rows = [[f"{f:.0f}", f"{m:.1f}"] for f, m in means.items()]
    return render_table(
        ["monitoring period (s)", "mean pipeline runtime (s)"],
        rows,
        title="Ablation: cost of monitoring frequency "
        "(16 pipelines, exclusive)",
    )


def render_ablation_rank_tuning(payloads: dict[str, dict]) -> str:
    adaptive = payloads["ablation-rank-adaptive"]
    static = payloads["ablation-rank-static"]
    gain = (
        (static["makespan"] - adaptive["makespan"]) / static["makespan"] * 100.0
    )
    return render_table(
        ["strategy", "makespan (s)"],
        [
            [
                f"adaptive ({adaptive['choice']} ranks)",
                f"{adaptive['makespan']:.1f}",
            ],
            ["static (mixed)", f"{static['makespan']:.1f}"],
            ["improvement", f"{gain:.1f}%"],
        ],
        title="Ablation: SOMA-informed rank tuning (Sec 4.1 loop)",
    )


def render_ablation_placement(payloads: dict[str, dict]) -> str:
    rows = []
    for seed in PLACEMENT_SEEDS:
        on = payloads[f"ablation-place-on-s{seed}"]["makespan"]
        off = payloads[f"ablation-place-off-s{seed}"]["makespan"]
        gain = (off - on) / off * 100.0
        rows.append([seed, f"{on:.1f}", f"{off:.1f}", f"{gain:+.1f}%"])
    return render_table(
        ["seed", "utilization-aware (s)", "rotating first-fit (s)", "gain"],
        rows,
        title="Ablation: utilization-aware placement (Sec 4.2 "
        "suggestion) — high variance, not a uniform win",
    )


def render_ablation_detection(payloads: dict[str, dict]) -> str:
    driven = payloads["ablation-detection-adaptive"]
    static = payloads["ablation-detection-static"]
    gain = (
        (static["makespan"] - driven["makespan"]) / static["makespan"] * 100.0
    )

    def counts(payload: dict) -> str:
        return "/".join(str(c) for c in payload["train_counts"])

    return render_table(
        ["strategy", "train tasks per phase", "makespan (s)"],
        [
            ["detection-driven", counts(driven), f"{driven['makespan']:.1f}"],
            ["static (a priori)", counts(static), f"{static['makespan']:.1f}"],
            ["improvement", "", f"{gain:.1f}%"],
        ],
        title="Ablation: bottleneck-detection-driven training "
        "parallelism vs the a-priori schedule",
    )


def render_provenance(payload: dict) -> str:
    """The run-graph manifest: invariants + critical-path attribution."""
    header = (
        f"provenance graph for DDMD '{payload['experiment']}': "
        f"{payload['events']} events, {payload['edges']} edges, "
        f"{payload['tasks']} tasks"
    )
    status = (
        "invariants: ok"
        if not payload["violations"]
        else "invariants VIOLATED: " + "; ".join(payload["violations"])
    )
    total = payload["attribution_total"]
    rows = [
        [kind, f"{seconds:.2f}", f"{100.0 * seconds / total:.1f}%" if total else "0.0%"]
        for kind, seconds in payload["attribution"].items()
    ]
    table = render_table(
        ["edge kind", "seconds", "share"],
        rows,
        title=(
            f"critical path: {payload['critical_path_edges']} edge(s), "
            f"{total:.2f}s attributed of {payload['finished_at']:.2f}s"
        ),
    )
    return "\n".join([header, status, "", table])


def render_facility(payload: dict) -> str:
    """The facility manifest: degradation contract + shard balance."""
    spec_line = (
        f"{payload['pilots']} pilots x {payload['tasks_per_pilot']} tasks "
        f"over {payload['shards']} shards (seed {payload['seed']})"
    )
    rows = [
        ["task samples generated", str(payload["samples_generated"])],
        ["task samples published", str(payload["samples_published"])],
        ["stalled tasks", str(payload["stalled_tasks"])],
        ["publishes ok / failed", (
            f"{payload['publishes_ok']} / {payload['publishes_failed']}"
        )],
        ["client drops", str(payload["client_drops"])],
        ["observability gaps", str(payload["gaps"])],
        ["gap seconds", f"{payload['gap_seconds']:.1f}"],
        ["faults applied", str(payload["faults_applied"])],
        ["makespan (s)", f"{payload['makespan']:.1f}"],
    ]
    shard_rows = [
        [name, str(records)]
        for name, records in sorted(payload["store_records"].items())
    ]
    return (
        render_table(["metric", "value"], rows, title=f"Facility: {spec_line}")
        + "\n"
        + render_table(
            ["shard store", "records"],
            shard_rows,
            title="Per-shard store occupancy (consistent-hash balance)",
        )
    )


# -- the default matrix ------------------------------------------------


def default_matrix(
    full_scale: bool | None = None,
) -> tuple[SweepSpec, dict[str, Artifact]]:
    """Every paper artifact's cells + renderers, one declarative matrix.

    ``full_scale=None`` defers to ``REPRO_FULL_SCALE=1`` (adds the 256-
    and 512-pipeline Scaling-B columns, minutes of simulation), exactly
    like the benches.
    """
    if full_scale is None:
        full_scale = os.environ.get("REPRO_FULL_SCALE", "0") == "1"
    scales = (64, 128, 256, 512) if full_scale else (64, 128)

    cells: list[CellSpec] = [
        CellSpec(
            key="openfoam-tuning",
            family="openfoam",
            seed=11,
            params={"experiment": "tuning"},
        ),
        CellSpec(
            key="openfoam-overload",
            family="openfoam",
            seed=21,
            params={"experiment": "overload"},
        ),
        CellSpec(
            key="ddmd-tuning",
            family="ddmd",
            seed=7,
            params={"preset": "tuning"},
        ),
        CellSpec(
            key="ddmd-adaptive",
            family="ddmd",
            seed=13,
            params={"preset": "adaptive", "adaptive_analysis": True},
        ),
    ]
    for soma_nodes in (1, 2, 4):
        for mode in ("shared", "exclusive"):
            cells.append(
                CellSpec(
                    key=f"scaling-a-{mode}-{soma_nodes}n",
                    family="ddmd",
                    seed=5,
                    params={
                        "preset": "scaling_a",
                        "soma_nodes": soma_nodes,
                        "mode": mode,
                    },
                )
            )
    for pipelines in scales:
        for mode, frequent in SCALING_B_CONFIGS:
            cells.append(
                CellSpec(
                    key=scaling_b_key(pipelines, mode, frequent),
                    family="ddmd",
                    seed=5,
                    params={
                        "preset": "scaling_b",
                        "pipelines": pipelines,
                        "mode": mode,
                        "frequent": frequent,
                    },
                )
            )
    for freq in FREQ_ABLATION_PERIODS:
        cells.append(
            CellSpec(
                key=f"freq-ablation-{freq:.0f}s",
                family="ddmd",
                seed=3,
                params={
                    "preset": "scaling_b",
                    "pipelines": 16,
                    "mode": "exclusive",
                    "overrides": {
                        "soma_nodes": 1,
                        "soma_ranks_per_namespace": 8,
                        "monitoring_frequency": freq,
                        "params": {"noise_sigma": 0.02},
                    },
                },
            )
        )
    for label, adaptive in (("adaptive", True), ("static", False)):
        cells.append(
            CellSpec(
                key=f"ablation-rank-{label}",
                family="ablation",
                seed=11,
                params={"which": "rank_tuning", "adaptive": adaptive},
            )
        )
    for seed in PLACEMENT_SEEDS:
        for label, adaptive in (("on", True), ("off", False)):
            cells.append(
                CellSpec(
                    key=f"ablation-place-{label}-s{seed}",
                    family="ablation",
                    seed=seed,
                    params={"which": "placement", "adaptive": adaptive},
                )
            )
    for label, adaptive in (("adaptive", True), ("static", False)):
        cells.append(
            CellSpec(
                key=f"ablation-detection-{label}",
                family="ablation",
                seed=11,
                params={"which": "detection", "adaptive": adaptive},
            )
        )
    cells.append(
        CellSpec(
            key="provenance-ddmd",
            family="provenance",
            seed=7,
            params={"preset": "adaptive", "adaptive_analysis": True},
        )
    )
    cells.append(
        CellSpec(
            key="facility-smoke",
            family="facility",
            seed=3,
            params={
                "spec": {
                    "pilots": 24,
                    "shards": 2,
                    "service_nodes": 2,
                    "tasks_per_pilot": 60,
                    "concurrency": 4,
                    "admission_rate": 0.5,
                },
                "chaos": True,
            },
        )
    )

    scaling_b_cells = tuple(
        scaling_b_key(p, mode, frequent)
        for p in scales
        for mode, frequent in SCALING_B_CONFIGS
    )
    artifacts = {
        artifact.name: artifact
        for artifact in (
            Artifact(
                "fig4",
                ("openfoam-overload",),
                lambda p: render_fig4(p["openfoam-overload"]),
            ),
            Artifact(
                "fig5",
                ("openfoam-tuning",),
                lambda p: render_fig5(p["openfoam-tuning"]),
            ),
            Artifact(
                "fig6",
                ("openfoam-overload",),
                lambda p: render_fig6(p["openfoam-overload"]),
            ),
            Artifact(
                "fig7",
                ("openfoam-tuning",),
                lambda p: render_fig7(p["openfoam-tuning"]),
            ),
            Artifact(
                "fig8",
                ("openfoam-overload", "openfoam-tuning"),
                lambda p: render_fig8(
                    p["openfoam-overload"], p["openfoam-tuning"]
                ),
            ),
            Artifact(
                "table1", ("openfoam-tuning",), lambda p: render_table1()
            ),
            Artifact(
                "fig9",
                ("ddmd-tuning",),
                lambda p: render_fig9(p["ddmd-tuning"]),
            ),
            Artifact(
                "table2", ("ddmd-tuning",), lambda p: render_table2()
            ),
            Artifact(
                "fig10",
                tuple(
                    f"scaling-a-{mode}-{n}n"
                    for n in (1, 2, 4)
                    for mode in ("shared", "exclusive")
                ),
                render_fig10,
            ),
            Artifact(
                "fig11",
                scaling_b_cells,
                lambda p, scales=scales: render_fig11(p, scales),
            ),
            Artifact(
                "adaptive",
                ("ddmd-adaptive",),
                lambda p: render_adaptive(p["ddmd-adaptive"]),
            ),
            Artifact(
                "ablation_frequency",
                tuple(
                    f"freq-ablation-{f:.0f}s" for f in FREQ_ABLATION_PERIODS
                ),
                render_ablation_frequency,
            ),
            Artifact(
                "ablation_rank_tuning",
                ("ablation-rank-adaptive", "ablation-rank-static"),
                render_ablation_rank_tuning,
            ),
            Artifact(
                "ablation_placement",
                tuple(
                    f"ablation-place-{label}-s{seed}"
                    for seed in PLACEMENT_SEEDS
                    for label in ("on", "off")
                ),
                render_ablation_placement,
            ),
            Artifact(
                "ablation_detection",
                ("ablation-detection-adaptive", "ablation-detection-static"),
                render_ablation_detection,
            ),
            Artifact(
                "facility",
                ("facility-smoke",),
                lambda p: render_facility(p["facility-smoke"]),
            ),
            Artifact(
                "provenance",
                ("provenance-ddmd",),
                lambda p: render_provenance(p["provenance-ddmd"]),
            ),
        )
    }
    return SweepSpec(cells), artifacts
