"""Content-addressed result cache for sweep cells.

Keyed on :meth:`CellSpec.digest` — a sha256 over (code fingerprint,
family, params, seed) — so a cache hit is only possible when the exact
code ran the exact cell.  Records are whole JSON files written through
the atomic temp-file + rename path; a record that fails to parse (e.g.
produced by a non-atomic writer that got killed) is treated as a miss
and recomputed, never an error.
"""

from __future__ import annotations

import json
from pathlib import Path

from .journal import atomic_write_json

__all__ = ["ResultCache"]


class ResultCache:
    """Digest-addressed store of completed cell records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        """Load a record, or None on miss/corruption."""
        path = self.path(digest)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def put(self, digest: str, record: dict) -> Path:
        record = dict(record)
        record["digest"] = digest
        return atomic_write_json(self.path(digest), record, indent=None)

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None
