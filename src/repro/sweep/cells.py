"""Built-in sweep cell families and their result collectors.

A cell family turns ``(params, seed)`` into a **plain-data payload**:
every value a downstream artifact renderer or bench assertion needs,
reduced to JSON types inside the worker process.  Nothing session- or
generator-shaped crosses the process boundary — that is what makes
cells picklable and their results content-addressable.

Insertion order of the payload dicts is preserved through the JSON
round trip, and several renderers fold samples in that order (floating
point addition is not associative), so collectors record series in the
exact order the analysis helpers produced them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from ..analysis.timeline import BOOTSTRAP, RUNNING, SCHEDULING, build_timeline
from ..experiments.ablations import (
    run_detection_ablation,
    run_placement_ablation,
    run_rank_tuning_ablation,
)
from ..experiments.ddmd_exps import (
    SCALING_A,
    SCALING_B,
    DDMDExperiment,
    adaptive_experiment,
    pipeline_durations,
    run_ddmd_experiment,
    stage_durations,
    tuning_experiment,
)
from ..experiments.harness import WorkflowResult, register_cell_family
from ..experiments.openfoam_exps import (
    OVERLOAD,
    TUNING,
    OpenFOAMExperiment,
    execution_times_by_ranks,
    execution_times_by_spread,
    run_openfoam_experiment,
)
from ..platform import SUMMIT
from ..soma.analysis import (
    cpu_utilization_series,
    load_imbalance,
    rank_region_breakdown,
    task_state_observations,
)
from ..soma.namespaces import HARDWARE, PERFORMANCE, WORKFLOW

__all__ = [
    "jsonable",
    "collect_openfoam",
    "collect_ddmd",
    "openfoam_cell",
    "ddmd_cell",
    "ablation_cell",
    "provenance_cell",
]

_DDMD_STAGES = ("simulation", "training", "selection", "agent")


def jsonable(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array
        return jsonable(tolist())
    raise TypeError(f"cannot make {type(value).__name__} JSON-able")


def _utilization_series(result: WorkflowResult) -> dict[str, list] | None:
    """Per-host [time, cpu, gpu] triples, insertion order preserved."""
    if not result.deployment.enabled:
        return None
    series = cpu_utilization_series(result.deployment.store(HARDWARE))
    return {
        host: [[p.time, p.cpu_utilization, p.gpu_utilization] for p in points]
        for host, points in series.items()
    }


def _timeline_summary(result: WorkflowResult) -> dict:
    """Raw numbers behind the Fig 8 utilization row for one run."""
    timeline = build_timeline(result.session, result.tasks)
    compute_nodes = [n.name for n in result.client.pilot.compute_nodes]
    compute = build_timeline(result.session, result.tasks, nodes=compute_nodes)
    span = result.finished_at
    cores = SUMMIT.node.usable_cores
    return {
        "kinds": sorted(timeline.kinds()),
        "span": span,
        "total_core_seconds": span * cores * len(compute_nodes),
        "running": compute.busy_core_seconds(RUNNING),
        "scheduling": compute.busy_core_seconds(SCHEDULING),
        "bootstrap": compute.busy_core_seconds(BOOTSTRAP),
    }


def collect_openfoam(
    result: WorkflowResult, experiment: OpenFOAMExperiment
) -> dict:
    """Reduce an OpenFOAM run to the data Figs 4-8 / Table 1 consume."""
    spreads = {
        str(ranks): {
            str(n): values
            for n, values in execution_times_by_spread(result, ranks).items()
        }
        for ranks in experiment.rank_configs
    }
    tau = None
    if (
        experiment.use_tau
        and result.deployment.enabled
        and result.payload["by_ranks"].get(20)
    ):
        task = result.payload["by_ranks"][20][0]
        store = result.deployment.store(PERFORMANCE)
        breakdown = rank_region_breakdown(store, task.uid)
        tau = {
            "task_uid": task.uid,
            "breakdown": {
                str(rank): dict(regions)
                for rank, regions in breakdown.items()
            },
            "imbalance": load_imbalance(store, task.uid),
        }
    task_starts: list[list] = []
    if result.deployment.enabled:
        markers = task_state_observations(
            result.deployment.store(WORKFLOW), event="AGENT_EXECUTING"
        )
        app_uids = {t.uid for t in result.application_tasks}
        task_starts = [[t, uid] for t, uid in markers if uid in app_uids]
    return jsonable(
        {
            "experiment": experiment.name,
            "seed_tasks_expected": experiment.num_tasks,
            "makespan": result.makespan,
            "finished_at": result.finished_at,
            "num_application_tasks": len(result.application_tasks),
            "exec_times_by_ranks": {
                str(r): v
                for r, v in execution_times_by_ranks(result).items()
            },
            "exec_times_by_spread": spreads,
            "tau": tau,
            "utilization_series": _utilization_series(result),
            "task_starts": task_starts,
            "compute_hosts": [
                n.name for n in result.client.pilot.compute_nodes
            ],
            "timeline": _timeline_summary(result),
        }
    )


def collect_ddmd(result: WorkflowResult, experiment: DDMDExperiment) -> dict:
    """Reduce a DDMD run to the data Figs 9-11 / Table 2 consume."""
    manager = result.payload["manager"]
    stages = result.session.tracer.select(category="entk.stage")
    phase_ends = [
        rec.time for i, rec in enumerate(stages) if (i + 1) % 4 == 0
    ]
    pipeline0 = result.payload["pipelines"][0]
    return jsonable(
        {
            "experiment": experiment.name,
            "makespan": result.makespan,
            "pipeline_durations": pipeline_durations(result),
            "stage_durations": {
                stage: manager.stage_durations(stage)
                for stage in _DDMD_STAGES
            },
            "utilization_series": _utilization_series(result),
            "phase_ends": phase_ends,
            "analyses": result.payload["analyses"],
            "pipeline0_stages": len(pipeline0.stages),
            "pipeline0_succeeded": pipeline0.succeeded,
        }
    )


@register_cell_family("openfoam")
def openfoam_cell(params: dict, seed: int) -> dict:
    """``{"experiment": "tuning"|"overload", "overrides": {...}}``."""
    base = TUNING if params.get("experiment", "tuning") == "tuning" else OVERLOAD
    overrides = dict(params.get("overrides") or {})
    if "rank_configs" in overrides:
        overrides["rank_configs"] = tuple(overrides["rank_configs"])
    experiment = replace(base, **overrides) if overrides else base
    result = run_openfoam_experiment(experiment, seed=seed)
    return collect_openfoam(result, experiment)


def _ddmd_experiment(params: dict) -> DDMDExperiment:
    preset = params.get("preset", "tuning")
    if preset == "tuning":
        experiment = tuning_experiment()
    elif preset == "adaptive":
        experiment = adaptive_experiment()
    elif preset == "scaling_a":
        experiment = SCALING_A(params["soma_nodes"], params["mode"])
    elif preset == "scaling_b":
        experiment = SCALING_B(
            params["pipelines"],
            params["mode"],
            frequent=bool(params.get("frequent", False)),
        )
    else:
        raise KeyError(f"unknown ddmd preset {preset!r}")
    overrides = dict(params.get("overrides") or {})
    param_updates = overrides.pop("params", None)
    if param_updates:
        overrides["params"] = experiment.params.with_updates(**param_updates)
    if overrides:
        experiment = experiment.with_updates(**overrides)
    return experiment


@register_cell_family("ddmd")
def ddmd_cell(params: dict, seed: int) -> dict:
    """``{"preset": ..., "overrides": {...}, "adaptive_analysis": bool}``."""
    experiment = _ddmd_experiment(params)
    result = run_ddmd_experiment(
        experiment,
        seed=seed,
        adaptive_analysis=bool(params.get("adaptive_analysis", False)),
    )
    return collect_ddmd(result, experiment)


@register_cell_family("provenance")
def provenance_cell(params: dict, seed: int) -> dict:
    """``{"preset": ..., "overrides": {...}, "adaptive_analysis": bool}``.

    Runs one DDMD configuration with provenance capture on, builds the
    run graph, validates its invariants, and reduces the critical-path
    attribution to plain data.  The run itself is byte-identical to the
    plain ``ddmd`` cell (the zero-perturbation battery pins that), so
    this cell only pays the graph construction on top.
    """
    from ..provenance import (
        attribution_total,
        build_graph,
        critical_path,
        edge_attribution,
        set_default_provenance,
        validate_graph,
    )
    from ..telemetry import drain_telemetries, set_default_telemetry

    experiment = _ddmd_experiment(params)
    drain_telemetries()
    prev_tel = set_default_telemetry(True)
    prev_prov = set_default_provenance(True)
    try:
        result = run_ddmd_experiment(
            experiment,
            seed=seed,
            adaptive_analysis=bool(params.get("adaptive_analysis", False)),
        )
    finally:
        set_default_telemetry(prev_tel)
        set_default_provenance(prev_prov)
    graph = build_graph(result)
    drain_telemetries()
    violations = validate_graph(graph)
    path = critical_path(graph)
    return jsonable(
        {
            "experiment": experiment.name,
            "makespan": result.makespan,
            "finished_at": result.finished_at,
            "events": len(graph.events),
            "edges": len(graph.edges),
            "event_counts": graph.event_counts(),
            "edge_counts": graph.edge_counts(),
            "tasks": len(graph.task_events),
            "violations": [v.format() for v in violations],
            "critical_path_edges": len(path),
            "attribution": edge_attribution(path),
            "attribution_total": attribution_total(path),
            "capture": result.session.telemetry.provenance.counters(),
        }
    )


@register_cell_family("facility")
def facility_cell(params: dict, seed: int) -> dict:
    """``{"spec": {FacilitySpec overrides}, "chaos": bool}``.

    Runs the shared-facility scenario (hundreds of tenants against one
    sharded SOMA deployment); ``chaos`` arms the canonical shard-outage
    + tenant-flood plan.
    """
    from ..experiments.facility import (
        FacilitySpec,
        facility_chaos_plan,
        run_facility,
    )

    overrides = dict(params.get("spec") or {})
    for key in ("workload_mix", "namespaces"):
        if key in overrides:
            overrides[key] = tuple(overrides[key])
    spec = FacilitySpec(**overrides)
    plan = facility_chaos_plan(spec) if params.get("chaos") else None
    result = run_facility(spec, seed=seed, fault_plan=plan)
    return jsonable(result.payload())


@register_cell_family("ablation")
def ablation_cell(params: dict, seed: int) -> dict:
    """``{"which": "rank_tuning"|"placement"|"detection", "adaptive": bool}``."""
    which = params["which"]
    adaptive = bool(params["adaptive"])
    if which == "rank_tuning":
        makespan, choice = run_rank_tuning_ablation(adaptive, seed=seed)
        return jsonable({"makespan": makespan, "choice": choice})
    if which == "placement":
        makespan = run_placement_ablation(adaptive, seed=seed)
        return jsonable({"makespan": makespan})
    if which == "detection":
        makespan, counts = run_detection_ablation(adaptive, seed=seed)
        return jsonable({"makespan": makespan, "train_counts": counts})
    raise KeyError(f"unknown ablation {which!r}")
