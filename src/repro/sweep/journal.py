"""Crash-safe journalling and atomic file writes.

Two primitives the sweep engine (and the benchmarks) build on:

* :func:`atomic_write_text` / :func:`atomic_write_json` — write into a
  temporary file in the destination directory, ``fsync``, then
  ``os.replace`` onto the target.  A reader (or a run killed half-way
  through the write) sees either the old content or the new content,
  never a torn file.
* :class:`Journal` — one JSON line per completed sweep cell.  Every
  append rewrites the whole journal through the atomic path, so a
  ``SIGKILL`` at any instant leaves a valid journal describing a prefix
  of the completed cells.  :meth:`Journal.load` additionally tolerates a
  torn trailing line (e.g. a journal produced by a different writer),
  dropping it instead of failing the resume.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

__all__ = ["atomic_write_text", "atomic_write_json", "Journal"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str | Path, obj: Any, indent: int | None = 2) -> Path:
    """Atomically write ``obj`` as JSON (trailing newline included)."""
    return atomic_write_text(path, json.dumps(obj, indent=indent) + "\n")


class Journal:
    """Append-only record of completed sweep cells, one JSON line each.

    The journal is the crash-safety mechanism: a cell is *complete* iff
    its line is in the journal, and every append goes through the
    temp-file + rename path, so an interrupted sweep can always be
    resumed from the journal on disk.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: list[dict] = []

    # -- lifecycle ----------------------------------------------------

    def load(self) -> "Journal":
        """Read the journal from disk (tolerating a torn last line)."""
        self._entries = []
        if not self.path.exists():
            return self
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a non-atomic writer: drop it
                raise
            if isinstance(entry, dict) and "digest" in entry:
                self._entries.append(entry)
        return self

    def reset(self) -> "Journal":
        """Start a fresh journal (truncate any existing file)."""
        self._entries = []
        if self.path.exists():
            atomic_write_text(self.path, "")
        return self

    # -- writes -------------------------------------------------------

    def append(self, entry: dict) -> None:
        """Record one completed cell; the write is atomic."""
        self._entries.append(dict(entry))
        text = "".join(
            json.dumps(e, sort_keys=True) + "\n" for e in self._entries
        )
        atomic_write_text(self.path, text)

    # -- reads --------------------------------------------------------

    @property
    def entries(self) -> tuple[dict, ...]:
        return tuple(self._entries)

    def completed_digests(self) -> dict[str, dict]:
        """Digest -> journal entry for every completed cell."""
        return {e["digest"]: e for e in self._entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._entries)
