"""Deterministic shard planning for sweep runs.

The planner does two things, both order-stable for a given matrix:

* :func:`schedule_order` — the longest-processing-time-first order the
  pool consumes cells in.  Workers pull dynamically, so this is a
  straggler heuristic rather than a static assignment: the expensive
  Scaling-B cells start first and the cheap tuning cells fill the tail.
* :func:`plan_shards` — the greedy static partition over ``jobs``
  workers, used to *predict* the parallel makespan reported in the
  manifest (and by ``--list`` to show the expected balance).

Cost estimates are coarse wall-second heuristics per family, optionally
overridden per cell by observed durations from a previous manifest —
content-addressed, so stale observations never attach to changed cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import CellSpec

__all__ = ["ShardPlan", "estimate_cost", "schedule_order", "plan_shards"]


def estimate_cost(cell: CellSpec) -> float:
    """Rough serial wall-seconds for one cell (host-hardware agnostic)."""
    params = cell.params
    if cell.family == "openfoam":
        base = TUNING_COST if params.get("experiment", "tuning") == "tuning" else 2.4
        overrides = params.get("overrides") or {}
        instances = overrides.get("instances_per_config")
        if instances is not None:
            base = max(0.1, 0.12 * instances)
        return base
    if cell.family == "ddmd":
        preset = params.get("preset", "tuning")
        if preset == "tuning":
            return 0.4
        if preset == "adaptive":
            return 0.15
        if preset == "scaling_a":
            return 2.5
        if preset == "scaling_b":
            pipelines = params.get("pipelines", 64)
            frequent = bool(params.get("frequent", False))
            scale = (pipelines / 64.0) ** 2
            cost = 2.5 * scale * (2.0 if frequent else 1.0)
            if params.get("mode") == "none":
                cost *= 0.8
            return cost
        return 1.0
    if cell.family == "ablation":
        return 0.3
    return 1.0


TUNING_COST = 0.15


def _costs(
    cells: tuple[CellSpec, ...],
    observed: dict[str, float] | None,
    digests: dict[str, str] | None,
) -> dict[str, float]:
    out = {}
    for cell in cells:
        cost = estimate_cost(cell)
        if observed and digests:
            digest = digests.get(cell.key)
            if digest is not None and digest in observed:
                cost = observed[digest]
        out[cell.key] = cost
    return out


def schedule_order(
    cells: "tuple[CellSpec, ...] | list[CellSpec]",
    observed: dict[str, float] | None = None,
    digests: dict[str, str] | None = None,
) -> list[CellSpec]:
    """Cells in LPT order (cost descending, key ascending on ties)."""
    cells = tuple(cells)
    costs = _costs(cells, observed, digests)
    return sorted(cells, key=lambda c: (-costs[c.key], c.key))


@dataclass(frozen=True)
class ShardPlan:
    """Static greedy partition of the matrix over ``jobs`` workers."""

    shards: tuple[tuple[CellSpec, ...], ...]
    shard_seconds: tuple[float, ...]

    @property
    def predicted_makespan(self) -> float:
        return max(self.shard_seconds, default=0.0)

    @property
    def serial_seconds(self) -> float:
        return sum(self.shard_seconds)


def plan_shards(
    cells: "tuple[CellSpec, ...] | list[CellSpec]",
    jobs: int,
    observed: dict[str, float] | None = None,
    digests: dict[str, str] | None = None,
) -> ShardPlan:
    """Greedy LPT assignment: each cell goes to the lightest shard."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    ordered = schedule_order(cells, observed, digests)
    costs = _costs(tuple(ordered), observed, digests)
    shards: list[list[CellSpec]] = [[] for _ in range(jobs)]
    loads = [0.0] * jobs
    for cell in ordered:
        # min() is stable: ties resolve to the lowest shard index.
        target = loads.index(min(loads))
        shards[target].append(cell)
        loads[target] += costs[cell.key]
    return ShardPlan(
        shards=tuple(tuple(shard) for shard in shards),
        shard_seconds=tuple(loads),
    )
