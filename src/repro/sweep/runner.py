"""Multi-process sweep execution with caching and crash-safe resume.

Execution model: cells are classified against the journal and the
content-addressed cache, the remainder is ordered by the shard planner
(LPT), and a process pool consumes that order.  Each completion is
written to the cache and the journal *before* the next result is
awaited, so at every instant the on-disk state describes exactly the
set of completed cells:

* a worker that dies with an exception marks its cell failed and the
  sweep finishes the rest, then raises :class:`SweepInterrupted`;
* a worker that is ``SIGKILL``-ed breaks the whole pool (the OS took
  the process; in-flight siblings are lost too) — the journal still
  holds every completed cell, and a ``resume=True`` re-run replays it,
  recomputing only what never completed.

``jobs=1`` runs the exact same cell code inline — the serial reference
path the parity battery compares the sharded runs against.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from .cache import ResultCache
from .journal import Journal
from .planner import plan_shards, schedule_order
from .spec import CellSpec, SweepSpec, canonical_json, code_fingerprint, result_digest

__all__ = [
    "SweepRun",
    "SweepInterrupted",
    "run_sweep",
    "cells_signature",
    "execute_cell",
]

MANIFEST_SCHEMA = "repro-sweep-manifest-v1"


def execute_cell(cell: dict) -> dict:
    """Worker entry point: run one cell, return its completed record.

    Top-level and fed only plain data, so it pickles under any
    multiprocessing start method.  The worker-fault hook fires *after*
    the cell is claimed but before any work lands — an injected death
    here is indistinguishable from the kernel OOM-killing the worker
    mid-cell.
    """
    from ..experiments.harness import run_cell
    from ..faults.worker import check_worker_fault

    check_worker_fault(cell["key"])
    telemetry_dir = cell.get("telemetry_dir")
    start = time.perf_counter()  # simlint: disable=wall-clock(host-side sweep timing, not sim state)
    if telemetry_dir:
        payload, trace_path = _run_cell_traced(cell, telemetry_dir)
    else:
        payload = run_cell(cell["family"], cell["params"], cell["seed"])
        trace_path = None
    wall = time.perf_counter() - start  # simlint: disable=wall-clock(host-side sweep timing, not sim state)
    record = {
        "key": cell["key"],
        "family": cell["family"],
        "seed": cell["seed"],
        "params": cell["params"],
        "digest": cell["digest"],
        "result_digest": result_digest(payload),
        "wall_seconds": wall,
        "payload": payload,
    }
    if trace_path is not None:
        record["trace"] = trace_path
    return record


def _run_cell_traced(cell: dict, telemetry_dir: str) -> "tuple[dict, str]":
    """Run one cell with span telemetry on and export its Chrome trace.

    Telemetry holds a hard zero-perturbation contract, so the payload
    (and therefore the result digest) is byte-identical to an untraced
    run — only the side-channel trace file differs.
    """
    from ..experiments.harness import run_cell
    from ..telemetry import (
        chrome_trace,
        drain_telemetries,
        merge_chrome_traces,
        save_chrome_trace,
        set_default_telemetry,
    )

    drain_telemetries()  # hubs left over from earlier in-process cells
    previous = set_default_telemetry(True)
    try:
        payload = run_cell(cell["family"], cell["params"], cell["seed"])
    finally:
        set_default_telemetry(previous)
        hubs = drain_telemetries()
    document = merge_chrome_traces(
        [chrome_trace(hub, pid=index + 1) for index, hub in enumerate(hubs)]
    )
    safe_key = cell["key"].replace("/", "_")
    path = save_chrome_trace(
        Path(telemetry_dir) / f"{safe_key}.trace.json", document
    )
    return payload, str(path)


@dataclass
class SweepRun:
    """A finished (or interrupted) sweep: manifest + in-memory payloads."""

    manifest: dict
    payloads: dict[str, dict] = field(default_factory=dict)


class SweepInterrupted(RuntimeError):
    """Sweep did not complete; ``run`` holds the partial state."""

    def __init__(self, message: str, run: SweepRun) -> None:
        super().__init__(message)
        self.run = run
        self.manifest = run.manifest


def cells_signature(manifest: dict) -> list[dict]:
    """Timing-free view of a manifest's completed cells (for parity)."""
    return [
        {
            k: entry[k]
            for k in ("key", "family", "seed", "digest", "result_digest")
        }
        for entry in manifest["cells"]
    ]


def _matrix_digest(entries: Iterable[dict]) -> str:
    pairs = sorted((e["key"], e["result_digest"]) for e in entries)
    return hashlib.sha256(canonical_json(pairs).encode("utf-8")).hexdigest()


def _mp_context(start_method: str | None):
    method = start_method or os.environ.get("REPRO_SWEEP_MP", "").strip()
    if not method:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(method)


def run_sweep(
    spec: "SweepSpec | Iterable[CellSpec]",
    *,
    jobs: int = 1,
    sweep_dir: str | Path,
    cache_dir: "str | Path | None" = None,
    resume: bool = False,
    progress: "Callable[[str], None] | None" = None,
    mp_start: str | None = None,
    telemetry_dir: "str | Path | None" = None,
) -> SweepRun:
    """Run every cell of ``spec``, skipping completed ones.

    ``telemetry_dir`` turns on span telemetry in every worker and drops
    one Chrome trace per cell into that directory.  Traces are a side
    product of actually running the cell, so it forces every cell to
    recompute (cache and journal short-circuits are skipped) and
    disables same-digest deduplication — each cell gets its own trace.
    Payloads and result digests stay byte-identical to an untraced run.

    Returns a :class:`SweepRun`; raises :class:`SweepInterrupted` (with
    the partial run attached) if a worker failed or the pool broke.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    spec = spec if isinstance(spec, SweepSpec) else SweepSpec(spec)
    sweep_dir = Path(sweep_dir)
    sweep_dir.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(cache_dir if cache_dir is not None else sweep_dir / "cache")
    journal = Journal(sweep_dir / "journal.jsonl")
    if resume:
        journal.load()
    else:
        journal.reset()
    journalled = journal.completed_digests()

    say = progress if progress is not None else (lambda line: None)
    code = code_fingerprint()
    digests = {cell.key: cell.digest(code) for cell in spec}
    if telemetry_dir is not None:
        telemetry_dir = Path(telemetry_dir)
        telemetry_dir.mkdir(parents=True, exist_ok=True)

    completed: dict[str, dict] = {}  # key -> record (with payload)
    sources: dict[str, str] = {}
    observed: dict[str, float] = {}
    pending: list[CellSpec] = []
    for cell in spec:
        digest = digests[cell.key]
        record = cache.get(digest)
        if record is not None:
            observed[digest] = float(record.get("wall_seconds", 0.0))
        if telemetry_dir is not None:
            # Traces only exist if the cell actually runs; never skip.
            pending.append(cell)
        elif record is not None and digest in journalled:
            completed[cell.key] = record
            sources[cell.key] = "journal"
        elif record is not None:
            completed[cell.key] = record
            sources[cell.key] = "cached"
        else:
            pending.append(cell)
    for key, record in completed.items():
        say(f"skip {key} [{sources[key]}]")

    # Deduplicate identical cells (same digest): run once, fan out.
    # With telemetry every cell is its own group so each key gets its
    # own trace file.
    def group_of(cell: CellSpec) -> str:
        if telemetry_dir is not None:
            return f"{digests[cell.key]}::{cell.key}"
        return digests[cell.key]

    by_digest: dict[str, list[CellSpec]] = {}
    for cell in pending:
        by_digest.setdefault(group_of(cell), []).append(cell)
    to_run = [cells[0] for cells in by_digest.values()]

    order = schedule_order(to_run, observed, digests)
    plan = plan_shards(spec.cells, jobs, observed, digests)

    failures: list[dict] = []
    interrupted: str | None = None
    started = time.perf_counter()  # simlint: disable=wall-clock(host-side sweep timing, not sim state)

    def payload_cell(cell: CellSpec) -> dict:
        out = dict(cell.to_dict(), digest=digests[cell.key])
        if telemetry_dir is not None:
            out["telemetry_dir"] = str(telemetry_dir)
        return out

    def record_completion(record: dict, group: str) -> None:
        digest = record["digest"]
        cache.put(digest, record)
        for sibling in by_digest[group]:
            sib_record = dict(record, key=sibling.key)
            completed[sibling.key] = sib_record
            sources[sibling.key] = "computed"
            journal.append(
                {
                    "key": sibling.key,
                    "family": sibling.family,
                    "seed": sibling.seed,
                    "digest": digest,
                    "result_digest": record["result_digest"],
                    "wall_seconds": record["wall_seconds"],
                }
            )
            say(
                f"done {sibling.key} [computed "
                f"{record['wall_seconds']:.2f}s]"
            )

    if jobs == 1:
        for cell in order:
            try:
                record_completion(execute_cell(payload_cell(cell)), group_of(cell))  # simlint: disable=SL100(host-side sweep cache/journal, not a sim queue; wall_seconds is bench metadata)
            except Exception as exc:  # worker fault or cell bug
                failures.append(
                    {
                        "key": cell.key,
                        "digest": digests[cell.key],
                        "error": repr(exc),
                    }
                )
                say(f"FAIL {cell.key}: {exc!r}")
    elif order:
        ctx = _mp_context(mp_start)
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(order)), mp_context=ctx
        ) as pool:
            futures = {
                pool.submit(execute_cell, payload_cell(cell)): cell
                for cell in order
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    cell = futures[future]
                    try:
                        record_completion(future.result(), group_of(cell))  # simlint: disable=SL100(host-side completion order; journal entries are keyed and digest-checked, order is immaterial)
                    except BrokenProcessPool:
                        # The OS killed a worker outright; the pool is
                        # gone, but results journalled so far are safe.
                        interrupted = (
                            "worker pool broke (a worker died hard) while "
                            f"executing {cell.key!r}"
                        )
                    except Exception as exc:
                        failures.append(
                            {
                                "key": cell.key,
                                "digest": digests[cell.key],
                                "error": repr(exc),
                            }
                        )
                        say(f"FAIL {cell.key}: {exc!r}")
                if interrupted is not None:
                    break

    wall_clock = time.perf_counter() - started  # simlint: disable=wall-clock(host-side sweep timing, not sim state)

    entries = []
    for cell in spec:
        if cell.key not in completed:
            continue
        record = completed[cell.key]
        entries.append(
            {
                "key": cell.key,
                "family": cell.family,
                "seed": cell.seed,
                "digest": digests[cell.key],
                "result_digest": record["result_digest"],
                "wall_seconds": float(record.get("wall_seconds", 0.0)),
                "source": sources[cell.key],
            }
        )
    entries.sort(key=lambda e: e["key"])
    failed_keys = {f["key"] for f in failures}
    pending_keys = sorted(
        cell.key
        for cell in spec
        if cell.key not in completed and cell.key not in failed_keys
    )
    counts = {
        "total": len(spec),
        "computed": sum(1 for e in entries if e["source"] == "computed"),
        "cache_hits": sum(1 for e in entries if e["source"] == "cached"),
        "journal_replays": sum(
            1 for e in entries if e["source"] == "journal"
        ),
        "failed": len(failures),
        "pending": len(pending_keys),
    }
    serial_estimate = sum(e["wall_seconds"] for e in entries)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "code_version": code,
        "jobs": jobs,
        "resume": resume,
        "cells": entries,
        "failed": sorted(failures, key=lambda f: f["key"]),
        "pending": pending_keys,
        "counts": counts,
        "matrix_digest": _matrix_digest(entries),
        "wall_clock_seconds": wall_clock,
        "serial_seconds_estimate": serial_estimate,
        "speedup_vs_serial": (
            serial_estimate / wall_clock if wall_clock > 0 else 0.0
        ),
        "predicted_makespan_seconds": plan.predicted_makespan,
    }
    run = SweepRun(
        manifest=manifest,
        payloads={
            key: record["payload"] for key, record in completed.items()
        },
    )
    if interrupted is not None:
        raise SweepInterrupted(interrupted, run)
    if failures:
        names = ", ".join(sorted(failed_keys))
        raise SweepInterrupted(f"cell(s) failed: {names}", run)
    return run
