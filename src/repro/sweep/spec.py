"""Declarative sweep cells and content-addressed digests.

A :class:`CellSpec` names one self-contained experiment run — a
registered *family* (``openfoam``, ``ddmd``, ``ablation``), a plain-data
parameter dict, and a seed.  Cells are pure data: they pickle across
process boundaries, serialize to JSON, and hash to a stable digest.

The cache key of a cell is ``sha256(code fingerprint, family, params,
seed)`` — the *code fingerprint* covers every ``*.py`` file of the
installed :mod:`repro` package, so editing any source file invalidates
every cached result while re-runs of unchanged code hit the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "CellSpec",
    "SweepSpec",
    "canonical_json",
    "code_fingerprint",
    "result_digest",
]

#: Bump when the digest schema itself changes.
_DIGEST_SCHEMA = "repro-sweep-cell-v1"


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def result_digest(payload: Any) -> str:
    """sha256 over the canonical JSON of a cell's result payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


_CODE_FINGERPRINT: str | None = None


def code_fingerprint(refresh: bool = False) -> str:
    """sha256 over every ``*.py`` source file of the repro package.

    ``REPRO_SWEEP_CODE_VERSION`` overrides the computed fingerprint
    (useful to share a cache across trivially-different checkouts).
    """
    global _CODE_FINGERPRINT
    override = os.environ.get("REPRO_SWEEP_CODE_VERSION", "").strip()
    if override:
        return override
    if _CODE_FINGERPRINT is not None and not refresh:
        return _CODE_FINGERPRINT
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


@dataclass(frozen=True)
class CellSpec:
    """One experiment cell: (family, params, seed) plus a unique key."""

    key: str
    family: str
    seed: int
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("cell key must be non-empty")
        # Fail early if params would not survive the JSON round trip the
        # cache and journal rely on.
        canonical_json(self.params)

    def canonical(self) -> str:
        return canonical_json(
            {"family": self.family, "params": self.params, "seed": self.seed}
        )

    def digest(self, code_version: str | None = None) -> str:
        """Content-addressed cache key for this cell."""
        code = code_version if code_version is not None else code_fingerprint()
        payload = f"{_DIGEST_SCHEMA}\n{code}\n{self.canonical()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "family": self.family,
            "seed": self.seed,
            "params": self.params,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        return cls(
            key=data["key"],
            family=data["family"],
            seed=int(data["seed"]),
            params=dict(data.get("params") or {}),
        )


class SweepSpec:
    """An ordered collection of cells with unique keys."""

    def __init__(self, cells: Iterable[CellSpec]) -> None:
        self.cells: tuple[CellSpec, ...] = tuple(cells)
        seen: set[str] = set()
        for cell in self.cells:
            if cell.key in seen:
                raise ValueError(f"duplicate cell key {cell.key!r}")
            seen.add(cell.key)

    def subset(self, keys: Iterable[str]) -> "SweepSpec":
        wanted = set(keys)
        unknown = wanted - {c.key for c in self.cells}
        if unknown:
            raise KeyError(f"unknown cell keys: {sorted(unknown)}")
        return SweepSpec(c for c in self.cells if c.key in wanted)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellSpec]:
        return iter(self.cells)

    def __getitem__(self, key: str) -> CellSpec:
        for cell in self.cells:
            if cell.key == key:
                return cell
        raise KeyError(key)
