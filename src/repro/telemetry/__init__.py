"""repro.telemetry — causal span tracing, metrics, and exporters.

First-class observability for the simulated stack itself: spans with
cross-component context propagation (the single causal tree of one
task's lifecycle across EnTK, RP, raptor, and SOMA), a metrics registry
absorbing the stack's ad-hoc counters, and exporters to Chrome
trace-event JSON (Perfetto-loadable), a plain-text flame summary, and
:class:`~repro.sim.trace.TraceRecord` streams for the analysis layer.

Telemetry is **zero-perturbation** by construction: enabling it changes
no simulated event, draws no random number, and leaves every result
digest and kernel counter byte-identical — enforced by the differential
regression battery in ``tests/telemetry``.
"""

from .bridge import (
    install_tracer_sink,
    render_span_table,
    spans_to_trace_records,
    top_critical_spans,
)
from .export import (
    chrome_trace,
    component_tracks,
    flame_summary,
    merge_chrome_traces,
    save_chrome_trace,
    validate_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    absorb_kernel_counters,
    absorb_session,
    geometric_bounds,
)
from .spans import (
    Span,
    SpanContext,
    Telemetry,
    active_telemetries,
    default_telemetry,
    drain_telemetries,
    set_default_telemetry,
)

__all__ = [
    "Span",
    "SpanContext",
    "Telemetry",
    "set_default_telemetry",
    "default_telemetry",
    "active_telemetries",
    "drain_telemetries",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "geometric_bounds",
    "absorb_kernel_counters",
    "absorb_session",
    "chrome_trace",
    "merge_chrome_traces",
    "save_chrome_trace",
    "validate_chrome_trace",
    "component_tracks",
    "flame_summary",
    "install_tracer_sink",
    "spans_to_trace_records",
    "top_critical_spans",
    "render_span_table",
]
