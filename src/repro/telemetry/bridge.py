"""Bridge between the flat :class:`~repro.sim.trace.Tracer` log and spans.

Two directions:

* **Tracer → spans**: :func:`install_tracer_sink` hooks the tracer's
  record sink so every stored record is *also* attached as a point
  event on the causally right span — task-uid records land on the
  task's bound span, everything else on the innermost active span.  No
  subsystem logs twice: the tracer remains the single flat log, and
  spans carry references into it, not copies of subsystem state.
* **Spans → TraceRecords**: :func:`spans_to_trace_records` renders the
  span tree as ordinary ``telemetry.span`` records so the existing
  analysis helpers (:mod:`repro.analysis.critical_path`,
  :mod:`repro.analysis.timeline`) consume spans natively.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.trace import TraceRecord
from .spans import Span, Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.trace import Tracer

__all__ = [
    "install_tracer_sink",
    "spans_to_trace_records",
    "top_critical_spans",
    "render_span_table",
]

#: Trace categories whose record *name* is a task uid — routed to the
#: task's bound span rather than the ambient one.
_TASK_CATEGORIES = frozenset(
    {"rp.state", "rp.event", "rp.alloc", "rp.free"}
)


def install_tracer_sink(telemetry: Telemetry, tracer: "Tracer") -> None:
    """Route every stored tracer record onto the right span.

    A record whose category names tasks is attached to the span bound
    to its task uid; other records go to the innermost active span of
    the recording process.  Records with no causal home are counted in
    ``telemetry.dropped_events`` — not silently lost.
    """
    if not telemetry.enabled:
        return

    def sink(record: TraceRecord) -> None:
        span = None
        if record.category in _TASK_CATEGORIES:
            ctx = telemetry.binding(record.name)
            if ctx is not None:
                span = telemetry._open.get(ctx.span_id)
        if span is None:
            ctx = telemetry.current()
            if ctx is not None:
                span = telemetry._open.get(ctx.span_id)
        if span is None:
            telemetry.dropped_events += 1
            return
        span.events.append(
            (record.time, f"{record.category}:{record.name}", record.data)
        )

    tracer.sink = sink


def spans_to_trace_records(telemetry: Telemetry) -> list[TraceRecord]:
    """Render spans as flat ``telemetry.span`` records (start-ordered)."""
    now = telemetry.env.now
    records = [
        TraceRecord(
            time=span.start,
            category="telemetry.span",
            name=f"{span.component}:{span.name}",
            data={
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "component": span.component,
                "span_name": span.name,
                "start": span.start,
                "end": span.end,
                "duration": span.duration(now),
                "closed": span.closed,
            },
        )
        for span in telemetry.spans
    ]
    records.sort(key=lambda rec: (rec.time, rec.data["span_id"]))
    return records


def top_critical_spans(telemetry: Telemetry, k: int = 10) -> list[dict]:
    """The k spans that dominate the run, ranked by self time.

    Self time is a span's duration minus its direct children's — the
    part of the interval no finer-grained span explains.  This is the
    per-span view of the critical path: the rows tell you where
    simulated time actually went, not merely which spans were widest.
    """
    from .export import _self_times

    now = telemetry.env.now
    self_times = _self_times(telemetry)
    by_id = {span.span_id: span for span in telemetry.spans}

    def root_of(span: Span) -> Span:
        seen = 0
        while span.parent_id is not None and seen < len(by_id):
            parent = by_id.get(span.parent_id)
            if parent is None:
                break
            span = parent
            seen += 1
        return span

    ranked = sorted(
        telemetry.spans,
        key=lambda s: (-self_times[s.span_id], s.span_id),
    )[: max(0, k)]
    return [
        {
            "component": span.component,
            "name": span.name,
            "start": span.start,
            "duration": span.duration(now),
            "self_time": self_times[span.span_id],
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "root": root_of(span).name,
            "closed": span.closed,
        }
        for span in ranked
    ]


def render_span_table(rows: list[dict]) -> str:
    """Fixed-width table of :func:`top_critical_spans` rows."""
    lines = [
        f"{'component':<14} {'span':<30} {'root':<22} "
        f"{'start':>10} {'dur':>10} {'self':>10}",
        "-" * 101,
    ]
    for row in rows:
        name = row["name"]
        if len(name) > 30:
            name = name[:27] + "..."
        root = row["root"]
        if len(root) > 22:
            root = root[:19] + "..."
        lines.append(
            f"{row['component']:<14} {name:<30} {root:<22} "
            f"{row['start']:>10.2f} {row['duration']:>10.2f} "
            f"{row['self_time']:>10.2f}"
        )
    if not rows:
        lines.append("(no spans)")
    return "\n".join(lines)
