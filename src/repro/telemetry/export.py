"""Exporters: Chrome trace-event JSON and a plain-text flame summary.

The Chrome trace-event format is the lingua franca of timeline viewers:
the emitted JSON loads directly in Perfetto (ui.perfetto.dev) and
``chrome://tracing``.  Spans become ``X`` (complete) events on one
thread track per component, span annotations become ``i`` (instant)
events, and metric scalars become ``C`` (counter) events; ``M``
metadata events name the process and the per-component tracks.

Timestamps are simulated seconds scaled to microseconds (the format's
unit), so one simulated second reads as one second in the viewer.

``validate_chrome_trace`` is a hand-rolled structural validator (the
container ships no jsonschema); the export tests and the CI trace-smoke
step run every emitted document through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import MetricsRegistry
    from .spans import Span, Telemetry

__all__ = [
    "chrome_trace",
    "merge_chrome_traces",
    "save_chrome_trace",
    "validate_chrome_trace",
    "flame_summary",
]

#: Chrome trace-event timestamps are microseconds.
_US = 1e6


def _component_order(spans: "list[Span]") -> dict[str, int]:
    """Component -> tid, in first-seen creation order (deterministic)."""
    tids: dict[str, int] = {}
    for span in spans:
        if span.component not in tids:
            tids[span.component] = len(tids) + 1
    return tids


def chrome_trace(
    telemetry: "Telemetry",
    metrics: "MetricsRegistry | None" = None,
    pid: int = 1,
    process_name: str = "repro-sim",
) -> dict[str, Any]:
    """Export one hub's spans (+ optional metrics) as a trace document.

    Open spans are clamped to ``env.now`` for display — the span object
    itself is *not* mutated — and flagged ``unfinished`` in their args.
    """
    now = telemetry.env.now
    tids = _component_order(telemetry.spans)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for component, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": component},
            }
        )
    for span in telemetry.spans:
        tid = tids[span.component]
        end = span.end if span.end is not None else max(now, span.start)
        args: dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.end is None:
            args["unfinished"] = True
        for key, value in span.attributes.items():
            args.setdefault(key, value)
        events.append(
            {
                "name": span.name,
                "cat": span.component,
                "ph": "X",
                "ts": span.start * _US,
                "dur": (end - span.start) * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for time, name, attrs in span.events:
            events.append(
                {
                    "name": name,
                    "cat": span.component,
                    "ph": "i",
                    "s": "t",
                    "ts": time * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(attrs, span_id=span.span_id),
                }
            )
    if metrics is not None:
        for name, value in metrics.scalar_values().items():
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": now * _US,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_chrome_traces(documents: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-hub documents into one (each hub keeps its pid)."""
    events: list[dict[str, Any]] = []
    for doc in documents:
        events.extend(doc["traceEvents"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(path: "str | Path", document: dict[str, Any]) -> Path:
    """Write a trace document (compact JSON) and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, separators=(",", ":")) + "\n", encoding="utf-8"
    )
    return path


#: Phases the validator knows; everything else is rejected.
_KNOWN_PHASES = {"X", "i", "C", "M", "B", "E"}


def validate_chrome_trace(document: Any) -> list[str]:
    """Structural validation of a trace document; returns problems.

    An empty list means the document is a well-formed Chrome trace:
    required top-level shape, required keys per event phase, numeric
    non-negative timestamps/durations, integer pid/tid, dict args, and
    consistent parent/span id references among ``X`` events.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    span_ids: set[int] = set()
    parent_refs: list[tuple[int, int]] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
        if ph == "M":
            if event["name"] not in ("process_name", "thread_name"):
                problems.append(f"{where}: unknown metadata {event['name']!r}")
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: metadata needs args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
            if not isinstance(event.get("cat"), str):
                problems.append(f"{where}: X events need a cat")
            if isinstance(args, dict):
                span_id = args.get("span_id")
                if isinstance(span_id, int):
                    span_ids.add(span_id)
                parent = args.get("parent_id")
                if isinstance(parent, int):
                    parent_refs.append((index, parent))
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant events need scope s")
        if ph == "C":
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter events need args values")
            elif not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numeric")
    for index, parent in parent_refs:
        if parent not in span_ids:
            problems.append(
                f"traceEvents[{index}]: dangling parent_id {parent}"
            )
    return problems


def component_tracks(document: dict[str, Any]) -> list[str]:
    """Component track names announced by thread_name metadata."""
    return [
        event["args"]["name"]
        for event in document.get("traceEvents", [])
        if isinstance(event, dict)
        and event.get("ph") == "M"
        and event.get("name") == "thread_name"
    ]


# -- flame summary ----------------------------------------------------


def _self_times(telemetry: "Telemetry") -> dict[int, float]:
    """span_id -> self time (duration minus direct children)."""
    now = telemetry.env.now
    self_time = {
        span.span_id: span.duration(now) for span in telemetry.spans
    }
    for span in telemetry.spans:
        if span.parent_id is not None and span.parent_id in self_time:
            self_time[span.parent_id] -= span.duration(now)
    return self_time


def flame_summary(telemetry: "Telemetry", top: int = 20) -> str:
    """Plain-text flame profile aggregated by (component, span name).

    Rows are sorted by aggregate self time (descending, then name) —
    the same ordering every run, so the output goldens cleanly.
    """
    now = telemetry.env.now
    self_times = _self_times(telemetry)
    rows: dict[tuple[str, str], list[float]] = {}
    for span in telemetry.spans:
        key = (span.component, span.name)
        entry = rows.setdefault(key, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration(now)
        entry[2] += self_times[span.span_id]
    ordered = sorted(
        rows.items(), key=lambda item: (-item[1][2], item[0])
    )[: max(0, top)]
    lines = [
        "flame summary (by self time, simulated seconds)",
        f"{'component':<14} {'span':<34} {'count':>6} "
        f"{'total':>12} {'self':>12}",
        "-" * 82,
    ]
    for (component, name), (count, total, self_t) in ordered:
        shown = name if len(name) <= 34 else name[:31] + "..."
        lines.append(
            f"{component:<14} {shown:<34} {count:>6d} "
            f"{total:>12.4f} {self_t:>12.4f}"
        )
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
