"""Counters, gauges, and bounded-memory streaming histograms.

One :class:`MetricsRegistry` per run absorbs the stack's ad-hoc
counters — the kernel's scheduling counters, RPC client/server stats,
SOMA client degradation bookkeeping, fault/retry counts — behind one
interface, so exporters and regression baselines read a single
namespace instead of spelunking through component attributes.

Histograms use **deterministic bucket bounds**: a geometric ladder
computed once from (lo, hi, growth), identical for every run and every
platform.  Memory per histogram is O(#buckets), independent of the
number of observations — safe to leave enabled on million-event runs.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.core import Environment

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "geometric_bounds",
    "absorb_kernel_counters",
    "absorb_session",
]


def geometric_bounds(
    lo: float = 1e-6, hi: float = 1e5, growth: float = 4.0
) -> tuple[float, ...]:
    """A deterministic geometric bucket ladder covering [lo, hi].

    Bounds are upper edges; values above the last edge land in the
    overflow bucket.  Computed by repeated multiplication so the same
    arguments yield the exact same floats everywhere.
    """
    if lo <= 0 or hi <= lo or growth <= 1.0:
        raise ValueError("need 0 < lo < hi and growth > 1")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * growth)
    return tuple(bounds)


#: Default ladder: 1 µs .. ~100 ks of simulated time, 14 buckets.
DEFAULT_BOUNDS = geometric_bounds()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down; tracks its running extremes."""

    __slots__ = ("name", "value", "min", "max", "_touched")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = 0.0
        self.max = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        if not self._touched:
            self.min = self.max = value
            self._touched = True
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min,
            "max": self.max,
        }


class Histogram:
    """Streaming histogram with fixed, deterministic bucket bounds.

    ``counts[i]`` counts observations ``<= bounds[i]`` (first matching
    bucket); ``counts[-1]`` is the overflow bucket.  Sum/min/max are
    exact; quantiles are bucket-resolution estimates.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, bounds: "tuple[float, ...] | None" = None
    ) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if not self.bounds or any(
            b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])
        ):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the q-quantile (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max  # pragma: no cover - running always reaches count

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}

    def _get(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: "tuple[float, ...] | None" = None
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> "Counter | Gauge | Histogram | None":
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics, name-sorted, as plain JSON-able data."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def scalar_values(self) -> dict[str, float]:
        """Counter/gauge values only (what the Chrome exporter plots)."""
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, (Counter, Gauge)):
                out[name] = metric.value
        return out


# -- absorption of the stack's ad-hoc counters ------------------------


def absorb_kernel_counters(
    registry: MetricsRegistry, env: "Environment"
) -> None:
    """Fold the kernel's scheduling counters into the registry."""
    for key, value in env.kernel_counters().items():
        registry.gauge(f"kernel.{key}").set(value)


def _absorb_rpc_client(registry: MetricsRegistry, prefix: str, rpc) -> None:
    registry.counter(f"{prefix}.calls").inc(rpc.calls)
    registry.counter(f"{prefix}.failures").inc(rpc.failures)
    registry.counter(f"{prefix}.retries").inc(rpc.retries)
    registry.counter(f"{prefix}.timeouts").inc(rpc.timeouts)
    if rpc.calls:
        registry.histogram(f"{prefix}.rtt").observe(rpc.mean_rtt)


def absorb_session(
    registry: MetricsRegistry,
    session,
    client=None,
    deployment=None,
) -> None:
    """Absorb one run's component counters (kernel, RP, SOMA, faults).

    Reads attributes only — never mutates the session — so it is safe
    to call at any point, including after the run.
    """
    absorb_kernel_counters(registry, session.env)
    for category in sorted(session.tracer.categories()):
        registry.counter(f"trace.records.{category}").inc(
            session.tracer.count(category)
        )
    registry.counter("rp.profiles.records").inc(len(session.profiles))
    registry.counter("rp.profiles.reads").inc(session.profiles.reads)
    registry.counter("rp.profiles.writes").inc(session.profiles.writes)
    registry.counter("rp.profiles.rejected").inc(session.profiles.rejected)
    if client is not None:
        agent = None
        if client.pilot is not None:
            agent = client.pilot_manager.agents.get(client.pilot.uid)
        if agent is not None:
            registry.counter("rp.updater.dropped_records").inc(
                agent.updater.dropped_records
            )
            if agent.scheduler is not None:
                registry.counter("rp.scheduler.scheduled").inc(
                    agent.scheduler.scheduled_count
                )
            if agent.executor is not None:
                registry.counter("rp.executor.launched").inc(
                    agent.executor.launched
                )
                registry.counter("rp.executor.completed").inc(
                    agent.executor.completed
                )
                registry.counter("rp.executor.failed").inc(
                    agent.executor.failed
                )
        for task in client.task_manager.tasks.values():
            duration = task.execution_time
            if duration is not None:
                registry.histogram("rp.task.duration").observe(duration)
    if deployment is not None and deployment.enabled:
        clients = list(deployment.hw_monitor_models())
        if deployment.rp_monitor_model is not None:
            clients.append(deployment.rp_monitor_model)
        for model in clients:
            soma = model.client
            if soma is None:
                continue
            registry.counter("soma.client.published").inc(soma.published)
            registry.counter("soma.client.dropped").inc(soma.dropped)
            registry.counter("soma.client.gaps").inc(soma.gaps)
            registry.counter("soma.client.gap_seconds").inc(soma.gap_seconds)
            _absorb_rpc_client(registry, "soma.client.rpc", soma._rpc)
        model = deployment.service_model
        if model is not None:
            registry.counter("soma.service.publishes").inc(model.publishes)
            for namespace in sorted(model.servers):
                stats = model.servers[namespace].stats
                prefix = f"soma.service.{namespace}"
                registry.counter(f"{prefix}.calls").inc(stats.calls)
                registry.counter(f"{prefix}.errors").inc(stats.errors)
                registry.counter(f"{prefix}.bytes").inc(stats.bytes)
                registry.gauge(f"{prefix}.busy_time").set(stats.busy_time)
                registry.gauge(f"{prefix}.queue_time").set(stats.queue_time)


def observe_all(histogram: Histogram, values: Iterable[float]) -> None:
    """Feed an iterable of samples into a histogram."""
    for value in values:
        histogram.observe(value)
