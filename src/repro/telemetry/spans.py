"""Causal span tracing for the simulated stack.

A :class:`Span` is a named interval of *simulated* time attributed to a
component track (``entk``, ``rp-client``, ``rp-agent``, ``soma-client``,
``soma-service``, ...).  Spans form trees: every span except a trace
root has a parent, and one task's lifecycle — EnTK stage → RP client
feed → agent scheduling/execution → SOMA publish → RPC serve — is a
single causal tree stitched across processes and components.

Context propagates three ways, mirroring how the real stack carries
OpenTelemetry-style baggage:

* **ambient**: each kernel :class:`~repro.sim.core.Process` carries a
  stack of active :class:`SpanContext` objects; a freshly spawned
  process inherits the creator's innermost context (the kernel calls
  :meth:`Telemetry.on_process_spawn` from ``Process.__init__``);
* **envelopes**: messages, RPC requests and raptor function calls carry
  an explicit ``ctx`` field stamped at send time and consumed by the
  receiving side, crossing queues and simulated wires;
* **bindings**: long-lived entities (task uids) are bound to a context
  so later phases in *other* processes (the agent scheduler admitting a
  task minutes after the client created it) can re-join the tree.

The hard contract — enforced by the differential regression battery —
is **zero perturbation**: telemetry performs host-memory bookkeeping
keyed off ``env.now`` only.  It schedules no events, draws no random
numbers, and adds no timeouts, so the simulated event stream, all
result digests, and every kernel counter are byte-identical with
telemetry on or off.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import ContextManager

    from ..sim.core import Environment, Process

__all__ = [
    "SpanContext",
    "Span",
    "Telemetry",
    "set_default_telemetry",
    "default_telemetry",
    "active_telemetries",
    "drain_telemetries",
]

#: Process-wide default for ``Telemetry(env, enabled=None)``.  ``None``
#: defers to the ``REPRO_TELEMETRY`` environment variable, mirroring
#: the kernel's ``set_default_sanitize`` / ``REPRO_SANITIZE`` pair.
_DEFAULT_TELEMETRY: bool | None = None

#: Enabled Telemetry instances created since the last drain — how the
#: sweep workers and the trace CLI recover the hubs a cell built
#: internally (``run_cell`` returns plain data, not sessions).
_ACTIVE: "list[Telemetry]" = []


class _NullSpanManager:
    """Shared do-nothing ``with`` target for disabled hubs."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpanManager()


def set_default_telemetry(enabled: bool | None) -> bool | None:
    """Set the process-wide telemetry default; returns the previous value."""
    global _DEFAULT_TELEMETRY
    previous, _DEFAULT_TELEMETRY = _DEFAULT_TELEMETRY, enabled
    return previous


def default_telemetry() -> bool:
    """Effective default: :func:`set_default_telemetry` > ``REPRO_TELEMETRY``."""
    if _DEFAULT_TELEMETRY is not None:
        return _DEFAULT_TELEMETRY
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def active_telemetries() -> "list[Telemetry]":
    """Enabled hubs registered since the last :func:`drain_telemetries`."""
    return list(_ACTIVE)


def drain_telemetries() -> "list[Telemetry]":
    """Return and clear the active-hub registry."""
    drained = list(_ACTIVE)
    _ACTIVE.clear()
    return drained


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The propagatable identity of one span: (trace, span) ids."""

    trace_id: int
    span_id: int


class Span:
    """One named interval of simulated time on a component track."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "component",
        "start",
        "end",
        "attributes",
        "events",
        "_stack",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        component: str,
        start: float,
        attributes: dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        #: Timestamped point annotations: (sim time, name, attrs).
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        #: The ambient stack this span was activated on (None if not
        #: activated); lets end_span pop from the right stack even when
        #: the span closes in a different process than it opened in.
        self._stack: list[SpanContext] | None = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def closed(self) -> bool:
        return self.end is not None

    def duration(self, now: float | None = None) -> float:
        """Span extent; open spans are clamped to ``now`` (read-only)."""
        if self.end is not None:
            return self.end - self.start
        if now is None:
            return 0.0
        return max(0.0, now - self.start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"..{self.end:.6f}" if self.end is not None else "..open"
        return (
            f"<Span {self.component}:{self.name} "
            f"t={self.start:.6f}{state} id={self.span_id}>"
        )


class Telemetry:
    """The per-run span hub: creates, activates, and closes spans.

    One hub per :class:`~repro.sim.core.Environment`; when enabled it
    installs itself as ``env._telemetry`` so the kernel forwards
    process spawn/exit notifications (ambient-context inheritance and
    cleanup).  A disabled hub never touches the environment and every
    operation on it is a cheap no-op, so call sites need no guards.

    Ids are minted from per-hub monotonic counters — never from
    ``uuid``/``random`` — so two runs with the same seed produce
    identical span ids and the exports diff cleanly.
    """

    def __init__(self, env: "Environment", enabled: bool | None = None) -> None:
        self.env = env
        if enabled is None:
            enabled = default_telemetry()
        self.enabled = bool(enabled)
        #: Every span ever started, in creation order.
        self.spans: list[Span] = []
        self._next_trace = 0
        self._next_span = 0
        self._open: dict[int, Span] = {}
        #: Ambient context stacks: per-process, plus one for code
        #: running outside any process (workflow setup).
        self._ambient: "dict[Process, list[SpanContext]]" = {}
        self._global: list[SpanContext] = []
        #: Durable bindings: entity uid -> context (task lifecycles).
        self._bindings: dict[str, SpanContext] = {}
        # Bookkeeping the property tests pin down.
        self.spans_started = 0
        self.spans_closed = 0
        self.double_closes = 0
        self.dropped_events = 0
        #: Optional provenance capture riding this hub (same contract:
        #: host-memory bookkeeping only, never a kernel event).
        self.provenance = None
        if self.enabled:
            env._telemetry = self
            _ACTIVE.append(self)
            from ..provenance import ProvenanceCapture, default_provenance

            if default_provenance():
                self.provenance = ProvenanceCapture(self)

    # -- ambient context ----------------------------------------------

    def _stack(self) -> list[SpanContext]:
        proc = self.env.active_process
        if proc is None:
            return self._global
        stack = self._ambient.get(proc)
        if stack is None:
            stack = []
            self._ambient[proc] = stack
        return stack

    def current(self) -> SpanContext | None:
        """The innermost active context of the running process."""
        if not self.enabled:
            return None
        proc = self.env.active_process
        stack = self._ambient.get(proc) if proc is not None else self._global
        if stack:
            return stack[-1]
        return None

    @contextmanager
    def use(self, ctx: SpanContext | None) -> Iterator[None]:
        """Temporarily make ``ctx`` the ambient context (no new span)."""
        if not self.enabled or ctx is None:
            yield
            return
        stack = self._stack()
        stack.append(ctx)
        try:
            yield
        finally:
            try:
                stack.remove(ctx)
            except ValueError:  # pragma: no cover - defensive
                pass

    # -- kernel hooks (called by sim.core when enabled) ----------------

    def on_process_spawn(self, process: "Process") -> None:
        """Inherit the creator's innermost context into a new process."""
        ctx = self.current()
        if ctx is not None:
            self._ambient[process] = [ctx]

    def on_process_exit(self, process: "Process") -> None:
        """Drop the ambient stack of a terminated process."""
        self._ambient.pop(process, None)

    # -- span lifecycle ------------------------------------------------

    def start_span(
        self,
        name: str,
        component: str,
        parent: "SpanContext | Span | None" = None,
        activate: bool = False,
        **attributes: Any,
    ) -> Span | None:
        """Open a span at ``env.now``; returns None when disabled.

        ``parent=None`` adopts the ambient context; with no ambient
        context either, the span roots a fresh trace.  ``activate``
        pushes the span's context onto the current ambient stack so
        nested spans (and spawned processes) parent into it.
        """
        if not self.enabled:
            return None
        if isinstance(parent, Span):
            parent = parent.context
        if parent is None:
            parent = self.current()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            self._next_trace += 1
            trace_id = self._next_trace
            parent_id = None
        self._next_span += 1
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span,
            parent_id=parent_id,
            name=name,
            component=component,
            start=self.env.now,
            attributes=attributes,
        )
        self.spans.append(span)
        self._open[span.span_id] = span
        self.spans_started += 1
        if activate:
            stack = self._stack()
            stack.append(span.context)
            span._stack = stack
        return span

    def end_span(self, span: Span | None, **attributes: Any) -> None:
        """Close a span at ``env.now``.  Closing twice is counted, not
        applied — the property battery asserts ``double_closes == 0``
        over every instrumented code path."""
        if span is None or not self.enabled:
            return
        if span.end is not None:
            self.double_closes += 1
            return
        span.end = self.env.now
        if attributes:
            span.attributes.update(attributes)
        self._open.pop(span.span_id, None)
        self.spans_closed += 1
        stack, span._stack = span._stack, None
        if stack is not None:
            ctx = span.context
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == ctx:
                    del stack[index]
                    break

    def span(
        self,
        name: str,
        component: str,
        parent: "SpanContext | Span | None" = None,
        **attributes: Any,
    ) -> "ContextManager[Span | None]":
        """Open an *activated* span for the duration of a with-block.

        Safe around kernel yields: the with-block lives in one process
        frame, and generator ``finally`` blocks run when the kernel
        throws :class:`~repro.sim.core.Interrupt`, so the span closes
        exactly once on success, failure, and cancellation alike.
        Disabled hubs return a shared no-op manager — call sites on the
        simulation hot path pay one method call and nothing else.
        """
        if not self.enabled:
            return _NULL_SPAN
        return self._span_cm(name, component, parent, attributes)

    @contextmanager
    def _span_cm(
        self,
        name: str,
        component: str,
        parent: "SpanContext | Span | None",
        attributes: dict[str, Any],
    ) -> Iterator[Span | None]:
        span = self.start_span(
            name, component, parent=parent, activate=True, **attributes
        )
        try:
            yield span
        finally:
            self.end_span(span)

    # -- annotations ---------------------------------------------------

    def event(self, name: str, **attributes: Any) -> None:
        """Attach a point event to the current open span (if any)."""
        if not self.enabled:
            return
        ctx = self.current()
        span = self._open.get(ctx.span_id) if ctx is not None else None
        if span is None:
            self.dropped_events += 1
            return
        span.events.append((self.env.now, name, attributes))

    def add_event(self, span: Span | None, name: str, **attributes: Any) -> None:
        """Attach a point event to a specific span."""
        if span is None or not self.enabled:
            return
        span.events.append((self.env.now, name, attributes))

    # -- bindings ------------------------------------------------------

    def bind(self, uid: str, ctx: "SpanContext | Span | None") -> None:
        """Durably associate an entity uid with a context."""
        if not self.enabled or ctx is None:
            return
        if isinstance(ctx, Span):
            ctx = ctx.context
        self._bindings[uid] = ctx

    def binding(self, uid: str) -> SpanContext | None:
        return self._bindings.get(uid)

    def unbind(self, uid: str) -> None:
        self._bindings.pop(uid, None)

    # -- introspection -------------------------------------------------

    def open_spans(self) -> list[Span]:
        """Spans started but not yet closed, in creation order."""
        return [span for span in self.spans if span.end is None]

    def trace_ids(self) -> list[int]:
        """Distinct trace ids in first-seen order."""
        seen: dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def counters(self) -> dict[str, int]:
        """Bookkeeping snapshot (all host-side; never sim state)."""
        return {
            "spans_started": self.spans_started,
            "spans_closed": self.spans_closed,
            "open_spans": len(self._open),
            "double_closes": self.double_closes,
            "dropped_events": self.dropped_events,
            "traces": len(self.trace_ids()),
        }
