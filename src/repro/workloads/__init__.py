"""Workload models: OpenFOAM/AdditiveFOAM, DeepDriveMD mini-app, synthetic."""

from .ddmd import (
    DDMDParams,
    GPUStageTaskModel,
    STAGE_NAMES,
    SelectionTaskModel,
    ddmd_phase_stages,
)
from .openfoam import OpenFOAMParams, OpenFOAMTaskModel, openfoam_task_description
from .synthetic import heterogeneous_bag, strong_scaling_sweep, uniform_bag

__all__ = [
    "DDMDParams",
    "GPUStageTaskModel",
    "OpenFOAMParams",
    "OpenFOAMTaskModel",
    "STAGE_NAMES",
    "SelectionTaskModel",
    "ddmd_phase_stages",
    "heterogeneous_bag",
    "openfoam_task_description",
    "strong_scaling_sweep",
    "uniform_bag",
]
