"""The DeepDriveMD workflow mini-app (paper Sec 3.2).

Models the four-stage phase of the DDMD mini-app [Kilic et al. 2024]:

1. **Simulation** — 12 tasks, each 1 GPU + c cores; the MD kernel runs
   on the GPU, the CPU cores mostly feed it (low CPU utilization —
   the Fig 9 observation).
2. **ML Training** — 1..k tasks, each 1 GPU + c cores; GPU-bound.
   Parallelized training (k > 1) resizes the data per worker and adds
   MPI_Reduce exchanges, as the paper's tuning exploration did.
3. **Model Selection** — 1 task, CPU-only.
4. **Agent (inference)** — 1 task, 1 GPU + cores.

Stages run strictly in order inside a phase; EnTK chains ``n`` phases
inside each of ``m`` concurrent pipelines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..rp.description import TaskDescription
from ..rp.model import ExecutionContext, RankProfile, TaskModel, TaskResult
from ..sim.core import Interrupt

__all__ = [
    "DDMDParams",
    "GPUStageTaskModel",
    "SelectionTaskModel",
    "ddmd_phase_stages",
    "STAGE_NAMES",
]

STAGE_NAMES = ("simulation", "training", "selection", "agent")


@dataclass(frozen=True, slots=True)
class DDMDParams:
    """Calibration of one DDMD mini-app phase (seconds)."""

    #: Simulation stage: GPU seconds per task and tasks per phase.
    num_sim_tasks: int = 12
    sim_gpu_seconds: float = 210.0
    #: CPU side work of a simulation task (total, spread over its cores).
    sim_cpu_seconds: float = 18.0
    #: Training stage.
    num_train_tasks: int = 1
    train_gpu_seconds: float = 260.0
    train_cpu_seconds: float = 22.0
    #: Parallel training efficiency: with k workers the GPU work per
    #: worker is (1/k) × data + reduce overhead per worker.
    train_reduce_seconds: float = 7.0
    #: Selection stage (CPU only).
    selection_cpu_seconds: float = 45.0
    selection_cores: int = 12
    #: Agent / inference stage.
    agent_gpu_seconds: float = 95.0
    agent_cpu_seconds: float = 10.0
    #: Cores per simulation / training / agent task.
    cores_per_sim_task: int = 6
    cores_per_train_task: int = 6
    cores_per_agent_task: int = 6
    #: Run-to-run duration noise (lognormal sigma).
    noise_sigma: float = 0.03
    #: Memory intensity of the CPU-side work.
    cpu_mem_intensity: float = 0.25

    def with_updates(self, **kwargs) -> "DDMDParams":
        return replace(self, **kwargs)

    def train_gpu_seconds_parallel(self, workers: int) -> float:
        """Per-worker GPU time when training is data-parallel."""
        if workers <= 1:
            return self.train_gpu_seconds
        return (
            self.train_gpu_seconds / workers
            + self.train_reduce_seconds * math.log2(workers + 1)
        )

    def phase_critical_path(self, gpus_per_node: int = 6) -> float:
        """Rough uncontended phase time on one node (tests only)."""
        sim_waves = math.ceil(self.num_sim_tasks / gpus_per_node)
        return (
            sim_waves * self.sim_gpu_seconds
            + self.train_gpu_seconds_parallel(self.num_train_tasks)
            + self.selection_cpu_seconds
            + self.agent_gpu_seconds
        )


class GPUStageTaskModel(TaskModel):
    """A GPU-bound stage task: GPU kernel + light CPU feeding work.

    GPU and CPU parts run concurrently; the task ends when both are
    done (the GPU part dominates by construction, so CPU utilization
    stays low — Fig 9).
    """

    def __init__(
        self,
        gpu_seconds: float,
        cpu_seconds: float,
        mem_intensity: float = 0.25,
        noise_sigma: float = 0.03,
        stage: str = "simulation",
    ) -> None:
        self.gpu_seconds = gpu_seconds
        self.cpu_seconds = cpu_seconds
        self.mem_intensity = mem_intensity
        self.noise_sigma = noise_sigma
        self.stage = stage

    def execute(self, ctx: ExecutionContext):
        env = ctx.env
        placement = ctx.placements[0]
        node = placement.node
        noise = float(ctx.stable_rng().lognormal(0.0, self.noise_sigma))
        start = env.now

        gpu_act = node.run_gpu_compute(
            gpus=placement.num_gpus,
            work=self.gpu_seconds * noise * node.spec.gpu_speed,
            tag=f"{self.stage}:{ctx.task.uid}",
        )
        cpu_act = None
        if self.cpu_seconds > 0 and placement.num_cores > 0:
            cpu_act = node.run_compute(
                cores=placement.num_cores,
                work=self.cpu_seconds * noise * node.spec.core_speed,
                mem_intensity=self.mem_intensity,
                demand_per_core=0.4,
                tag=f"{self.stage}:{ctx.task.uid}",
            )
        try:
            yield gpu_act.done
            if cpu_act is not None:
                yield cpu_act.done
        except Interrupt:
            for act in (gpu_act, cpu_act):
                if act is not None and act.finished_at is None:
                    act.cancel()
            raise

        elapsed = env.now - start
        # Self-report the paper's example figure of merit when the task
        # was instrumented with SOMA's application API (Sec 2.3.2:
        # "a molecular dynamics code might want to capture the
        # atom-timesteps per second").
        metrics = ctx.task.description.metadata.get("app_metrics")
        if metrics is not None and elapsed > 0:
            atom_timesteps = 1.0e6 * self.gpu_seconds * noise
            metrics.record(
                "atom_timesteps_per_s",
                atom_timesteps / elapsed,
                unit="atom-steps/s",
            )
        profile = RankProfile(
            rank=0,
            hostname=node.name,
            seconds_by_region={
                "gpu_kernel": self.gpu_seconds * noise,
                "cpu_feed": self.cpu_seconds * noise,
                "idle_wait": max(
                    0.0, elapsed - self.cpu_seconds * noise
                ),
            },
        )
        return TaskResult(
            exit_code=0,
            rank_profiles=[profile],
            data={"stage": self.stage, "elapsed": elapsed},
        )


class SelectionTaskModel(TaskModel):
    """The CPU-only model-selection stage."""

    def __init__(
        self,
        cpu_seconds: float,
        mem_intensity: float = 0.35,
        noise_sigma: float = 0.03,
    ) -> None:
        self.cpu_seconds = cpu_seconds
        self.mem_intensity = mem_intensity
        self.noise_sigma = noise_sigma

    def execute(self, ctx: ExecutionContext):
        placement = ctx.placements[0]
        node = placement.node
        noise = float(ctx.stable_rng().lognormal(0.0, self.noise_sigma))
        act = node.run_compute(
            cores=placement.num_cores,
            work=self.cpu_seconds * noise * node.spec.core_speed,
            mem_intensity=self.mem_intensity,
            tag=f"selection:{ctx.task.uid}",
        )
        yield act.done
        return TaskResult(exit_code=0, data={"stage": "selection"})


def ddmd_phase_stages(
    params: DDMDParams, phase_index: int = 0, pipeline: int = 0
) -> list[tuple[str, list[TaskDescription]]]:
    """The four stages of one DDMD phase as (name, task descriptions).

    Stage tasks are single-node (1 GPU each for sim/train/agent), as in
    the mini-app's EnTK configuration.
    """
    tag = f"p{pipeline}.ph{phase_index}"

    sim_tasks = [
        TaskDescription(
            name=f"sim-{tag}-{i}",
            model=GPUStageTaskModel(
                params.sim_gpu_seconds,
                params.sim_cpu_seconds,
                params.cpu_mem_intensity,
                params.noise_sigma,
                stage="simulation",
            ),
            ranks=1,
            cores_per_rank=params.cores_per_sim_task,
            gpus_per_rank=1,
            multi_node=False,
            metadata={"stage": "simulation", "pipeline": pipeline,
                      "phase": phase_index},
        )
        for i in range(params.num_sim_tasks)
    ]
    train_tasks = [
        TaskDescription(
            name=f"train-{tag}-{i}",
            model=GPUStageTaskModel(
                params.train_gpu_seconds_parallel(params.num_train_tasks),
                params.train_cpu_seconds,
                params.cpu_mem_intensity,
                params.noise_sigma,
                stage="training",
            ),
            ranks=1,
            cores_per_rank=params.cores_per_train_task,
            gpus_per_rank=1,
            multi_node=False,
            metadata={"stage": "training", "pipeline": pipeline,
                      "phase": phase_index},
        )
        for i in range(params.num_train_tasks)
    ]
    selection_tasks = [
        TaskDescription(
            name=f"select-{tag}",
            model=SelectionTaskModel(
                params.selection_cpu_seconds,
                noise_sigma=params.noise_sigma,
            ),
            ranks=1,
            cores_per_rank=params.selection_cores,
            gpus_per_rank=0,
            multi_node=False,
            metadata={"stage": "selection", "pipeline": pipeline,
                      "phase": phase_index},
        )
    ]
    agent_tasks = [
        TaskDescription(
            name=f"agent-{tag}",
            model=GPUStageTaskModel(
                params.agent_gpu_seconds,
                params.agent_cpu_seconds,
                params.cpu_mem_intensity,
                params.noise_sigma,
                stage="agent",
            ),
            ranks=1,
            cores_per_rank=params.cores_per_agent_task,
            gpus_per_rank=1,
            multi_node=False,
            metadata={"stage": "agent", "pipeline": pipeline,
                      "phase": phase_index},
        )
    ]
    return [
        ("simulation", sim_tasks),
        ("training", train_tasks),
        ("selection", selection_tasks),
        ("agent", agent_tasks),
    ]
