"""The OpenFOAM / AdditiveFOAM melt-pool task model (paper Sec 3.1).

The ExaAM workflow's tasks are AdditiveFOAM simulations: iterative,
memory-bound CFD solves with halo exchanges and global reductions.
The model decomposes a fixed problem (strong scaling) over ``ranks``
MPI ranks and executes as alternating compute/communication supersteps
on the simulated platform:

* compute progresses through each node's memory-bandwidth contention
  domain (co-located ranks slow each other — the Fig 6 effect);
* communication is charged analytically (latency × iterations ×
  log2(ranks) for reductions, plus halo surface volume) and its
  cross-node volume crosses the shared fabric (interference with
  monitoring traffic);
* per-rank TAU profiles (compute + MPI_Recv/MPI_Waitall/MPI_Allreduce/
  MPI_Isend) are synthesized from the same decomposition, dominated by
  MPI_Recv and MPI_Waitall as in Fig 5.

Strong-scaling shape: per-rank work falls as 1/ranks while the
communication terms grow with ranks and with the number of nodes
spanned — so scaling 20 -> 41 -> 82 ranks pays off and 82 -> 164
mostly does not, matching Fig 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..rp.description import TaskDescription
from ..rp.model import ExecutionContext, RankProfile, TaskModel, TaskResult
from ..sim.core import Interrupt

__all__ = ["OpenFOAMParams", "OpenFOAMTaskModel", "openfoam_task_description"]


@dataclass(frozen=True, slots=True)
class OpenFOAMParams:
    """Calibration of the melt-pool solve (all times in seconds)."""

    #: Total serial-equivalent work of the solve, in core-seconds.
    total_work: float = 16000.0
    #: Serial (non-decomposable) fraction of the work.
    serial_fraction: float = 0.015
    #: Fraction of per-rank time that is memory-bandwidth bound.
    mem_intensity: float = 0.55
    #: Relative memory-bandwidth demand per rank (1.0 = one core's worth).
    demand_per_core: float = 1.3
    #: Solver iterations (halo exchange + reduction per iteration).
    iterations: int = 400
    #: Reduction latency cost per iteration per log2(ranks), seconds.
    reduce_alpha: float = 1.2e-2
    #: Halo exchange cost per iteration per rank-surface unit, seconds.
    halo_beta: float = 1.6e-2
    #: Exponent of the per-rank surface growth with rank count.
    surface_exponent: float = 0.42
    #: Extra halo cost factor for ranks with off-node neighbours.
    internode_penalty: float = 4.0
    #: Halo bytes exchanged per rank per iteration (surface data).
    halo_bytes_per_rank: float = 2.0e5
    #: Per-rank load imbalance (sigma of lognormal multiplier).
    imbalance_sigma: float = 0.06
    #: Number of compute/comm supersteps the execution is split into.
    supersteps: int = 4

    def with_updates(self, **kwargs) -> "OpenFOAMParams":
        return replace(self, **kwargs)

    # -- analytic model (used by tests and for profile synthesis) --------

    def compute_seconds_per_rank(self, ranks: int) -> float:
        """Uncontended per-rank compute time."""
        parallel = self.total_work * (1.0 - self.serial_fraction) / ranks
        serial = self.total_work * self.serial_fraction / max(1, ranks) ** 0.5
        return parallel + serial

    def surface_per_rank(self, ranks: int) -> float:
        """Relative per-rank halo cost as the subdomain shrinks.

        Ideal 3-D decomposition gives p^(1/3); AdditiveFOAM's melt-pool
        meshes decompose far from ideally (adaptive refinement around
        the pool), so the effective exponent is steeper.
        """
        return ranks ** self.surface_exponent

    def comm_seconds(self, ranks: int, nodes: int) -> float:
        """Analytic per-rank communication time for the whole solve."""
        reduce_t = self.iterations * self.reduce_alpha * math.log2(max(2, ranks))
        internode = 1.0 + (self.internode_penalty - 1.0) * (
            0.0 if nodes <= 1 else 1.0 - 1.0 / nodes
        )
        halo_t = (
            self.iterations
            * self.halo_beta
            * self.surface_per_rank(ranks)
            * internode
        )
        return reduce_t + halo_t

    def ideal_time(self, ranks: int, nodes: int) -> float:
        """Uncontended end-to-end estimate (for tests/calibration)."""
        return self.compute_seconds_per_rank(ranks) + self.comm_seconds(
            ranks, nodes
        )


class OpenFOAMTaskModel(TaskModel):
    """One AdditiveFOAM melt-pool solve as an RP task."""

    #: Compute regions reported in the TAU profile, with their share of
    #: the compute time (AdditiveFOAM-flavoured kernel names).
    COMPUTE_REGIONS = (
        ("solveMomentum", 0.34),
        ("solveEnergy", 0.27),
        ("thermodynamics", 0.17),
        ("meshUpdate", 0.12),
        ("io_checkpoint", 0.10),
    )

    def __init__(self, params: OpenFOAMParams | None = None) -> None:
        self.params = params or OpenFOAMParams()

    def execute(self, ctx: ExecutionContext):
        params = self.params
        env = ctx.env
        ranks = ctx.task.description.ranks
        nodes_used = ctx.num_nodes
        rng = ctx.rng
        start = env.now

        # Per-rank imbalance multipliers; the critical path per node is
        # its slowest rank.
        multipliers = rng.lognormal(
            mean=0.0, sigma=params.imbalance_sigma, size=ranks
        )
        rank_map = ctx.rank_map()
        per_node_mult: dict[int, float] = {}
        for (rank, placement), mult in zip(rank_map, multipliers):
            key = placement.uid
            per_node_mult[key] = max(per_node_mult.get(key, 0.0), float(mult))

        compute_per_rank = params.compute_seconds_per_rank(ranks)
        comm_total = params.comm_seconds(ranks, nodes_used)
        steps = max(1, params.supersteps)
        halo_volume = (
            params.halo_bytes_per_rank * params.iterations * ranks / steps
        )
        # Only traffic between nodes crosses the fabric.
        cross_fraction = 0.0 if nodes_used <= 1 else 1.0 - 1.0 / nodes_used

        compute_elapsed = 0.0
        comm_elapsed = 0.0
        for _step in range(steps):
            # -- compute superstep (contention-sensitive) -----------------
            t0 = env.now
            acts = []
            for placement in ctx.placements:
                node = placement.node
                work = (
                    compute_per_rank
                    / steps
                    * per_node_mult.get(placement.uid, 1.0)
                    * node.spec.core_speed
                )
                acts.append(
                    node.run_compute(
                        cores=placement.num_cores,
                        work=work,
                        mem_intensity=params.mem_intensity,
                        demand_per_core=params.demand_per_core,
                        tag=ctx.task.uid,
                    )
                )
            try:
                for act in acts:
                    yield act.done
            except Interrupt:
                for act in acts:
                    if act.finished_at is None:
                        act.cancel()
                raise
            compute_elapsed += env.now - t0

            # -- communication superstep ----------------------------------
            t0 = env.now
            yield env.timeout(comm_total / steps)
            if cross_fraction > 0:
                yield from ctx.network.transfer(
                    halo_volume * cross_fraction,
                    messages=max(1, ranks // 4),
                    tag=f"halo:{ctx.task.uid}",
                )
            comm_elapsed += env.now - t0

        elapsed = env.now - start
        profiles = self._make_profiles(
            ctx, multipliers, compute_elapsed, comm_elapsed
        )
        return TaskResult(
            exit_code=0,
            rank_profiles=profiles,
            data={
                "ranks": ranks,
                "nodes_used": nodes_used,
                "elapsed": elapsed,
                "compute_seconds": compute_elapsed,
                "comm_seconds": comm_elapsed,
            },
        )

    def _make_profiles(
        self,
        ctx: ExecutionContext,
        multipliers,
        compute_elapsed: float,
        comm_elapsed: float,
    ) -> list[RankProfile]:
        """Synthesize the per-rank TAU view of this execution.

        Faster ranks wait longer in MPI (they sit in MPI_Recv /
        MPI_Waitall for the stragglers), which is exactly the Fig 5
        pattern: total time per rank is flat, the split shifts.
        """
        rng = ctx.rng
        profiles: list[RankProfile] = []
        mult = multipliers / multipliers.max()
        for (rank, placement), m in zip(ctx.rank_map(), mult):
            compute = compute_elapsed * float(m)
            wait = compute_elapsed * float(1.0 - m) + comm_elapsed
            # Split wait across MPI calls; recv/waitall dominate.
            shares = rng.dirichlet((6.0, 5.0, 1.4, 0.9))
            regions: dict[str, float] = {}
            for (region, share) in self.COMPUTE_REGIONS:
                regions[region] = compute * share
            regions["MPI_Recv"] = wait * float(shares[0])
            regions["MPI_Waitall"] = wait * float(shares[1])
            regions["MPI_Allreduce"] = wait * float(shares[2])
            regions["MPI_Isend"] = wait * float(shares[3])
            profiles.append(
                RankProfile(
                    rank=rank,
                    hostname=placement.node.name,
                    seconds_by_region=regions,
                )
            )
        return profiles


def openfoam_task_description(
    ranks: int,
    params: OpenFOAMParams | None = None,
    name: str | None = None,
) -> TaskDescription:
    """An RP task description for one OpenFOAM solve with ``ranks``."""
    return TaskDescription(
        name=name or f"openfoam-{ranks}r",
        model=OpenFOAMTaskModel(params),
        ranks=ranks,
        cores_per_rank=1,
        gpus_per_rank=0,
        multi_node=True,
        metadata={"workload": "openfoam", "ranks": ranks},
    )
