"""Generic synthetic workload generators for tests and examples."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..rp.description import TaskDescription
from ..rp.model import ComputeModel, FixedDurationModel

__all__ = ["uniform_bag", "heterogeneous_bag", "strong_scaling_sweep"]


def uniform_bag(
    count: int,
    duration: float,
    ranks: int = 1,
    cores_per_rank: int = 1,
    name: str = "uniform",
) -> list[TaskDescription]:
    """``count`` identical fixed-duration tasks (a classic BoT)."""
    return [
        TaskDescription(
            name=f"{name}-{i}",
            model=FixedDurationModel(duration),
            ranks=ranks,
            cores_per_rank=cores_per_rank,
        )
        for i in range(count)
    ]


def heterogeneous_bag(
    count: int,
    mean_duration: float,
    sigma: float,
    rng: np.random.Generator,
    ranks_choices: Sequence[int] = (1, 2, 4),
    mem_intensity: float = 0.4,
    name: str = "hetero",
) -> list[TaskDescription]:
    """Mixed bag: lognormal durations, varied rank counts."""
    descriptions = []
    for i in range(count):
        duration = float(rng.lognormal(np.log(mean_duration), sigma))
        ranks = int(rng.choice(ranks_choices))
        descriptions.append(
            TaskDescription(
                name=f"{name}-{i}",
                model=ComputeModel(duration, mem_intensity=mem_intensity),
                ranks=ranks,
                cores_per_rank=1,
            )
        )
    return descriptions


def strong_scaling_sweep(
    work: float,
    rank_counts: Sequence[int],
    instances: int = 1,
    mem_intensity: float = 0.5,
    name: str = "sweep",
) -> list[TaskDescription]:
    """Same total work decomposed over different rank counts."""
    descriptions = []
    for ranks in rank_counts:
        for i in range(instances):
            descriptions.append(
                TaskDescription(
                    name=f"{name}-{ranks}r-{i}",
                    model=ComputeModel(
                        work / ranks, mem_intensity=mem_intensity
                    ),
                    ranks=ranks,
                    cores_per_rank=1,
                )
            )
    return descriptions
